"""Figure 9: islandization clusters all nnz within several rounds."""

from benchmarks.conftest import emit
from repro.core import islandize
from repro.eval.experiments import experiment_fig9


def test_fig9_islandization_effect(benchmark):
    result = benchmark.pedantic(
        experiment_fig9, kwargs={"with_plots": True}, rounds=1, iterations=1
    )
    emit(result)
    for row in result.rows:
        # "within several rounds" (§4.2) and full nnz coverage.
        assert row["rounds"] <= 10, row
        assert row["island_edges_covered"] == "100%"
        # Hubs stay a small fraction (§3.1.1).
        assert row["hub_pct"] < 20.0
    # NELL shows the most significant component structure (paper §4.2):
    # it needs no more rounds than the other citation graphs.
    rounds = {row["dataset"]: row["rounds"] for row in result.rows}
    assert rounds["nell"] <= max(rounds.values())


def test_fig9_locator_microbenchmark(benchmark, cora):
    """Throughput of the Island Locator itself on full Cora."""
    graph = cora.graph.without_self_loops()
    result = benchmark(islandize, graph)
    result.validate()
