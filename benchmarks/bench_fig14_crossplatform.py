"""Figure 14: cross-platform off-chip traffic (A) and speedup (B)."""

from benchmarks.conftest import emit
from repro.eval.experiments import experiment_fig14


def test_fig14_cross_platform(benchmark):
    result = benchmark.pedantic(experiment_fig14, rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        name = row["dataset"]
        # (A) I-GCN needs the least off-chip traffic everywhere.
        assert row["awb-gcn_dram"] > 1.0, (name, "awb traffic")
        assert row["hygcn_dram"] > 1.0, (name, "hygcn traffic")
        # (B) accelerator and software baselines are slower on the
        # community-structured graphs.
        if name != "reddit":  # weakest structure; paper gap also smallest
            assert row["awb-gcn_x"] > 1.0, name
        assert row["pyg-cpu_x"] > 50.0, name
        assert row["dgl-cpu_x"] > 10.0, name
        assert row["pyg-gpu-v100_x"] > 1.0, name
    # Full-scale Cora lands in the paper's magnitude bands.
    cora = next(r for r in result.rows if r["dataset"] == "cora")
    assert 1_000 < cora["pyg-cpu_x"] < 50_000     # paper: 9568x
    assert 100 < cora["pyg-gpu-v100_x"] < 2_000   # paper: ~368x avg
    assert 5 < cora["sigma_x"] < 60               # paper: 16x avg
