"""Table 2: absolute latency (µs) and energy efficiency (Graph/kJ),
I-GCN vs AWB-GCN, for GCN_algo and GCN_Hy on all five datasets."""

import numpy as np

from benchmarks.conftest import emit
from repro.eval.experiments import experiment_table2


def test_table2_latency_and_ee(benchmark):
    result = benchmark.pedantic(experiment_table2, rounds=1, iterations=1)
    emit(result)
    algo = [r for r in result.rows if r["config"] == "GCN_algo"]
    speedups = {r["dataset"]: r["speedup"] for r in algo}
    # Shape: I-GCN wins on the community-structured graphs...
    for name in ("cora", "citeseer", "pubmed", "nell"):
        assert speedups[name] > 1.0, f"I-GCN should beat AWB-GCN on {name}"
    # ...by a factor in the paper's band on average (paper: 1.1-2.7x).
    geomean = float(np.exp(np.mean([np.log(s) for s in speedups.values()])))
    assert 1.0 < geomean < 4.0
    # EE follows the same ordering (same envelope, lower latency).
    for r in algo:
        if r["speedup"] > 1.2:
            assert r["igcn_ee"] > r["awb_ee"]
