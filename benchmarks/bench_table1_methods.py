"""Table 1: PULL vs PUSH vs islandization characteristics."""

from benchmarks.conftest import emit
from repro.eval.experiments import experiment_table1


def test_table1_method_comparison(benchmark):
    result = benchmark.pedantic(experiment_table1, rounds=1, iterations=1)
    emit(result)
    traffic = {row["method"]: row["dram_mb"] for row in result.rows}
    igcn = next(v for k, v in traffic.items() if "Islandization" in k)
    pull = next(v for k, v in traffic.items() if "PULL" in k)
    push = next(v for k, v in traffic.items() if "PUSH" in k)
    # Table 1's qualitative ranking: islandization lowest off-chip access.
    assert igcn < pull
    assert igcn < push
