"""Benchmark-suite configuration.

Each bench module regenerates one table/figure of the paper via the
experiment registry (``repro.eval.experiments``), prints the
paper-vs-measured table, and asserts the *shape* of the published
result (who wins, rank order, magnitude bands).  Heavy experiments are
benchmarked with a single round; micro-kernels (islandization, window
scan) use normal pytest-benchmark statistics.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset


@pytest.fixture(scope="session")
def cora():
    """Full-size Cora surrogate shared across bench modules."""
    return load_dataset("cora", seed=7)


def emit(result) -> None:
    """Print a rendered experiment table into the bench log."""
    print()
    print(result.render())
