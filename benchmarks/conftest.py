"""Benchmark-suite configuration.

Each bench module regenerates one table/figure of the paper via the
experiment registry (``repro.eval.experiments``), prints the
paper-vs-measured table, and asserts the *shape* of the published
result (who wins, rank order, magnitude bands).  Heavy experiments are
benchmarked with a single round; micro-kernels (islandization, window
scan) use normal pytest-benchmark statistics.

All shared state flows through the runtime :class:`~repro.runtime.Engine`
(the same process-wide instance the experiment registry uses), so
datasets and islandizations are computed once per session no matter how
many bench modules touch them.  Setting ``REPRO_CACHE_DIR`` gives that
engine a persistent disk tier: a second benchmark session warm-starts
from the stored datasets, islandizations and workloads instead of
regenerating them.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import shared_engine
from repro.runtime import Engine


@pytest.fixture(scope="session")
def engine() -> Engine:
    """The process-wide runtime Engine (shared with the experiments)."""
    return shared_engine()


@pytest.fixture(scope="session")
def cora(engine):
    """Full-size Cora surrogate shared across bench modules."""
    return engine.dataset("cora", seed=7)


def emit(result) -> None:
    """Print a rendered experiment table into the bench log."""
    print()
    print(result.render())
