"""Model-family coverage (paper §4.1): GCN, GraphSage, and GIN.

The paper evaluates three model families; the headline figures use
GCN.  This bench runs all three through I-GCN on every dataset and
checks that islandization's benefits are model-independent (the
locator result is shared; pruning applies to any factorisable
aggregation — DESIGN.md §3).
"""

import pytest

from repro.eval import render_table
from repro.models import build_model
from repro.runtime import Engine


@pytest.fixture(scope="module")
def bench_engine():
    # A module-local engine: the session-wide one may already hold
    # cached reports for these exact cells (other bench modules run
    # first), which would turn the timed sweep into dict lookups.
    return Engine()


@pytest.fixture(scope="module")
def datasets(bench_engine):
    return {
        name: bench_engine.dataset(name, seed=7)
        for name in ("cora", "citeseer", "pubmed")
    }


def test_model_families(benchmark, datasets, bench_engine):
    def sweep():
        rows = []
        for name, ds in datasets.items():
            for family in ("gcn", "graphsage", "gin"):
                model = build_model(family, ds.num_features, ds.num_classes)
                # The engine's artifact cache shares the islandization
                # across the three families automatically.
                rep = bench_engine.simulate("igcn", ds, model)
                rows.append({
                    "dataset": name,
                    "model": model.name,
                    "layers": len(rep.layers),
                    "prune_agg": round(rep.aggregation_pruning_rate, 3),
                    "latency_us": round(rep.latency_us, 2),
                })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="I-GCN across model families"))
    # GCN and GraphSage share the A+I pattern, so their pruning is
    # identical; GIN aggregates without the self-loop diagonal, which
    # thins the scan windows and lowers (but does not eliminate) reuse.
    for name in datasets:
        by_model = {r["model"]: r["prune_agg"] for r in rows
                    if r["dataset"] == name}
        assert by_model["gcn-algo"] == by_model["gs-algo"], name
        assert 0.05 < by_model["gin"] < by_model["gcn-algo"], name
    # GIN runs 3 layers, the others 2.
    assert {r["layers"] for r in rows} == {2, 3}
