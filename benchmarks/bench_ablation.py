"""Ablations of I-GCN's design choices (DESIGN.md §6).

Not a paper figure: sweeps the parameters the paper leaves open
(pre-aggregation width k, island-size cap c_max, threshold decay) and
records their effect on pruning and latency, so the calibrated defaults
are justified by data in the bench log.
"""

import pytest

from repro.core import ConsumerConfig, IGCNAccelerator, LocatorConfig
from repro.eval import render_table
from repro.models import gcn_model


@pytest.fixture(scope="module")
def setup(engine):
    ds = engine.dataset("cora", seed=7)
    model = gcn_model(ds.num_features, ds.num_classes)
    isl = engine.islandization(ds.graph)
    return ds, model, isl


def test_ablation_preagg_k(benchmark, setup):
    ds, model, isl = setup

    def sweep():
        rows = []
        for k in (2, 4, 6, 8, 12):
            acc = IGCNAccelerator(consumer=ConsumerConfig(preagg_k=k))
            rep = acc.run(ds.graph, model, feature_density=ds.feature_density,
                          islandization=isl)
            rows.append({"k": k,
                         "prune_agg": round(rep.aggregation_pruning_rate, 3),
                         "latency_us": round(rep.latency_us, 2)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: pre-aggregation width k (cora)"))
    best = max(rows, key=lambda r: r["prune_agg"])
    assert best["k"] in (4, 6, 8)  # the calibrated default region


def test_ablation_cmax(benchmark, setup):
    ds, model, _ = setup

    def sweep():
        rows = []
        for c_max in (4, 16, 64, 256):
            acc = IGCNAccelerator(locator=LocatorConfig(c_max=c_max))
            rep = acc.run(ds.graph, model, feature_density=ds.feature_density)
            rows.append({"c_max": c_max,
                         "islands": rep.islandization.num_islands,
                         "prune_agg": round(rep.aggregation_pruning_rate, 3)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: island size cap c_max (cora)"))
    # Tiny caps fragment islands and hurt pruning.
    assert rows[0]["prune_agg"] <= rows[2]["prune_agg"]


def test_ablation_threshold_decay(benchmark, setup):
    ds, model, _ = setup

    def sweep():
        rows = []
        for decay in (0.3, 0.5, 0.7):
            acc = IGCNAccelerator(locator=LocatorConfig(decay=decay))
            rep = acc.run(ds.graph, model, feature_density=ds.feature_density)
            rows.append({"decay": decay,
                         "rounds": rep.islandization.num_rounds,
                         "prune_agg": round(rep.aggregation_pruning_rate, 3),
                         "locator_cycles": round(rep.locator_cycles)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: threshold decay (cora)"))
    # Gentler decay -> more rounds.
    assert rows[-1]["rounds"] >= rows[0]["rounds"]
