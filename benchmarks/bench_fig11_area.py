"""Figure 11: ALM-normalised hardware consumption breakdown."""

from benchmarks.conftest import emit
from repro.eval.experiments import experiment_fig11


def test_fig11_area_breakdown(benchmark):
    result = benchmark.pedantic(experiment_fig11, rounds=1, iterations=1)
    emit(result)
    assert abs(result.extras["locator_fraction"] - 0.34) < 0.03
    assert abs(result.extras["consumer_fraction"] - 0.66) < 0.03
