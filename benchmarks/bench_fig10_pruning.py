"""Figure 10: shared-neighbour redundancy-removal pruning rates."""

from benchmarks.conftest import emit
from repro.eval.experiments import PAPER_FIG10_AGG, experiment_fig10


def test_fig10_pruning_rates(benchmark):
    result = benchmark.pedantic(experiment_fig10, rounds=1, iterations=1)
    emit(result)
    measured = {r["dataset"]: r["prune_agg"] for r in result.rows}
    # Shape 1: mean aggregation pruning in the paper's band (38%).
    assert 0.25 <= result.extras["mean_agg"] <= 0.55
    # Shape 2: the paper's per-dataset ranking is preserved exactly:
    # NELL > citeseer >= cora > pubmed > reddit.
    assert measured["nell"] == max(measured.values())
    assert measured["reddit"] == min(measured.values())
    paper_rank = sorted(PAPER_FIG10_AGG, key=PAPER_FIG10_AGG.get)
    ours_rank = sorted(measured, key=measured.get)
    assert paper_rank == ours_rank
    # Shape 3: every dataset within 15 points of the paper's bar.
    for name, value in measured.items():
        assert abs(value - PAPER_FIG10_AGG[name]) < 0.15, (name, value)
