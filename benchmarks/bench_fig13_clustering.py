"""Figure 13: non-zero clustering quality, reorderings vs islandization."""

from benchmarks.conftest import emit
from repro.eval.experiments import experiment_fig13


def test_fig13_clustering_quality(benchmark):
    result = benchmark.pedantic(
        experiment_fig13,
        kwargs={"dataset": "cora", "with_plots": True},
        rounds=1,
        iterations=1,
    )
    emit(result)
    coverage = {row["layout"]: row["tile_cov"] for row in result.rows}
    igcn = coverage["i-gcn (islandized)"]
    # I-GCN clusters nnz at least as well as every lightweight
    # reordering, and strictly better than the original layout.
    assert igcn >= max(v for k, v in coverage.items() if k != "i-gcn (islandized)")
    assert igcn > coverage["original"]
    # The reordering baselines leave outlying non-zeros (paper: "many").
    outliers = {row["layout"]: row["outliers"] for row in result.rows}
    for name in ("hubsort", "hubcluster", "dbg"):
        assert outliers[name] > outliers["i-gcn (islandized)"], name
