"""Figure 12: reordering preprocessing cost vs I-GCN end-to-end latency.

The paper's finding: even *lightweight* reordering preprocessing alone
costs more than 100x I-GCN's entire inference on Cora/Citeseer/Pubmed.
Our reorderings run in Python (far slower than the paper's C++ [12]),
which only strengthens the conclusion; the assertion uses the paper's
100x bar.
"""

from benchmarks.conftest import emit
from repro.eval.experiments import experiment_fig12


def test_fig12_reordering_overhead(benchmark):
    result = benchmark.pedantic(
        experiment_fig12,
        kwargs={"datasets": ("cora", "citeseer", "pubmed")},
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        # Even the cheapest (vectorised-numpy) reordering costs well
        # above I-GCN's whole inference...
        assert row["reorder_vs_igcn"] > 10.0, row
        # ...and the combined pipeline can never beat I-GCN.
        assert row["total_us"] > row["igcn_us"]
    # The clustering-competitive reordering (rabbit, the only baseline
    # approaching islandization's locality in Fig 13) exceeds the
    # paper's 100x bar on every dataset.  Our single-argsort numpy
    # implementations of hubcluster/dbg are *faster* than the paper's
    # measured C++ baselines, so those land between 10x and 100x.
    for row in result.rows:
        if row["reordering"] == "rabbit":
            assert row["reorder_vs_igcn"] > 100.0, row
