"""Consumer backend scaling: batched multi-island kernel vs scalar oracle.

Runs the :mod:`repro.eval.bench_consumer` harness over its smoke tiers,
prints the scaling table, and asserts the two properties the perf
trajectory depends on: both backends satisfy the exact-equivalence
contract (counts, traffic, ring/PRC statistics — byte-identical
functional outputs on the smallest tiers), and the batched kernel is
not slower than the scalar loop at the largest smoke size.  The full
ladder (up to ~2e6 edges) runs via ``python -m repro bench consumer``;
keeping the suite's tiers small bounds bench-session time.
"""

import pytest

from repro.eval import render_table
from repro.eval.bench_consumer import run_consumer_bench

SMOKE_TIERS = ("1e3", "1e4", "1e5")


@pytest.fixture(scope="module")
def record():
    return run_consumer_bench(tiers=SMOKE_TIERS, repeats=3)


def test_consumer_scaling(record):
    print()
    print(render_table(record["tiers"], title="consumer backend scaling"))
    assert [row["tier"] for row in record["tiers"]] == list(SMOKE_TIERS)


def test_backends_equal_on_every_tier(record):
    assert all(row["equal"] for row in record["tiers"])


def test_functional_verified_on_small_tiers(record):
    # The byte-identical output check must actually run somewhere.
    assert any(row["functional_verified"] for row in record["tiers"])


def test_batched_not_slower_at_largest_tier(record):
    largest = record["tiers"][-1]
    assert largest["batched_s"] <= largest["scalar_s"], largest


def test_speedup_grows_with_scale(record):
    # The batched kernel amortises fixed vectorization costs, so the
    # ratio must improve from the smallest to the largest smoke tier.
    speedups = [row["speedup"] for row in record["tiers"]]
    assert speedups[-1] > speedups[0]
