"""Setup shim: enables legacy editable installs (``pip install -e .``
with ``--no-build-isolation``) in offline environments where the
``wheel`` package (needed by PEP 517 editable builds) is absent.

All project metadata lives in ``pyproject.toml``; setuptools reads it
from there.
"""
from setuptools import setup

setup()
