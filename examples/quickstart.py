"""Quickstart: simulate I-GCN inference on Cora and compare to AWB-GCN.

Run:
    python examples/quickstart.py
"""

from repro import IGCNAccelerator, gcn_model, load_dataset
from repro.baselines import AWBGCNAccelerator
from repro.eval import render_table


def main() -> None:
    # 1. Load a dataset (an offline surrogate with Cora's published
    #    statistics and community structure; see DESIGN.md §4).
    ds = load_dataset("cora")
    print(f"dataset: {ds.name}, {ds.num_nodes} nodes, "
          f"{ds.graph.num_edges} directed edges, "
          f"{ds.num_features} features, {ds.num_classes} classes")

    # 2. Build the 2-layer GCN the paper evaluates (original Kipf dims).
    model = gcn_model(ds.num_features, ds.num_classes, variant="algo")

    # 3. Simulate one inference on the I-GCN accelerator.
    accelerator = IGCNAccelerator()
    report = accelerator.run(
        ds.graph, model, feature_density=ds.feature_density
    )

    isl = report.islandization
    print(f"\nislandization: {isl.num_rounds} rounds, "
          f"{isl.num_islands} islands, {isl.num_hubs} hubs "
          f"({isl.hub_fraction:.1%} of nodes)")
    print(f"aggregation ops pruned: {report.aggregation_pruning_rate:.1%} "
          f"(paper: 39% on Cora)")
    print(f"overall ops pruned:     {report.overall_pruning_rate:.1%}")

    # 4. Compare against the prior-art AWB-GCN on identical hardware.
    awb = AWBGCNAccelerator().run(
        ds.graph, model, feature_density=ds.feature_density
    )
    rows = [
        {"platform": "I-GCN", "latency_us": round(report.latency_us, 2),
         "dram_mb": round(report.offchip_bytes / 1e6, 3),
         "graphs_per_kj": round(report.graphs_per_kj)},
        {"platform": "AWB-GCN", "latency_us": round(awb.latency_us, 2),
         "dram_mb": round(awb.offchip_bytes / 1e6, 3),
         "graphs_per_kj": round(awb.graphs_per_kj)},
    ]
    print(render_table(rows, title="I-GCN vs AWB-GCN (Cora, GCN-algo)"))
    print(f"\nspeedup over AWB-GCN: "
          f"{awb.latency_us / report.latency_us:.2f}x (paper: 1.8x)")


if __name__ == "__main__":
    main()
