"""Design-space exploration of the I-GCN microarchitecture.

Sweeps the knobs the paper exposes but does not fully explore — MAC
array width, pre-aggregation group width k, island-size cap c_max, and
TP-BFS engine count — and reports latency, pruning, and the area split
for each point.  Useful as a template for sizing an I-GCN instance for
a new workload.

Run:
    python examples/design_space.py
"""

from repro import ConsumerConfig, IGCNAccelerator, LocatorConfig, gcn_model, load_dataset
from repro.eval import render_table
from repro.hw import HardwareConfig
from repro.hw.area import AreaModel


def sweep_macs(ds, model):
    rows = []
    for num_macs in (1024, 2048, 4096, 8192):
        hw = HardwareConfig(num_macs=num_macs)
        report = IGCNAccelerator(hw=hw).run(
            ds.graph, model, feature_density=ds.feature_density
        )
        area = AreaModel(num_macs=num_macs).breakdown()
        rows.append({
            "num_macs": num_macs,
            "latency_us": round(report.latency_us, 2),
            "alms": area.total,
            "consumer_share": round(area.consumer_fraction, 2),
        })
    print(render_table(rows, title="MAC array sweep (cora, GCN-algo)"))


def sweep_preagg_k(ds, model, islandization):
    rows = []
    for k in (2, 4, 6, 8, 12):
        acc = IGCNAccelerator(consumer=ConsumerConfig(preagg_k=k))
        report = acc.run(
            ds.graph, model, feature_density=ds.feature_density,
            islandization=islandization,
        )
        rows.append({
            "k": k,
            "prune_agg": f"{report.aggregation_pruning_rate:.1%}",
            "latency_us": round(report.latency_us, 2),
        })
    print(render_table(rows, title="Pre-aggregation width k sweep"))


def sweep_cmax(ds, model):
    rows = []
    for c_max in (8, 32, 64, 128):
        acc = IGCNAccelerator(locator=LocatorConfig(c_max=c_max))
        report = acc.run(ds.graph, model, feature_density=ds.feature_density)
        isl = report.islandization
        rows.append({
            "c_max": c_max,
            "islands": isl.num_islands,
            "rounds": isl.num_rounds,
            "prune_agg": f"{report.aggregation_pruning_rate:.1%}",
        })
    print(render_table(rows, title="Island size cap c_max sweep"))


def sweep_engines(ds, model):
    rows = []
    for p2 in (8, 32, 64, 128):
        acc = IGCNAccelerator(locator=LocatorConfig(p2=p2))
        report = acc.run(ds.graph, model, feature_density=ds.feature_density)
        area = AreaModel(num_bfs_engines=p2).breakdown()
        rows.append({
            "tp_bfs_engines": p2,
            "locator_cycles": round(report.locator_cycles),
            "total_latency_us": round(report.latency_us, 2),
            "locator_area_share": round(area.locator_fraction, 2),
        })
    print(render_table(rows, title="TP-BFS engine count sweep"))


def main() -> None:
    ds = load_dataset("cora")
    model = gcn_model(ds.num_features, ds.num_classes)
    islandization = IGCNAccelerator().islandize(ds.graph)

    sweep_macs(ds, model)
    sweep_preagg_k(ds, model, islandization)
    sweep_cmax(ds, model)
    sweep_engines(ds, model)


if __name__ == "__main__":
    main()
