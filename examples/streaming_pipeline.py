"""Streamed vs staged pipeline: the Fig. 3 overlap, end to end.

I-GCN's Island Consumer "can process an island as soon as it is
formed" (paper §3.1.1): islandization and GCN processing overlap
instead of running back-to-back.  This example runs the same inference
on a synthetic hub-and-island graph in both pipeline modes, shows that
they produce identical results, watches the locator's per-round island
stream, and prints the modelled overlap win.

Run:
    python examples/streaming_pipeline.py
"""

from repro import IGCNAccelerator, gcn_model
from repro.core import ConsumerConfig, IslandLocator
from repro.eval import render_table
from repro.graph import hub_island_graph
from repro.graph.generators import CommunityProfile


def main() -> None:
    # 1. A synthetic hub-and-island graph (the structure the paper's
    #    locator targets), plus a small 2-layer GCN.
    graph, _ = hub_island_graph(
        4000,
        CommunityProfile(island_size_mean=12.0, background_fraction=0.01),
        seed=7,
        name="streaming-demo",
    )
    graph = graph.without_self_loops()
    model = gcn_model(32, 8)
    print(f"graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges // 2} undirected edges")

    # 2. Watch the producer side: the Island Locator streams one
    #    RoundOutput per round — islands finalized that round, handed
    #    to the consumer while later rounds are still running.
    print("\nlocator stream:")
    result = IslandLocator().run(
        graph,
        on_round=lambda chunk: print(
            f"  round {chunk.round_id}: th={chunk.stats.threshold:>3} "
            f"-> {chunk.num_islands} islands, "
            f"{chunk.stats.hubs_found} hubs"
        ),
    )
    print(f"  total: {result.num_islands} islands, {result.num_hubs} hubs "
          f"in {result.num_rounds} rounds")

    # 3. Run the full inference in both pipeline modes.  Counts, DRAM
    #    traffic and outputs are byte-identical; only the overlap model
    #    differs (tests/test_pipeline_stream.py pins the equivalence).
    reports = {
        pipeline: IGCNAccelerator(
            consumer=ConsumerConfig(pipeline=pipeline)
        ).run(graph, model, feature_density=0.5)
        for pipeline in ("staged", "streamed")
    }
    staged, streamed = reports["staged"], reports["streamed"]
    assert staged.layers == streamed.layers, "modes must count identically"

    rows = [
        {
            "pipeline": name,
            "locator_cyc": round(rep.locator_cycles),
            "consumer_cyc": round(rep.consumer_cycles),
            "total_cyc": round(rep.total_cycles),
            "latency_us": round(rep.latency_us, 3),
        }
        for name, rep in reports.items()
    ]
    print()
    print(render_table(rows, title="staged vs streamed (identical results, "
                                   "different overlap)"))
    print(f"\noverlap hides {streamed.overlap_saved_cycles:.0f} cycles: "
          f"{staged.total_cycles / streamed.total_cycles:.2f}x "
          f"end-to-end speedup from streaming (Fig. 3)")


if __name__ == "__main__":
    main()
