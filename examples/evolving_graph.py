"""Evolving-graph scenario: maintaining the islandization under deltas.

The paper's core argument against offline reordering (Rubik, GraphACT):
real-world graphs are "frequently updated (e.g., evolving graphs) or
generated dynamically (e.g., inductive graphs)", so any preprocessing
cost is paid again on every update.  This example simulates a social
network absorbing batches of churn (triadic-closure edge insertions
plus deletions, as :class:`~repro.graph.csr.GraphDelta` objects) and
compares three ways of keeping the structure inference-ready after
each snapshot:

* **I-GCN, incremental** — ``Engine.update(graph, delta)`` maintains
  the cached islandization by re-running the Island Locator only on
  the delta's dirty region and splicing the untouched islands through.
  The result is *exactly* what a from-scratch run would produce
  (asserted below via ``IslandizationResult.equals``), so downstream
  inference is identical — only the restructuring cost changes.
* **I-GCN, from scratch** — re-record the whole mutated graph with
  :func:`~repro.core.islandizer_incremental.record_islandization`.
  Already cheap (runtime restructuring is the paper's story), but it
  repays the full cost for a delta that touched <1% of the nodes —
  and in an evolving pipeline it *must* be the recording variant,
  because a plain ``islandize`` leaves no locator state behind to
  absorb the next delta.
* **AWB-GCN + rabbit** — the offline baseline: re-run host-side
  rabbit reordering on every snapshot because the structure changed.

Run:
    python examples/evolving_graph.py
"""

import time

import numpy as np

from repro.core import LocatorConfig
from repro.core.islandizer_incremental import record_islandization
from repro.eval import render_table
from repro.eval.bench_incremental import churn_delta
from repro.graph import hub_island_graph
from repro.graph.generators import CommunityProfile
from repro.graph.reorder import get_reordering
from repro.runtime import Engine

NUM_SNAPSHOTS = 4
NUM_NODES = 48_000
EDITS_PER_SNAPSHOT = 40
#: Pinned hub threshold: an evolving pipeline pins TH0 so a delta
#: cannot silently move a quantile-derived one (which would force the
#: incremental path into its full-rebuild fallback on every update).
TH0 = 8


def timed(fn):
    """(result, elapsed ms) of one call."""
    t0 = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - t0) * 1e3


def main() -> None:
    graph, _ = hub_island_graph(
        NUM_NODES,
        CommunityProfile(hub_fraction=0.03, island_size_mean=6.0,
                         island_density=0.7, hub_attach_prob=0.7),
        seed=1,
        name="social",
    )
    graph = graph.without_self_loops()
    config = LocatorConfig(th0=TH0, incremental=True)
    engine = Engine(locator=config)
    # Snapshot 0 pays the full islandization once, recording the
    # incremental bookkeeping alongside it in the engine's store.
    _, setup_ms = timed(lambda: engine.islandization(graph))
    rabbit = get_reordering("rabbit")
    rng = np.random.default_rng(42)

    rows = []
    totals = {"incr": 0.0, "scratch": 0.0, "rabbit": 0.0}
    for snapshot in range(1, NUM_SNAPSHOTS + 1):
        delta = churn_delta(graph, rng, EDITS_PER_SNAPSHOT, TH0)

        upd, incr_ms = timed(lambda: engine.update(graph, delta))
        graph = upd.result.graph

        (scratch, _), scratch_ms = timed(
            lambda: record_islandization(graph, config))
        _, rabbit_ms = timed(lambda: rabbit.run(graph))

        # Maintenance is exact — same islands, same rounds, same
        # per-engine work — so inference downstream is identical.
        assert upd.result.equals(scratch)

        totals["incr"] += incr_ms
        totals["scratch"] += scratch_ms
        totals["rabbit"] += rabbit_ms
        rows.append({
            "snapshot": snapshot,
            "edits": delta.num_edges,
            "dirty_nodes": upd.dirty_nodes,
            "islands": upd.result.num_islands,
            "incr_ms": round(incr_ms, 2),
            "scratch_ms": round(scratch_ms, 2),
            "rabbit_ms": round(rabbit_ms, 2),
        })

    print(render_table(
        rows, title="Evolving social network: restructuring per snapshot"
    ))
    print(f"\n(snapshot 0 full islandization + recording: "
          f"{setup_ms:.2f} ms, paid once)")

    summary = [
        {
            "strategy": "I-GCN incremental (Engine.update)",
            "restructure_ms": round(totals["incr"], 2),
            "vs_incremental": "1.0x",
        },
        {
            "strategy": "I-GCN from scratch (record_islandization)",
            "restructure_ms": round(totals["scratch"], 2),
            "vs_incremental": f"{totals['scratch'] / totals['incr']:.1f}x",
        },
        {
            "strategy": "AWB-GCN + rabbit reorder (offline)",
            "restructure_ms": round(totals["rabbit"], 2),
            "vs_incremental": f"{totals['rabbit'] / totals['incr']:.1f}x",
        },
    ]
    print()
    print(render_table(
        summary,
        title=f"Cumulative restructuring cost over {NUM_SNAPSHOTS} snapshots",
    ))
    print("\nall three keep the graph inference-ready; the incremental "
          "path does it\nwhile producing bit-identical islandizations "
          "(asserted every snapshot)")


if __name__ == "__main__":
    main()
