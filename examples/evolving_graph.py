"""Evolving-graph scenario: why *runtime* restructuring matters.

The paper's core argument against offline reordering (Rubik, GraphACT):
real-world graphs are "frequently updated (e.g., evolving graphs) or
generated dynamically (e.g., inductive graphs)", so any preprocessing
cost is paid on every update.  This example simulates a social network
that gains edges over several snapshots and compares, per snapshot:

* I-GCN — islandizes *on the accelerator, at runtime*, as part of the
  same inference (no preprocessing);
* AWB-GCN + rabbit reordering — pays the host-side reordering cost
  again for every snapshot because the structure changed.

Run:
    python examples/evolving_graph.py
"""

import numpy as np

from repro import IGCNAccelerator, gcn_model
from repro.baselines import AWBGCNAccelerator
from repro.eval import render_table
from repro.graph import CSRGraph, hub_island_graph
from repro.graph.generators import CommunityProfile
from repro.graph.reorder import get_reordering

NUM_SNAPSHOTS = 4
EDGES_PER_SNAPSHOT = 400


def evolve(graph: CSRGraph, *, seed: int) -> CSRGraph:
    """Add a batch of new edges (new collaborations) to the network."""
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    rows = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    new_u = rng.integers(0, n, size=EDGES_PER_SNAPSHOT)
    new_v = rng.integers(0, n, size=EDGES_PER_SNAPSHOT)
    keep = new_u != new_v
    return CSRGraph.from_edges(
        n,
        np.concatenate([rows, new_u[keep]]),
        np.concatenate([graph.indices, new_v[keep]]),
        name=graph.name,
    )


def main() -> None:
    graph, _ = hub_island_graph(
        4000,
        CommunityProfile(hub_fraction=0.03, island_size_mean=6.0,
                         island_density=0.7, hub_attach_prob=0.7),
        seed=1,
        name="social",
    )
    model = gcn_model(256, 16)
    igcn = IGCNAccelerator()
    awb = AWBGCNAccelerator()
    rabbit = get_reordering("rabbit")

    rows = []
    total_igcn_us = 0.0
    total_offline_us = 0.0
    for snapshot in range(NUM_SNAPSHOTS):
        if snapshot:
            graph = evolve(graph, seed=100 + snapshot)

        # I-GCN: restructuring happens inside the inference.
        igcn_report = igcn.run(graph, model, feature_density=0.1)

        # Offline pipeline: reorder (host wall-clock) + AWB inference.
        reorder = rabbit.run(graph)
        awb_report = awb.run(reorder.apply(graph), model, feature_density=0.1)
        reorder_us = reorder.seconds * 1e6

        total_igcn_us += igcn_report.latency_us
        total_offline_us += reorder_us + awb_report.latency_us
        rows.append({
            "snapshot": snapshot,
            "edges": graph.num_edges,
            "igcn_us": round(igcn_report.latency_us, 1),
            "reorder_us": round(reorder_us, 1),
            "awb_us": round(awb_report.latency_us, 1),
            "offline_total_us": round(reorder_us + awb_report.latency_us, 1),
        })

    print(render_table(rows, title="Evolving social network, per snapshot"))
    print(f"\ncumulative latency over {NUM_SNAPSHOTS} snapshots:")
    print(f"  I-GCN (runtime islandization): {total_igcn_us:,.1f} us")
    print(f"  rabbit + AWB-GCN (offline):    {total_offline_us:,.1f} us")
    print(f"  -> {total_offline_us / total_igcn_us:.0f}x advantage for "
          f"runtime restructuring on dynamic graphs")


if __name__ == "__main__":
    main()
