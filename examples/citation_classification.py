"""Functional end-to-end run: node classification over a citation graph.

Demonstrates the *functional* simulation mode: the accelerator executes
the real GCN math through the islandized schedule (pre-aggregation,
window-scan reuse, hub partial sums over the ring) and the output is
verified against the scipy reference — proving the paper's claim that
redundancy removal is lossless ("The removal of these operations is
lossless", §4.3).

Run:
    python examples/citation_classification.py
"""

import numpy as np

from repro import IGCNAccelerator, gcn_model, load_dataset, reference_forward
from repro.models import init_weights


def main() -> None:
    # A 25%-scale Citeseer surrogate with materialised sparse features
    # and structure-correlated labels.
    ds = load_dataset("citeseer", scale=0.25, with_features=True)
    model = gcn_model(ds.num_features, ds.num_classes)
    weights = init_weights(model, seed=42)

    print(f"running functional inference on {ds.name} "
          f"({ds.num_nodes} nodes, {ds.features.nnz} feature nnz)")
    report = IGCNAccelerator().run(
        ds.graph,
        model,
        features=ds.features,
        weights=weights,
        functional=True,
        feature_density=ds.feature_density,
    )

    # Verify losslessness against the plain scipy execution.
    reference = reference_forward(
        ds.graph.without_self_loops(), model, ds.features, weights
    )
    max_err = float(np.max(np.abs(report.outputs - reference)))
    print(f"max |islandized - reference| = {max_err:.2e}  (lossless)")
    assert max_err < 1e-9

    # The logits are untrained, but the full classification plumbing
    # works: per-node predictions come straight from the accelerator.
    predictions = report.outputs.argmax(axis=1)
    distribution = np.bincount(predictions, minlength=ds.num_classes)
    print(f"predicted class distribution (untrained weights): "
          f"{distribution.tolist()}")

    print(f"\nops actually performed: {report.total_macs:,} MACs "
          f"({report.overall_pruning_rate:.1%} pruned vs per-edge baseline)")
    print(f"simulated latency: {report.latency_us:.2f} us; "
          f"energy efficiency: {report.graphs_per_kj:,.0f} Graph/kJ")
    print("window scan mix per layer:")
    for layer in report.layers:
        scan = layer.scan
        print(f"  layer {layer.layer_index}: full={scan.windows_full} "
              f"subtract={scan.windows_subtract} direct={scan.windows_direct} "
              f"skipped={scan.windows_skipped}")


if __name__ == "__main__":
    main()
