"""Common report interface shared by every simulated platform.

Historically the repo had two incompatible result records — the I-GCN
accelerator's :class:`~repro.core.accelerator.IGCNReport` and the
baselines' :class:`~repro.baselines.common.SimReport` — which forced
every caller (CLI, experiments, benchmarks) to special-case the two.
:class:`BaseReport` reconciles them: any report exposes ``platform``,
``graph_name``, ``model_name``, ``latency_us``, a :class:`TrafficMeter`
(``meter``), an optional energy model, and a uniform ``summary()``.

``base_summary()`` is the *shared* schema — identical keys for every
platform, which is what ``Engine.sweep`` emits so cross-platform rows
tabulate cleanly.  ``summary()`` extends it with platform-specific
extras (e.g. I-GCN's pruning rates) via ``_summary_extras``.
"""

from __future__ import annotations

import math

__all__ = ["BaseReport", "SUMMARY_FIELDS"]

#: Keys guaranteed present in every report's ``summary()``.
SUMMARY_FIELDS = (
    "platform",
    "graph",
    "model",
    "macs",
    "dram_mb",
    "latency_us",
    "graphs_per_kj",
)


class BaseReport:
    """Mixin giving simulator reports one uniform result surface.

    Subclasses (dataclasses) must provide the attributes ``platform``,
    ``graph_name``, ``model_name``, ``latency_us``, ``meter`` and
    ``energy`` (which may be ``None``), plus the :attr:`macs_performed`
    property.
    """

    @property
    def macs_performed(self) -> int:
        """MACs actually executed by this platform."""
        raise NotImplementedError

    @property
    def offchip_bytes(self) -> int:
        """Total DRAM traffic."""
        return self.meter.total_bytes

    @property
    def graphs_per_kj(self) -> float:
        """Table 2's energy-efficiency metric (NaN without an energy model)."""
        energy = getattr(self, "energy", None)
        if energy is None:
            return float("nan")
        return energy.graphs_per_kj

    # ------------------------------------------------------------------
    def base_summary(self) -> dict[str, object]:
        """The shared cross-platform schema (:data:`SUMMARY_FIELDS`)."""
        gpkj = self.graphs_per_kj
        return {
            "platform": self.platform,
            "graph": self.graph_name,
            "model": self.model_name,
            "macs": self.macs_performed,
            "dram_mb": round(self.offchip_bytes / 1e6, 3),
            "latency_us": round(self.latency_us, 3),
            "graphs_per_kj": None if math.isnan(gpkj) else round(gpkj, 1),
        }

    def _summary_extras(self) -> dict[str, object]:
        """Platform-specific additions merged into :meth:`summary`."""
        return {}

    def summary(self) -> dict[str, object]:
        """Key metrics as a flat dict (shared schema + platform extras)."""
        merged = self.base_summary()
        merged.update(self._summary_extras())
        return merged
