"""AWB-GCN baseline (Geng et al., MICRO 2020).

AWB-GCN is the paper's closest competitor: same FPGA, same 4096
fp32 MACs at 330 MHz, combination-first, PUSH-style SpMM with *runtime
workload autotuning* that fixes the power-law imbalance problem but —
the I-GCN paper's argument — not the data-locality problem of the
result matrix.

Model summary
-------------
* full per-edge aggregation (no redundancy removal);
* adjacency and features stream once per layer (AWB-GCN's evict-free
  streaming of A, unlike naive column-wise push);
* the dense partial-result matrix (n × out) is the random-access
  working set: the fraction that exceeds the on-chip result buffer
  turns the per-edge updates into DRAM read-modify-writes;
* ``compute_utilization`` 0.45, back-solved from AWB-GCN's published
  Cora latency (2.3 µs ≈ 1.4 MMAC / 4096 / 330 MHz / 0.45) — the
  autotuner balances queues well but the deep SpMM pipeline drains at
  every output-channel switch on small graphs;
* ``total_power_w`` 135 W, back-solved from AWB-GCN's Table 2 EE.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.common import AcceleratorModel
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig
from repro.hw.memory import CacheModel, TrafficMeter
from repro.models.workload import BYTES_PER_INDEX, BYTES_PER_VALUE, Workload

__all__ = ["AWBGCNAccelerator", "AWB_DEFAULT_HW"]

AWB_DEFAULT_HW = HardwareConfig(
    name="awb-gcn-stratix10",
    num_macs=4096,
    frequency_hz=330e6,
    offchip_bandwidth_bps=76.8e9,
    compute_utilization=0.45,
    total_power_w=135.0,
)


class AWBGCNAccelerator(AcceleratorModel):
    """Push-based SpMM accelerator with runtime workload rebalancing."""

    name = "awb-gcn"

    #: Fraction of spilled read-modify-writes that the autotuner's
    #: column batching coalesces on-chip before they reach DRAM
    #: (back-solved from AWB-GCN's published NELL latency).
    RMW_TILING_FACTOR = 0.25

    def __init__(
        self,
        hw: HardwareConfig | None = None,
        *,
        result_buffer_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        super().__init__(hw or AWB_DEFAULT_HW)
        self.result_buffer_bytes = result_buffer_bytes

    def traffic(self, graph: CSRGraph, workload: Workload) -> TrafficMeter:
        meter = TrafficMeter()
        last = len(workload.layers) - 1
        for layer in workload.layers:
            result_category = "results" if layer.layer_index == last else "hidden-results"
            meter.read("features", layer.feature_bytes)
            meter.read("weights", layer.weight_bytes)
            meter.read(
                "adjacency",
                layer.adjacency_nnz * (BYTES_PER_VALUE + BYTES_PER_INDEX),
            )
            # Partial results: whole XW-out matrix is the working set;
            # the autotuner's column batching coalesces most spilled
            # read-modify-writes (RMW_TILING_FACTOR) before DRAM.
            result_bytes = workload.num_nodes * layer.out_dim * BYTES_PER_VALUE
            cache = CacheModel("awb-results", self.result_buffer_bytes)
            cache.fit(result_bytes)
            rmw_bytes = 2 * layer.out_dim * BYTES_PER_VALUE
            cache.access(
                int(layer.adjacency_nnz * self.RMW_TILING_FACTOR),
                bytes_per_access=rmw_bytes,
                meter=meter,
                category="result-rmw",
            )
            meter.write(result_category, result_bytes)
        return meter

    def with_utilization(self, utilization: float) -> "AWBGCNAccelerator":
        """Clone with a different utilisation (for sensitivity studies)."""
        return AWBGCNAccelerator(
            replace(self.hw, compute_utilization=utilization),
            result_buffer_bytes=self.result_buffer_bytes,
        )
