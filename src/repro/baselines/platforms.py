"""CPU/GPU framework baselines (PyG and DGL on Xeons, V100, RTX 8000).

Roofline-style models of GNN frameworks on general-purpose hardware:

``latency = dense_flops / effective_flops
          + scatter_bytes / effective_bandwidth
          + framework_overhead``

* *dense_flops* — frameworks run ``X @ W`` as a dense GEMM (they do not
  exploit input-feature sparsity), so combination costs
  ``2 n C_in C_out`` regardless of X's nnz;
* *scatter_bytes* — aggregation is a memory-bound gather/scatter: three
  row-sized touches per edge (read source, read+write target);
* *framework_overhead* — per-inference kernel-launch / Python dispatch
  cost; dominates on tiny graphs (why Cora takes milliseconds on a
  GPU).

Effective constants are documented engineering numbers: a few percent
of peak FLOPs for sparse-workload CPUs, ~10-20 % of peak for GPU dense
GEMMs at GNN sizes, DDR4/HBM streaming efficiencies, and measured-order
framework overheads.  They are calibrated so the I-GCN speedup
magnitudes land in the paper's bands (≈10⁴× PyG-CPU, ≈10³× DGL-CPU,
≈10²-10³× GPUs); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import SimReport
from repro.graph.csr import CSRGraph
from repro.hw.memory import TrafficMeter
from repro.models.configs import ModelConfig
from repro.models.workload import BYTES_PER_VALUE, Workload, build_workload

__all__ = ["PlatformModel", "PLATFORMS", "platform_names", "get_platform"]


@dataclass(frozen=True)
class PlatformModel:
    """Roofline model of one framework/hardware pair."""

    name: str
    effective_gflops: float       # dense-GEMM throughput actually achieved
    effective_bandwidth_gbps: float
    framework_overhead_s: float   # per-inference dispatch cost

    def run(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        feature_density: float = 1.0,
        workload: Workload | None = None,
    ) -> SimReport:
        """Estimate one inference on this platform.

        ``workload`` lets callers (the runtime Engine) supply a cached
        operation-count descriptor.
        """
        if workload is None:
            workload = build_workload(graph, model, feature_density=feature_density)
        dense_flops = 0.0
        scatter_bytes = 0.0
        meter = TrafficMeter()
        for layer in workload.layers:
            dense_flops += 2.0 * workload.num_nodes * layer.in_dim * layer.out_dim
            row_bytes = layer.out_dim * BYTES_PER_VALUE
            scatter_bytes += 3.0 * layer.adjacency_nnz * row_bytes
            meter.read("features", layer.feature_bytes)
            meter.read("adjacency", layer.adjacency_nnz * 8)
            meter.read("gather", int(2.0 * layer.adjacency_nnz * row_bytes))
            meter.write("scatter", int(layer.adjacency_nnz * row_bytes))
            meter.write("results", workload.num_nodes * row_bytes)
        gemm_s = dense_flops / (self.effective_gflops * 1e9)
        scatter_s = scatter_bytes / (self.effective_bandwidth_gbps * 1e9)
        latency_s = gemm_s + scatter_s + self.framework_overhead_s
        return SimReport(
            platform=self.name,
            graph_name=graph.name,
            model_name=model.name,
            macs=int(dense_flops / 2),
            meter=meter,
            latency_us=latency_s * 1e6,
            notes=(
                f"gemm={gemm_s * 1e6:.1f}us scatter={scatter_s * 1e6:.1f}us "
                f"overhead={self.framework_overhead_s * 1e6:.1f}us"
            ),
        )


#: The six software platforms of Figure 14(B).
PLATFORMS: dict[str, PlatformModel] = {
    # PyTorch Geometric on Intel E5-2680-v3: Python-heavy dispatch, MKL
    # GEMM at a few % of peak for GNN-shaped matrices.
    "pyg-cpu": PlatformModel("pyg-cpu", 15.0, 6.0, 9e-3),
    # DGL on E5-2683-v3: fused C++ kernels, better GEMM locality.
    "dgl-cpu": PlatformModel("dgl-cpu", 90.0, 24.0, 1.0e-3),
    # PyG on V100 (PCIe dispatch + many small kernels).
    "pyg-gpu-v100": PlatformModel("pyg-gpu-v100", 2500.0, 350.0, 8.0e-4),
    # PyG on RTX 8000.
    "pyg-gpu-rtx8000": PlatformModel("pyg-gpu-rtx8000", 2200.0, 300.0, 8.0e-4),
    # DGL on V100 (more launches per layer than PyG's fused path).
    "dgl-gpu-v100": PlatformModel("dgl-gpu-v100", 2500.0, 350.0, 1.0e-3),
}


def platform_names() -> list[str]:
    """Registered platform names."""
    return list(PLATFORMS)


def get_platform(name: str) -> PlatformModel:
    """Look up a platform model by name."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {', '.join(PLATFORMS)}"
        ) from None
