"""Generic PULL (row-wise) aggregation dataflow (§2.2.2, Table 1).

Nodes are aggregated sequentially; for each non-zero of A the target
pulls the source's XW row.  The result matrix streams out row by row
(small output buffer — the pull method's advantage) but the XW fetches
are random-access: whenever the XW working set exceeds the on-chip
feature buffer, the uncovered fraction of the per-edge row fetches
spills to DRAM — the pull method's fundamental weakness the paper
builds on.
"""

from __future__ import annotations

from repro.baselines.common import AcceleratorModel
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig
from repro.hw.memory import CacheModel, TrafficMeter
from repro.models.workload import BYTES_PER_INDEX, BYTES_PER_VALUE, Workload

__all__ = ["PullAccelerator"]


class PullAccelerator(AcceleratorModel):
    """Row-wise pull dataflow with an XW row cache."""

    name = "pull-row-wise"

    def __init__(self, hw: HardwareConfig, *, feature_cache_bytes: int | None = None) -> None:
        super().__init__(hw)
        self.feature_cache_bytes = (
            feature_cache_bytes
            if feature_cache_bytes is not None
            else hw.feature_buffer_bytes
        )

    def traffic(self, graph: CSRGraph, workload: Workload) -> TrafficMeter:
        meter = TrafficMeter()
        last = len(workload.layers) - 1
        for layer in workload.layers:
            result_category = "results" if layer.layer_index == last else "hidden-results"
            # Input features and weights stream in once for combination.
            meter.read("features", layer.feature_bytes)
            meter.read("weights", layer.weight_bytes)
            # Adjacency streams once (value + index per nnz).
            meter.read(
                "adjacency",
                layer.adjacency_nnz * (BYTES_PER_VALUE + BYTES_PER_INDEX),
            )
            # Per-edge XW row pulls, spilling beyond the feature buffer.
            row_bytes = layer.out_dim * BYTES_PER_VALUE
            cache = CacheModel("xw-rows", self.feature_cache_bytes)
            cache.fit(workload.num_nodes * row_bytes)
            cache.access(
                layer.adjacency_nnz,
                bytes_per_access=row_bytes,
                meter=meter,
                category="xw-refetch",
            )
            # Results stream out once (good X_o reuse).
            meter.write(result_category, workload.num_nodes * row_bytes)
        return meter
