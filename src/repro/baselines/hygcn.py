"""HyGCN baseline (Yan et al., HPCA 2020).

HyGCN is a hybrid ASIC: an aggregation engine (PULL-based, with
sparsity-aware window sharding) feeding a combination engine (systolic
arrays), 4608 fixed-point MACs at 1 GHz behind an HBM stack.

Model summary
-------------
* full per-edge aggregation, aggregation-first order (HyGCN aggregates
  raw features, then combines: MACs = nnz(A)·C_in + n·C_in·C_out per
  layer — more arithmetic than combination-first, §2.2.1);
* PULL feature fetches go through the aggregation engine's edge window;
  the input feature working set beyond the on-chip buffer spills per
  edge (window sharding trims this with a documented sharing factor);
* HBM (256 GB/s) hides much of that traffic — HyGCN's published
  argument — so it is memory-rich but compute-order-poor;
* utilisation 0.30: HyGCN's own evaluation reports low aggregation
  engine efficiency on extremely sparse graphs (load imbalance between
  its two engines).
"""

from __future__ import annotations

from repro.baselines.common import AcceleratorModel
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig
from repro.hw.memory import CacheModel, TrafficMeter
from repro.models.workload import BYTES_PER_INDEX, BYTES_PER_VALUE, Workload

__all__ = ["HyGCNAccelerator", "HYGCN_DEFAULT_HW"]

HYGCN_DEFAULT_HW = HardwareConfig(
    name="hygcn-asic",
    num_macs=4608,
    frequency_hz=1e9,
    offchip_bandwidth_bps=256e9,   # HBM
    compute_utilization=0.30,
    total_power_w=6.7,             # HyGCN's published ASIC power
    feature_buffer_bytes=16 * 1024 * 1024,
)

#: Fraction of per-edge feature refetches removed by HyGCN's window
#: sharding (their graph-partitioning optimisation).
WINDOW_SHARDING_FACTOR = 0.5


class HyGCNAccelerator(AcceleratorModel):
    """Hybrid aggregation/combination ASIC with PULL dataflow."""

    name = "hygcn"

    def __init__(self, hw: HardwareConfig | None = None) -> None:
        super().__init__(hw or HYGCN_DEFAULT_HW)

    def macs(self, workload: Workload) -> int:
        # Aggregation-first: aggregate C_in-wide raw features, then
        # combine the aggregated (dense) features.
        total = 0
        for layer in workload.layers:
            total += layer.adjacency_nnz * layer.in_dim
            total += workload.num_nodes * layer.in_dim * layer.out_dim
        return total

    def traffic(self, graph: CSRGraph, workload: Workload) -> TrafficMeter:
        meter = TrafficMeter()
        last = len(workload.layers) - 1
        for layer in workload.layers:
            result_category = (
                "results" if layer.layer_index == last else "hidden-results"
            )
            meter.read("features", layer.feature_bytes)
            meter.read("weights", layer.weight_bytes)
            meter.read(
                "adjacency",
                layer.adjacency_nnz * (BYTES_PER_VALUE + BYTES_PER_INDEX),
            )
            # Aggregation-first pulls raw feature rows per edge.
            row_bytes = layer.in_dim * BYTES_PER_VALUE
            cache = CacheModel("hygcn-features", self.hw.feature_buffer_bytes)
            cache.fit(workload.num_nodes * row_bytes)
            spilled_edges = layer.adjacency_nnz * WINDOW_SHARDING_FACTOR
            cache.access(
                int(spilled_edges),
                bytes_per_access=row_bytes,
                meter=meter,
                category="feature-refetch",
            )
            meter.write(
                result_category,
                workload.num_nodes * layer.out_dim * BYTES_PER_VALUE,
            )
        return meter
