"""SIGMA baseline (Qin et al., HPCA 2020).

SIGMA is a *general* sparse-GEMM accelerator (flexible interconnect,
high MAC utilisation on irregular operands) — the paper's point of
comparison for "SpMM accelerators need to handle all kinds of sparse
matrices" (§5).  It is graph-agnostic, so:

* it evaluates the GraphCONV as plain chained GEMMs in left-to-right
  order ``(A · X) · W`` — it has no reason to know the combination-first
  trick, and the paper's 16× average gap over SIGMA comes almost
  entirely from this: ``A·X`` densifies, making the second multiply a
  dense ``n × C_in × C_out`` GEMM;
* sparse×sparse is handled well (utilisation 0.7 per their results);
* envelope: 8192 fp MACs at 500 MHz behind 128 GB/s, per their paper.
"""

from __future__ import annotations

from repro.baselines.common import AcceleratorModel
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig
from repro.hw.memory import TrafficMeter
from repro.models.workload import BYTES_PER_INDEX, BYTES_PER_VALUE, Workload

__all__ = ["SigmaAccelerator", "SIGMA_DEFAULT_HW"]

SIGMA_DEFAULT_HW = HardwareConfig(
    name="sigma",
    num_macs=8192,
    frequency_hz=500e6,
    offchip_bandwidth_bps=128e9,
    compute_utilization=0.70,
    total_power_w=22.0,
)


class SigmaAccelerator(AcceleratorModel):
    """Flexible sparse-GEMM engine running GraphCONV aggregation-first."""

    name = "sigma"

    def __init__(self, hw: HardwareConfig | None = None) -> None:
        super().__init__(hw or SIGMA_DEFAULT_HW)

    def macs(self, workload: Workload) -> int:
        total = 0
        for layer in workload.layers:
            # A (sparse) x X (sparse at layer 0): one MAC per (edge,
            # nnz-of-source-row) pair; the density term captures X's nnz.
            # A 0-node graph has no feature matrix at all.
            dense_size = workload.num_nodes * layer.in_dim
            density = layer.feature_nnz / dense_size if dense_size else 0.0
            total += int(layer.adjacency_nnz * layer.in_dim * density)
            # (A X) is dense: full dense GEMM against W.
            total += workload.num_nodes * layer.in_dim * layer.out_dim
        return total

    def traffic(self, graph: CSRGraph, workload: Workload) -> TrafficMeter:
        meter = TrafficMeter()
        last = len(workload.layers) - 1
        for layer in workload.layers:
            result_category = (
                "results" if layer.layer_index == last else "hidden-results"
            )
            meter.read("features", layer.feature_bytes)
            meter.read("weights", layer.weight_bytes)
            meter.read(
                "adjacency",
                layer.adjacency_nnz * (BYTES_PER_VALUE + BYTES_PER_INDEX),
            )
            # The densified intermediate (A X) spills and returns.
            intermediate = workload.num_nodes * layer.in_dim * BYTES_PER_VALUE
            meter.write("intermediate", intermediate)
            meter.read("intermediate", intermediate)
            meter.write(
                result_category, workload.num_nodes * layer.out_dim * BYTES_PER_VALUE
            )
        return meter
