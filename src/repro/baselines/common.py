"""Shared infrastructure for the baseline simulators.

Every baseline produces a :class:`SimReport` — the common currency the
evaluation harness uses for cross-platform tables (Figure 14, Table 2).
Accelerator baselines (AWB-GCN, HyGCN, SIGMA) extend
:class:`AcceleratorModel`, which provides the max(compute, memory)
latency composition; platform baselines (CPU/GPU frameworks) have their
own roofline in ``repro.baselines.platforms``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig
from repro.hw.energy import EnergyReport, estimate_energy
from repro.hw.memory import TrafficMeter, effective_offchip_bytes
from repro.models.configs import ModelConfig
from repro.models.workload import Workload, build_workload
from repro.report import BaseReport

__all__ = ["SimReport", "AcceleratorModel"]


@dataclass
class SimReport(BaseReport):
    """Uniform result record for any simulated platform."""

    platform: str
    graph_name: str
    model_name: str
    macs: int
    meter: TrafficMeter = field(repr=False)
    latency_us: float
    energy: EnergyReport | None = None
    utilization: float = 1.0
    notes: str = ""

    @property
    def macs_performed(self) -> int:
        """Uniform-report alias of :attr:`macs`."""
        return self.macs


class AcceleratorModel(ABC):
    """Base class: accelerator with a hardware envelope and a dataflow."""

    name: str = "accelerator"

    def __init__(self, hw: HardwareConfig) -> None:
        self.hw = hw

    @abstractmethod
    def traffic(self, graph: CSRGraph, workload: Workload) -> TrafficMeter:
        """DRAM traffic of this dataflow for the given workload."""

    def macs(self, workload: Workload) -> int:
        """MACs performed; baselines do the full per-edge aggregation."""
        return workload.total_macs

    def run(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        feature_density: float = 1.0,
        workload: Workload | None = None,
    ) -> SimReport:
        """Simulate one inference; latency = max(compute, memory).

        ``workload`` lets callers (the runtime Engine) supply a cached
        operation-count descriptor; it must match
        ``build_workload(graph, model, feature_density=...)``.
        """
        if workload is None:
            workload = build_workload(graph, model, feature_density=feature_density)
        meter = self.traffic(graph, workload)
        macs = self.macs(workload)
        compute_cycles = macs / (self.hw.num_macs * self.hw.compute_utilization)
        # Same on-chip residence convention as the I-GCN latency model:
        # read-mostly operands stay on-chip up to capacity.
        memory_cycles = (
            effective_offchip_bytes(meter, self.hw.onchip_capacity_bytes)
            / self.hw.bytes_per_cycle
        )
        cycles = max(compute_cycles, memory_cycles)
        latency_s = self.hw.cycles_to_seconds(cycles)
        energy = estimate_energy(
            self.hw, latency_s=latency_s, macs=macs, dram_bytes=meter.total_bytes
        )
        return SimReport(
            platform=self.name,
            graph_name=graph.name,
            model_name=model.name,
            macs=macs,
            meter=meter,
            latency_us=latency_s * 1e6,
            energy=energy,
            utilization=self.hw.compute_utilization,
        )
