"""Generic PUSH (column-wise) aggregation dataflow (§2.2.2, Table 1).

Features broadcast channel by channel: full XW reuse, but the partial
result matrix is updated at random row positions.  When even one output
column does not fit on-chip, every per-edge update becomes a
read-modify-write against DRAM for the uncovered fraction.  The
column-wise variant additionally re-reads the adjacency matrix once per
channel pass — the second weakness Table 1 lists.
"""

from __future__ import annotations

from repro.baselines.common import AcceleratorModel
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig
from repro.hw.memory import CacheModel, TrafficMeter
from repro.models.workload import BYTES_PER_INDEX, BYTES_PER_VALUE, Workload

__all__ = ["PushAccelerator"]


class PushAccelerator(AcceleratorModel):
    """Column-wise push dataflow with a partial-result buffer."""

    name = "push-column-wise"

    def __init__(
        self,
        hw: HardwareConfig,
        *,
        result_buffer_bytes: int | None = None,
        adjacency_resident: bool = False,
    ) -> None:
        super().__init__(hw)
        self.result_buffer_bytes = (
            result_buffer_bytes
            if result_buffer_bytes is not None
            else hw.feature_buffer_bytes
        )
        #: When True the adjacency streams once per layer instead of once
        #: per channel (an AWB-GCN-style improvement over naive push).
        self.adjacency_resident = adjacency_resident

    def traffic(self, graph: CSRGraph, workload: Workload) -> TrafficMeter:
        meter = TrafficMeter()
        last = len(workload.layers) - 1
        for layer in workload.layers:
            result_category = "results" if layer.layer_index == last else "hidden-results"
            meter.read("features", layer.feature_bytes)
            meter.read("weights", layer.weight_bytes)
            adjacency_bytes = layer.adjacency_nnz * (
                BYTES_PER_VALUE + BYTES_PER_INDEX
            )
            passes = 1 if self.adjacency_resident else layer.out_dim
            meter.read("adjacency", adjacency_bytes * passes)
            # One partial-result column is n values; uncovered fraction
            # turns per-edge updates into DRAM read-modify-writes.
            column_bytes = workload.num_nodes * BYTES_PER_VALUE
            cache = CacheModel("result-column", self.result_buffer_bytes)
            cache.fit(column_bytes)
            cache.access(
                layer.adjacency_nnz * layer.out_dim,
                bytes_per_access=2 * BYTES_PER_VALUE,
                meter=meter,
                category="result-rmw",
            )
            meter.write(result_category, workload.num_nodes * layer.out_dim * BYTES_PER_VALUE)
        return meter
