"""Baseline simulators: prior-art accelerators, dataflows, platforms."""

from repro.baselines.awb_gcn import AWB_DEFAULT_HW, AWBGCNAccelerator
from repro.baselines.common import AcceleratorModel, SimReport
from repro.baselines.hygcn import HYGCN_DEFAULT_HW, HyGCNAccelerator
from repro.baselines.platforms import (
    PLATFORMS,
    PlatformModel,
    get_platform,
    platform_names,
)
from repro.baselines.pull import PullAccelerator
from repro.baselines.push import PushAccelerator
from repro.baselines.sigma import SIGMA_DEFAULT_HW, SigmaAccelerator

__all__ = [
    "AcceleratorModel",
    "SimReport",
    "AWBGCNAccelerator",
    "AWB_DEFAULT_HW",
    "HyGCNAccelerator",
    "HYGCN_DEFAULT_HW",
    "SigmaAccelerator",
    "SIGMA_DEFAULT_HW",
    "PullAccelerator",
    "PushAccelerator",
    "PlatformModel",
    "PLATFORMS",
    "platform_names",
    "get_platform",
]
