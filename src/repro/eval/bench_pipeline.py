"""Pipeline benchmark: staged vs streamed locator→consumer execution.

Runs a full I-GCN inference (islandization + 2-layer GCN, batched
backends) over the shared hub-and-island graph ladder in both pipeline
modes (§3.1.1, Fig. 3) and records two things per tier:

* the **modelled overlap win** — staged end-to-end cycles (locator then
  consumer, strictly back-to-back) vs streamed cycles (the measured
  per-round release/work makespan), the software-level reproduction of
  the paper's "overlaps graph restructuring and graph processing";
* the **wall-clock cost of streaming** — per-round chunked task
  assembly and execution vs one monolithic batch, to show the streamed
  protocol does not give back the PR-3/PR-4 batching wins.

Each tier also *verifies* the cross-mode equivalence contract — equal
per-layer :class:`~repro.core.consumer.LayerCounts`, equal DRAM
traffic, equal locator/consumer phase cycles — so the overlap
trajectory in ``BENCH_pipeline.json`` can never drift from the
byte-identical-results guarantee ``tests/test_pipeline_stream.py``
pins.

Entry points:

* ``python -m repro bench pipeline`` — run tiers, print a table, write
  the JSON record;
* :func:`run_pipeline_bench` — library API (used by the CI
  ``bench-smoke`` job).

The JSON schema (one record per file)::

    {"benchmark": "pipeline-overlap",
     "config": {"seed": ..., "repeats": ..., "c_max": ..., "preagg_k": ...,
                "layers": ..., "verified": ...},
     "tiers": [{"tier": "1e4", "nodes": ..., "edges": ...,
                "rounds": ..., "islands": ...,
                "staged_cycles": ..., "streamed_cycles": ...,
                "overlap_win": ..., "locator_cycles": ...,
                "consumer_cycles": ..., "staged_s": ..., "streamed_s": ...,
                "equal": true}, ...],
     "largest_tier": "...", "largest_speedup": ...}

``overlap_win`` is ``staged_cycles / streamed_cycles`` (> 1 means the
streamed pipeline hides locator time); ``largest_speedup`` mirrors the
other bench records' key and holds the largest tier's overlap win.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.accelerator import IGCNAccelerator, IGCNReport
from repro.core.config import ConsumerConfig, LocatorConfig
from repro.errors import ConfigError
from repro.eval.bench_locator import bench_graph
from repro.models.configs import gcn_model

__all__ = ["run_pipeline_bench"]


def _run_mode(graph, model, *, pipeline, c_max, preagg_k) -> tuple[float, IGCNReport]:
    """One timed end-to-end inference (islandize + all layers)."""
    accelerator = IGCNAccelerator(
        locator=LocatorConfig(c_max=c_max),
        consumer=ConsumerConfig(preagg_k=preagg_k, pipeline=pipeline),
    )
    start = time.perf_counter()
    report = accelerator.run(graph, model, feature_density=0.5)
    return time.perf_counter() - start, report


def _modes_equal(staged: IGCNReport, streamed: IGCNReport) -> bool:
    """The cross-mode equivalence contract, in counts mode.

    Byte-identical functional outputs are pinned by
    ``tests/test_pipeline_stream.py``; the benchmark checks everything
    a counts-mode run observes: identical islandizations, per-layer
    counts, DRAM traffic, and phase cycle totals.
    """
    return (
        staged.islandization.equals(streamed.islandization)
        and staged.layers == streamed.layers
        and staged.meter.reads == streamed.meter.reads
        and staged.meter.writes == streamed.meter.writes
        and staged.locator_cycles == streamed.locator_cycles
        and staged.consumer_cycles == streamed.consumer_cycles
    )


def run_pipeline_bench(
    tiers: Sequence[str] = ("1e3", "1e4", "1e5", "1e6", "2e6"),
    *,
    repeats: int = 3,
    seed: int = 7,
    c_max: int = 64,
    preagg_k: int = 6,
    verify: bool = True,
) -> dict:
    """Time both pipeline modes across ``tiers``; returns the record.

    Both modes run ``repeats`` times (best-of wall clock); the modelled
    cycle totals are deterministic, so they come from the last run.
    With ``verify`` (default) each tier asserts the cross-mode
    equivalence contract and records the verdict in the row.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1 (got {repeats})")
    model = gcn_model(32, 8)
    rows: list[dict] = []
    for tier in tiers:
        graph = bench_graph(tier, seed=seed)
        common = dict(c_max=c_max, preagg_k=preagg_k)
        # One untimed pass per mode warms the allocator, as the other
        # benches do.
        _run_mode(graph, model, pipeline="staged", **common)
        staged_s = float("inf")
        for _ in range(repeats):
            elapsed, staged = _run_mode(graph, model, pipeline="staged", **common)
            staged_s = min(staged_s, elapsed)
        _run_mode(graph, model, pipeline="streamed", **common)
        streamed_s = float("inf")
        for _ in range(repeats):
            elapsed, streamed = _run_mode(
                graph, model, pipeline="streamed", **common
            )
            streamed_s = min(streamed_s, elapsed)

        equal = _modes_equal(staged, streamed) if verify else None
        rows.append(
            {
                "tier": tier,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges // 2,
                "rounds": streamed.islandization.num_rounds,
                "islands": streamed.islandization.num_islands,
                "staged_cycles": round(staged.total_cycles, 1),
                "streamed_cycles": round(streamed.total_cycles, 1),
                "overlap_win": (
                    round(staged.total_cycles / streamed.total_cycles, 4)
                    if streamed.total_cycles
                    else None
                ),
                "locator_cycles": round(streamed.locator_cycles, 1),
                "consumer_cycles": round(streamed.consumer_cycles, 1),
                "staged_s": round(staged_s, 4),
                "streamed_s": round(streamed_s, 4),
                "equal": equal,
            }
        )
    largest = rows[-1] if rows else None
    return {
        "benchmark": "pipeline-overlap",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "c_max": c_max,
            "preagg_k": preagg_k,
            "layers": [
                [layer.in_dim, layer.out_dim] for layer in model.layers
            ],
            "verified": verify,
        },
        "tiers": rows,
        "largest_tier": largest["tier"] if largest else None,
        "largest_speedup": largest["overlap_win"] if largest else None,
    }
