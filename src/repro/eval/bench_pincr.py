"""Partitioned-incremental benchmark: shard-routed updates vs re-record.

Measures the composed PR-6/PR-7 path (:mod:`repro.core.
islandizer_pincremental`): a :class:`ShardFleet` records the
partitioned islandization of the hub-profile partition-bench graph
once, then a ladder of churn deltas is maintained two ways —

``update``
    the shard-routed incremental path: edits interior to one shard
    dispatch that shard's cached state through the PR-7 dirty-region
    machinery, untouched shards splice by reference, and only the
    merge re-runs;
``rerecord``
    the full fleet re-record against the *same pinned partition* —
    every shard interior re-extracted and re-recorded, then merged.
    This is also the exactness oracle: every rung asserts
    ``IslandizationResult.equals`` between the two.

Unlike the partition suite this one runs in a single warm process: the
point of the fleet is that its worker pool and shard handles stay open
across a chain of updates, so both contenders share one pool that the
initial recording has already spawned — neither pays process start-up
inside the timed region.  ``apply_s`` (delta materialisation) is timed
separately and excluded from both contenders via the ``applied`` hook,
mirroring the incremental suite.

Delta rungs reuse the incremental suite's ladder sizes but differ in
*locality*: the 1e1 rung is churn confined to the interior of the
single largest shard, the 1e3 rung to the two largest shards (the
headline: a small-delta update should beat the fleet re-record by the
shard-count factor minus merge overhead), and the 1e5 rung is global
churn across the whole graph — expected to trip the dirty-shard budget
fallback, where the update degenerates to a re-record *by design* and
the row documents the crossover.  Confined churn is drawn by running
:func:`repro.eval.bench_incremental.churn_delta` on a shard's cached
interior subgraph and mapping the edits to global ids, so every edit
is interior by construction.

The ``partitions=1`` bit-identity contract (a one-shard incremental
config must take the monolithic PR-7 path, byte for byte) is verified
on the largest shard's subgraph and recorded as ``p1_identical``.

The JSON schema (one record per file)::

    {"benchmark": "locator-pincremental",
     "config": {"seed": ..., "delta_seed": ..., "repeats": ...,
                "c_max": ..., "partitions": ..., "workers": ...,
                "strategy": ..., "graph_tier": ..., "max_edges": ...,
                "max_dirty_fraction": ..., "p1_identical": ...,
                "verified": ...},
     "graph": {"tier": ..., "profile": "hub", "nodes": ..., "edges": ...,
               "record_s": ...},
     "tiers": [{"tier": "1e3", "delta_edges": ..., "insertions": ...,
                "deletions": ..., "confined_shards": [...],
                "dirty_shards": [...], "apply_s": ..., "update_s": ...,
                "rerecord_s": ..., "speedup": ..., "fallback": ...,
                "fallback_reason": ..., "dirty_nodes": ...,
                "region_nodes": ..., "equal": ...}, ...],
     "headline_tier": "...", "headline_speedup": ...,
     "crossover_delta": "..."}

``speedup`` is ``rerecord_s / update_s`` (warm fleet, best-of wall
clock); ``headline_*`` is the largest non-fallback rung that beats the
re-record; ``crossover_delta`` is the first rung that falls back or
loses.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Sequence

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.islandizer_incremental import record_islandization
from repro.core.islandizer_pincremental import ShardFleet
from repro.errors import ConfigError
from repro.eval.bench_incremental import DELTA_TIERS, _best, churn_delta
from repro.eval.bench_partition import PARTITION_TIERS, partition_bench_graph
from repro.graph.csr import CSRGraph, GraphDelta

__all__ = [
    "PINCR_DELTA_TIERS",
    "run_pincr_bench",
]

#: Rung name -> (edit count, shards the churn is confined to; ``None``
#: means global churn over the whole graph).
PINCR_DELTA_TIERS: dict[str, tuple[int, int | None]] = {
    "1e1": (DELTA_TIERS["1e1"], 1),
    "1e3": (DELTA_TIERS["1e3"], 2),
    "1e5": (DELTA_TIERS["1e5"], None),
}


def _largest_shards(state, count: int) -> list[int]:
    """Ids of the ``count`` largest shards by interior edge count."""
    sizes = [
        (-state.shard_results[p].graph.num_edges, p)
        for p in range(state.num_shards)
    ]
    sizes.sort()
    return [p for _, p in sizes[:count]]


def _confined_delta(state, rng, k: int, th0: int,
                    shard_ids: Sequence[int]) -> GraphDelta:
    """``k`` churn edits confined to the interiors of ``shard_ids``.

    Each shard contributes an even split of the budget, drawn by
    running the churn generator on its cached interior subgraph and
    mapping local node ids back to global ones.  Interior subgraphs
    are induced, so a pair absent locally is absent globally — the
    mapped delta is a valid churn delta of the full graph whose every
    edit routes as shard-interior.
    """
    base, rem = divmod(k, len(shard_ids))
    ins_parts: list[np.ndarray] = []
    del_parts: list[np.ndarray] = []
    for i, p in enumerate(shard_ids):
        kp = base + (1 if i < rem else 0)
        if kp < 2:
            continue
        local = churn_delta(state.shard_results[p].graph, rng, kp, th0)
        nodes = state.shard_nodes[p]
        ins_parts.append(np.stack(
            [nodes[local.insert_src], nodes[local.insert_dst]], axis=1
        ))
        del_parts.append(np.stack(
            [nodes[local.delete_src], nodes[local.delete_dst]], axis=1
        ))
    return GraphDelta.from_edges(
        insertions=np.concatenate(ins_parts),
        deletions=np.concatenate(del_parts),
    )


def _p1_identity(graph: CSRGraph, c_max: int) -> bool:
    """``partitions=1`` + ``incremental`` is bit-identical to PR 7."""
    one = LocatorConfig(c_max=c_max, partitions=1, incremental=True)
    plain = LocatorConfig(c_max=c_max, incremental=True)
    r1, s1 = record_islandization(graph, one)
    r2, s2 = record_islandization(graph, plain)
    if type(s1) is not type(s2) or s1.th0 != s2.th0:
        return False
    arrays = [
        f.name for f in dataclasses.fields(s1) if f.name != "th0"
    ]
    return bool(
        r1.equals(r2)
        and all(
            np.array_equal(getattr(s1, f), getattr(s2, f)) for f in arrays
        )
    )


def run_pincr_bench(
    tiers: Sequence[str] = ("1e1", "1e3", "1e5"),
    *,
    repeats: int = 3,
    seed: int = 7,
    delta_seed: int = 11,
    c_max: int = 64,
    partitions: int = 6,
    workers: int | None = None,
    strategy: str = "separator",
    graph_tier: str = "2e7",
    max_edges: int | None = None,
    graph_dir: str | os.PathLike | None = None,
    max_dirty_fraction: float = 0.5,
    verify: bool = True,
) -> dict:
    """Benchmark shard-routed updates against full fleet re-records.

    One warm :class:`ShardFleet` records the partitioned state once,
    then every rung times ``fleet.update`` (shard-routed) against
    ``fleet.rerecord`` (pinned-partition from-scratch) on the same
    materialised delta.  With ``verify`` (default) every rung asserts
    result equality between the two and validates the update's result.

    Each rung draws its delta from a fresh ``default_rng(delta_seed)``,
    so one rung's numbers reproduce without running the others.
    """
    for tier in tiers:
        if tier not in PINCR_DELTA_TIERS:
            raise ConfigError(
                f"unknown pincr bench tier {tier!r}; available: "
                f"{', '.join(PINCR_DELTA_TIERS)}"
            )
    if partitions < 2:
        raise ConfigError(
            f"pincr bench needs --partitions >= 2 (got {partitions}); "
            f"partitions=1 is covered by the built-in identity check"
        )
    config = LocatorConfig(
        c_max=c_max,
        partitions=partitions,
        partition_strategy=strategy,
        incremental=True,
    )
    graph_path = partition_bench_graph(
        graph_tier, seed=seed, max_edges=max_edges, graph_dir=graph_dir
    )
    graph = CSRGraph.from_npz(str(graph_path))
    th0 = int(config.initial_threshold(graph.degrees))
    rows: list[dict] = []
    with ShardFleet(config, max_workers=workers) as fleet:
        t0 = time.perf_counter()
        cached, state = fleet.record(graph)
        record_s = time.perf_counter() - t0
        p1_identical = (
            _p1_identity(state.shard_results[0].graph, c_max)
            if verify else None
        )
        # A smoke-capped graph caps the big deltas too.
        k_cap = max(2, graph.num_edges // 8)
        for tier in tiers:
            k, confine = PINCR_DELTA_TIERS[tier]
            k = min(k, k_cap)
            rng = np.random.default_rng(delta_seed)
            if confine is None:
                shard_ids: list[int] = []
                delta = churn_delta(graph, rng, k, th0)
            else:
                shard_ids = _largest_shards(state, confine)
                delta = _confined_delta(state, rng, k, th0, shard_ids)
            t0 = time.perf_counter()
            mutated, ins_eff, del_eff = graph.apply_delta(
                delta, with_changes=True
            )
            apply_s = time.perf_counter() - t0
            applied = (mutated, ins_eff, del_eff)
            (scratch, _), rerecord_s = _best(
                lambda: fleet.rerecord(mutated, state), repeats
            )
            upd, update_s = _best(
                lambda: fleet.update(
                    graph, cached, state, delta,
                    max_dirty_fraction=max_dirty_fraction, applied=applied,
                ),
                repeats,
            )
            equal = None
            if verify:
                equal = bool(upd.result.equals(scratch))
                upd.result.validate()
            rows.append({
                "tier": tier,
                "delta_edges": delta.num_edges,
                "insertions": delta.num_insertions,
                "deletions": delta.num_deletions,
                "confined_shards": shard_ids,
                "dirty_shards": list(upd.dirty_shards),
                "apply_s": round(apply_s, 4),
                "update_s": round(update_s, 4),
                "rerecord_s": round(rerecord_s, 4),
                "speedup": (
                    round(rerecord_s / update_s, 2) if update_s else None
                ),
                "fallback": upd.fallback,
                "fallback_reason": upd.fallback_reason,
                "dirty_nodes": upd.dirty_nodes,
                "region_nodes": upd.region_nodes,
                "equal": equal,
            })
    headline = None
    crossover = None
    for row in rows:
        wins = not row["fallback"] and (row["speedup"] or 0) > 1
        if wins:
            headline = row
        elif crossover is None:
            crossover = row
    return {
        "benchmark": "locator-pincremental",
        "config": {
            "seed": seed,
            "delta_seed": delta_seed,
            "repeats": repeats,
            "c_max": c_max,
            "partitions": partitions,
            "workers": workers or min(partitions, os.cpu_count() or 1),
            "strategy": strategy,
            "graph_tier": graph_tier,
            "max_edges": max_edges,
            "max_dirty_fraction": max_dirty_fraction,
            "p1_identical": p1_identical,
            "verified": verify,
        },
        "graph": {
            "tier": graph_tier,
            "profile": PARTITION_TIERS[graph_tier][1],
            "nodes": graph.num_nodes,
            "edges": graph.num_edges // 2,
            "record_s": round(record_s, 4),
        },
        "tiers": rows,
        "headline_tier": headline["tier"] if headline else None,
        "headline_speedup": headline["speedup"] if headline else None,
        "crossover_delta": crossover["tier"] if crossover else None,
    }
