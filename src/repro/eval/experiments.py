"""Experiment registry: one entry per table/figure of the paper.

Each ``experiment_*`` function reproduces one published result and
returns an :class:`ExperimentResult` holding structured rows (for
assertions) plus rendered text (for logs).  The paper's numbers are
kept alongside as ``paper_*`` columns so every output is a direct
paper-vs-measured comparison; EXPERIMENTS.md is generated from these.

The functions are deliberately deterministic (fixed dataset seeds) and
share one process-wide runtime :class:`~repro.runtime.Engine`, so the
benchmark suite calls into shared cached state without recomputing
datasets or islandization for every figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core import IGCNReport
from repro.eval.spyplot import spy
from repro.eval.tables import render_table
from repro.graph.reorder import get_reordering, locality_report, reordering_names
from repro.hw.area import AreaModel
from repro.models import gcn_model
from repro.runtime import Engine

__all__ = [
    "ExperimentResult",
    "shared_engine",
    "experiment_table1",
    "experiment_table2",
    "experiment_fig9",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14",
    "EVAL_DATASETS",
    "PAPER_FIG10_AGG",
    "PAPER_FIG10_OVERALL",
    "PAPER_TABLE2_LATENCY_US",
]

#: Datasets in the paper's order; loaded at their default scales.
EVAL_DATASETS = ("cora", "citeseer", "pubmed", "nell", "reddit")

#: Figure 10, left group: aggregation-phase pruning rates.
PAPER_FIG10_AGG = {
    "cora": 0.39, "citeseer": 0.40, "pubmed": 0.35, "nell": 0.46, "reddit": 0.29,
}
#: Figure 10, right group: whole-inference pruning rates.
PAPER_FIG10_OVERALL = {
    "cora": 0.09, "citeseer": 0.05, "pubmed": 0.04, "nell": 0.05, "reddit": 0.17,
}
#: Table 2 (GCN_algo block): absolute latencies in microseconds.
PAPER_TABLE2_LATENCY_US = {
    "igcn": {"cora": 1.3, "citeseer": 1.9, "pubmed": 15.1, "nell": 5.9e2, "reddit": 3.0e4},
    "awb": {"cora": 2.3, "citeseer": 4.0, "pubmed": 30.0, "nell": 1.6e3, "reddit": 3.2e4},
}
#: Table 2 (GCN_algo block): energy efficiency in Graph/kJ.
PAPER_TABLE2_EE = {
    "igcn": {"cora": 7.1e6, "citeseer": 3.7e6, "pubmed": 5.3e5, "nell": 1.3e4, "reddit": 3.5e2},
    "awb": {"cora": 3.1e6, "citeseer": 1.9e6, "pubmed": 2.5e5, "nell": 4.1e3, "reddit": 2.1e2},
}
#: Figure 11: ALM shares of the two halves.
PAPER_FIG11_SPLIT = {"island_locator": 0.34, "island_consumer": 0.66}


@dataclass
class ExperimentResult:
    """Structured outcome of one reproduced experiment."""

    experiment: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        """Table + any extra text."""
        table = render_table(self.rows, title=self.experiment)
        return f"{table}\n{self.text}" if self.text else table


# ----------------------------------------------------------------------
# Shared cached state: one process-wide runtime Engine.  All artifact
# caching (datasets, islandizations, workloads, reports) lives there —
# this module keeps no memoization of its own.
# ----------------------------------------------------------------------
_ENGINE: Engine | None = None


def shared_engine(cache_dir: str | None = None) -> Engine:
    """The process-wide Engine the experiment registry runs on.

    Created lazily on first use; when ``REPRO_CACHE_DIR`` is set (or
    ``cache_dir`` is passed, e.g. from ``repro experiments
    --cache-dir``) the engine runs memory-over-disk, so regenerating
    the paper tables warm-starts from earlier runs.  Passing a
    ``cache_dir`` different from the current engine's replaces the
    engine (its memory tier starts cold; the disk tier is shared).
    """
    global _ENGINE
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        if _ENGINE is not None:
            return _ENGINE
    if _ENGINE is None or _ENGINE.cache_dir != cache_dir:
        _ENGINE = Engine(cache_dir=cache_dir)
    return _ENGINE


def _dataset(name: str):
    return shared_engine().dataset(name, seed=7)


def _report(name: str, platform: str, variant: str = "algo"):
    """Cached simulation of ``platform`` on dataset ``name``."""
    ds = _dataset(name)
    model = gcn_model(ds.num_features, ds.num_classes, variant=variant)
    return shared_engine().simulate(platform, ds, model)


def _igcn_report(name: str, variant: str = "algo") -> IGCNReport:
    return _report(name, "igcn", variant)


# ----------------------------------------------------------------------
# Table 1 — PULL vs PUSH vs islandization characteristics
# ----------------------------------------------------------------------
def experiment_table1(dataset: str = "cora") -> ExperimentResult:
    """Quantify Table 1's qualitative comparison on one dataset.

    Buffer pressure is the dataflow's random-access working set; off-chip
    traffic comes from each model's meter; reuse columns report how many
    times each matrix is touched per resident byte.
    """
    ds = _dataset(dataset)
    model = gcn_model(ds.num_features, ds.num_classes)
    pull = _report(dataset, "pull")
    push = _report(dataset, "push")
    igcn = _igcn_report(dataset)

    n = ds.graph.num_nodes
    hidden = model.layers[0].out_dim
    rows = [
        {
            "method": "PULL (row-wise)",
            "working_set_bytes": n * hidden * 4,        # XW rows, random
            "dram_mb": round(pull.offchip_bytes / 1e6, 3),
            "reuse_xw": "low (refetch per edge)",
            "reuse_a": "high (streamed once)",
            "load_imbalance": "no",
            "redundancy_removal": "hard",
        },
        {
            "method": "PUSH (column-wise)",
            "working_set_bytes": n * 4,                 # one result column
            "dram_mb": round(push.offchip_bytes / 1e6, 3),
            "reuse_xw": "high (broadcast)",
            "reuse_a": "low (per-channel pass)",
            "load_imbalance": "yes (power law)",
            "redundancy_removal": "hard",
        },
        {
            "method": "Islandization (I-GCN)",
            "working_set_bytes": igcn.islandization.num_hubs * hidden * 4,
            "dram_mb": round(igcn.offchip_bytes / 1e6, 3),
            "reuse_xw": "high (island-local)",
            "reuse_a": "high (bitmap once)",
            "load_imbalance": "no",
            "redundancy_removal": f"easy ({igcn.aggregation_pruning_rate:.0%} pruned)",
        },
    ]
    return ExperimentResult(experiment=f"Table 1 ({dataset})", rows=rows)


# ----------------------------------------------------------------------
# Table 2 — absolute latency and energy efficiency, I-GCN vs AWB-GCN
# ----------------------------------------------------------------------
def experiment_table2() -> ExperimentResult:
    """Latency (µs) and EE (Graph/kJ) for GCN-algo and GCN-Hy configs."""
    rows = []
    for variant in ("algo", "hy"):
        for name in EVAL_DATASETS:
            igcn = _igcn_report(name, variant)
            awb = _report(name, "awb", variant)
            row = {
                "config": f"GCN_{variant}",
                "dataset": name,
                "igcn_us": round(igcn.latency_us, 2),
                "awb_us": round(awb.latency_us, 2),
                "speedup": round(awb.latency_us / igcn.latency_us, 2),
                "igcn_ee": round(igcn.graphs_per_kj, 1),
                "awb_ee": round(awb.graphs_per_kj, 1),
            }
            if variant == "algo":
                row["paper_igcn_us"] = PAPER_TABLE2_LATENCY_US["igcn"][name]
                row["paper_awb_us"] = PAPER_TABLE2_LATENCY_US["awb"][name]
                row["paper_speedup"] = round(
                    PAPER_TABLE2_LATENCY_US["awb"][name]
                    / PAPER_TABLE2_LATENCY_US["igcn"][name],
                    2,
                )
            rows.append(row)
    return ExperimentResult(
        experiment="Table 2 (latency & energy efficiency)",
        rows=rows,
        text=(
            "note: nell/reddit run at reduced surrogate scale "
            "(see DESIGN.md §4), so absolute µs are per-scale; speedup "
            "ratios are the comparable quantity."
        ),
    )


# ----------------------------------------------------------------------
# Figure 9 — islandization effect on the adjacency matrix
# ----------------------------------------------------------------------
def experiment_fig9(*, with_plots: bool = True) -> ExperimentResult:
    """Rounds to converge and nnz clustering quality per dataset."""
    rows = []
    plots = []
    for name in ("cora", "citeseer", "pubmed", "nell"):
        report = _igcn_report(name)
        isl = report.islandization
        perm = isl.island_permutation()
        reordered = isl.graph.permute(perm)
        loc = locality_report(reordered, name=f"{name}-islandized")
        rows.append(
            {
                "dataset": name,
                "rounds": isl.num_rounds,
                "islands": isl.num_islands,
                "hubs": isl.num_hubs,
                "hub_pct": round(100 * isl.hub_fraction, 1),
                "tile_coverage": round(loc.tile_coverage, 3),
                "island_edges_covered": "100%",  # validated invariant
            }
        )
        if with_plots:
            plots.append(
                spy(reordered, resolution=40, anti_diagonal=True,
                    title=f"--- {name}: islandized adjacency (hubs first) ---")
            )
    text = "\n\n".join(plots) if with_plots else ""
    return ExperimentResult(experiment="Figure 9 (islandization effect)", rows=rows, text=text)


# ----------------------------------------------------------------------
# Figure 10 — redundancy-removal pruning rates
# ----------------------------------------------------------------------
def experiment_fig10() -> ExperimentResult:
    """Aggregation and overall pruning rates vs the paper's bars."""
    rows = []
    for name in EVAL_DATASETS:
        report = _igcn_report(name)
        rows.append(
            {
                "dataset": name,
                "prune_agg": round(report.aggregation_pruning_rate, 3),
                "paper_agg": PAPER_FIG10_AGG[name],
                "prune_overall": round(report.overall_pruning_rate, 3),
                "paper_overall": PAPER_FIG10_OVERALL[name],
                "agg_fraction": round(report.aggregation_fraction, 3),
            }
        )
    mean_agg = float(np.mean([r["prune_agg"] for r in rows]))
    return ExperimentResult(
        experiment="Figure 10 (pruning rates)",
        rows=rows,
        text=f"measured mean aggregation pruning: {mean_agg:.1%} (paper: 38%)",
        extras={"mean_agg": mean_agg},
    )


# ----------------------------------------------------------------------
# Figure 11 — hardware consumption breakdown
# ----------------------------------------------------------------------
def experiment_fig11() -> ExperimentResult:
    """ALM breakdown of the published instance (4K MACs, 64 engines)."""
    breakdown = AreaModel(
        num_macs=4096, num_bfs_engines=64, num_degree_fifos=8, num_pes=8
    ).breakdown()
    rows = [
        {"module": module, "alms": alms, "share": round(frac, 3)}
        for (module, alms), frac in zip(
            breakdown.modules.items(), breakdown.fractions().values()
        )
    ]
    rows.append(
        {
            "module": "TOTAL (locator/consumer)",
            "alms": breakdown.total,
            "share": (
                f"{breakdown.locator_fraction:.2f}/"
                f"{breakdown.consumer_fraction:.2f} (paper 0.34/0.66)"
            ),
        }
    )
    return ExperimentResult(
        experiment="Figure 11 (area breakdown)",
        rows=rows,
        extras={
            "locator_fraction": breakdown.locator_fraction,
            "consumer_fraction": breakdown.consumer_fraction,
        },
    )


# ----------------------------------------------------------------------
# Figure 12 — I-GCN vs AWB-GCN + lightweight reordering
# ----------------------------------------------------------------------
def experiment_fig12(
    datasets: tuple[str, ...] = EVAL_DATASETS,
) -> ExperimentResult:
    """Reordering preprocessing cost vs I-GCN end-to-end latency.

    Reordering runs on the host CPU (wall-clock, like the paper's Xeon
    measurements, though our Python implementations are slower than the
    paper's C++ — which only *strengthens* the conclusion); AWB-GCN then
    processes the reordered graph (simulated).  I-GCN needs no
    preprocessing at all.
    """
    rows = []
    for name in datasets:
        ds = _dataset(name)
        igcn = _igcn_report(name)
        model = gcn_model(ds.num_features, ds.num_classes)
        for reorder_name in reordering_names():
            if reorder_name == "sort":
                continue  # not one of the paper's six
            result = get_reordering(reorder_name).run(ds.graph)
            reordered = result.apply(ds.graph)
            awb = shared_engine().simulate(
                "awb", reordered, model, feature_density=ds.feature_density
            )
            reorder_us = result.seconds * 1e6
            rows.append(
                {
                    "dataset": name,
                    "reordering": reorder_name,
                    "reorder_us": round(reorder_us, 1),
                    "awb_proc_us": round(awb.latency_us, 2),
                    "total_us": round(reorder_us + awb.latency_us, 1),
                    "igcn_us": round(igcn.latency_us, 2),
                    "reorder_vs_igcn": round(reorder_us / igcn.latency_us, 1),
                }
            )
    return ExperimentResult(
        experiment="Figure 12 (reordering latency vs I-GCN)", rows=rows
    )


# ----------------------------------------------------------------------
# Figure 13 — clustering quality of reorderings vs islandization
# ----------------------------------------------------------------------
def experiment_fig13(dataset: str = "cora", *, with_plots: bool = False,
                     tile: int = 16) -> ExperimentResult:
    """Non-zero clustering metrics for every layout.

    ``tile`` is 16 (not the 64 used elsewhere) because islands are
    5-10 nodes: a 64-wide tile averages a dense island block away, while
    16-wide tiles resolve it — the granularity Figure 13's visual
    comparison operates at.
    """
    ds = _dataset(dataset)
    base = ds.graph.without_self_loops()
    layouts = [("original", base)]
    for reorder_name in reordering_names():
        if reorder_name == "sort":
            continue
        perm = get_reordering(reorder_name).run(base)
        layouts.append((reorder_name, perm.apply(base)))
    isl = _igcn_report(dataset).islandization
    layouts.append(("i-gcn (islandized)", base.permute(isl.island_permutation())))

    rows = []
    plots = []
    for name, graph in layouts:
        loc = locality_report(graph, name=name, tile=tile)
        rows.append(loc.as_dict())
        if with_plots:
            plots.append(spy(graph, resolution=40, title=f"--- {dataset}: {name} ---"))
    return ExperimentResult(
        experiment=f"Figure 13 (clustering quality, {dataset})",
        rows=rows,
        text="\n\n".join(plots),
    )


# ----------------------------------------------------------------------
# Figure 14 — cross-platform off-chip traffic and speedup
# ----------------------------------------------------------------------
def experiment_fig14() -> ExperimentResult:
    """(A) normalised DRAM traffic and (B) latency speedups vs I-GCN."""
    accelerators = [("awb-gcn", "awb"), ("hygcn", "hygcn"), ("sigma", "sigma")]
    software = ["pyg-cpu", "dgl-cpu", "pyg-gpu-v100", "pyg-gpu-rtx8000", "dgl-gpu-v100"]
    rows = []
    for name in EVAL_DATASETS:
        igcn = _igcn_report(name)
        row = {
            "dataset": name,
            "igcn_us": round(igcn.latency_us, 2),
            "igcn_dram_mb": round(igcn.offchip_bytes / 1e6, 3),
        }
        for label, platform in accelerators:
            rep = _report(name, platform)
            row[f"{label}_x"] = round(rep.latency_us / igcn.latency_us, 2)
            row[f"{label}_dram"] = round(rep.offchip_bytes / igcn.offchip_bytes, 2)
        for pname in software:
            rep = _report(name, pname)
            row[f"{pname}_x"] = round(rep.latency_us / igcn.latency_us, 1)
        rows.append(row)
    return ExperimentResult(
        experiment="Figure 14 (cross-platform comparison)",
        rows=rows,
        text=(
            "paper bands (full-scale datasets): AWB/HyGCN avg 5.7x, SIGMA 16x, "
            "PyG-CPU 9568x, DGL-CPU 1243x, GPUs 368-453x.  Scaled surrogates "
            "(nell, reddit) compress compute-dominated gaps; cora/citeseer/"
            "pubmed run at full published size."
        ),
    )
