"""Consumer scaling benchmark: scalar vs batched island execution.

Times the Island Consumer's two backends end-to-end — task assembly
(:meth:`IslandConsumer.prepare`) plus a full 2-layer GCN pass in
performance mode — over the same hub-and-island graph ladder the
locator benchmark uses (~1e3 to ~2e6 undirected edges).  The
islandization itself is computed once per tier with the batched
locator and shared by both consumer backends, so the timings isolate
the consumer.

Each tier also *verifies* the exact-equivalence contract: identical
per-layer :class:`~repro.core.consumer.LayerCounts`, DRAM traffic,
ring statistics and DHUB-PRC bank counters — and, on the small tiers,
byte-identical functional outputs — so the perf trajectory in
``BENCH_consumer.json`` can never silently drift from correctness.

Entry points:

* ``python -m repro bench consumer`` — run tiers, print a table, write
  the JSON record;
* :func:`run_consumer_bench` — library API (used by the benchmark
  suite and the CI ``bench-smoke`` job).

The JSON schema (one record per file)::

    {"benchmark": "consumer-scale",
     "config": {"seed": ..., "repeats": ..., "c_max": ...,
                "preagg_k": ..., "num_pes": ..., "layers": ...},
     "tiers": [{"tier": "1e4", "nodes": ..., "edges": ...,
                "islands": ..., "hubs": ...,
                "scalar_s": ..., "batched_s": ..., "speedup": ...,
                "equal": true, "functional_verified": true}, ...],
     "largest_tier": "...", "largest_speedup": ...}
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.config import ConsumerConfig, LocatorConfig
from repro.core.consumer import IslandConsumer, execution_mismatch
from repro.core.interhub import build_interhub_plan
from repro.core.islandizer import IslandLocator
from repro.eval.bench_locator import bench_graph
from repro.hw.config import IGCN_DEFAULT
from repro.hw.memory import TrafficMeter
from repro.models.configs import gcn_model
from repro.models.reference import normalization_for

__all__ = ["run_consumer_bench"]

#: Undirected-edge ceiling below which functional (byte-identical
#: output) verification also runs; above it, counts-mode verification
#: alone keeps the scalar oracle's share of the wall clock sane.
_FUNCTIONAL_EDGE_LIMIT = 30_000


def _run_consumer(result, norm, plan, model, *, backend, preagg_k, num_pes,
                  x=None, weights=None):
    """One timed end-to-end pass: task assembly + every layer.

    Returns ``(seconds, per-layer (execution, meter) list, ring
    stats)``; functional when ``x``/``weights`` are supplied.
    """
    consumer = IslandConsumer(
        ConsumerConfig(preagg_k=preagg_k, num_pes=num_pes, backend=backend),
        IGCN_DEFAULT,
    )
    start = time.perf_counter()
    tasks = consumer.prepare(result, add_self_loops=norm.add_self_loops)
    layers = []
    current = x
    for idx, layer in enumerate(model.layers):
        meter = TrafficMeter()
        execution = consumer.run_layer(
            result, tasks, plan, norm, layer,
            layer_index=idx, meter=meter,
            x=current if x is not None else None,
            w=weights[idx] if weights is not None else None,
            feature_density=0.5 if idx == 0 else 1.0,
            final_layer=idx == len(model.layers) - 1,
        )
        layers.append((execution, meter))
        if x is not None:
            current = execution.output
    return time.perf_counter() - start, layers, consumer.ring.stats


def _layers_equal(scalar_layers, batched_layers, scalar_ring, batched_ring,
                  *, functional: bool) -> bool:
    """The full equivalence contract between two runs.

    Per-layer fields delegate to the shared
    :func:`~repro.core.consumer.execution_mismatch` definition (the
    same one the equivalence test battery asserts), so the benchmark's
    certificate can never check fewer fields than the tests do.
    """
    if scalar_ring != batched_ring:
        return False
    return all(
        execution_mismatch(
            s_exec, s_meter, b_exec, b_meter, functional=functional
        ) is None
        for (s_exec, s_meter), (b_exec, b_meter) in zip(
            scalar_layers, batched_layers
        )
    )


def run_consumer_bench(
    tiers: Sequence[str] = ("1e3", "1e4", "1e5", "1e6", "2e6"),
    *,
    repeats: int = 3,
    seed: int = 7,
    c_max: int = 64,
    preagg_k: int = 6,
    num_pes: int = 8,
    verify: bool = True,
) -> dict:
    """Time both consumer backends across ``tiers``; returns the record.

    ``repeats`` applies to the batched backend (best-of); the scalar
    oracle runs ``repeats`` times up to the 1e5 tier and once above it.
    With ``verify`` (default) each tier asserts the exact-equivalence
    contract in counts mode — plus byte-identical functional outputs on
    the small tiers — and records the verdict in the row.
    """
    model = gcn_model(32, 8)
    rows: list[dict] = []
    for tier in tiers:
        graph = bench_graph(tier, seed=seed)
        result = IslandLocator(LocatorConfig(c_max=c_max)).run(graph)
        norm = normalization_for(graph, "gcn-sym")
        plan = build_interhub_plan(result, add_self_loops=norm.add_self_loops)
        common = dict(preagg_k=preagg_k, num_pes=num_pes)

        # One untimed batched pass warms the allocator, as the locator
        # bench does.
        _run_consumer(result, norm, plan, model, backend="batched", **common)
        batched_s = min(
            _run_consumer(result, norm, plan, model,
                          backend="batched", **common)[0]
            for _ in range(repeats)
        )
        scalar_reps = repeats if graph.num_edges < 300_000 else 1
        scalar_s = float("inf")
        for _ in range(scalar_reps):
            elapsed, scalar_layers, scalar_ring = _run_consumer(
                result, norm, plan, model, backend="scalar", **common
            )
            scalar_s = min(scalar_s, elapsed)

        equal = None
        functional_verified = False
        if verify:
            _, batched_layers, batched_ring = _run_consumer(
                result, norm, plan, model, backend="batched", **common
            )
            equal = _layers_equal(
                scalar_layers, batched_layers, scalar_ring, batched_ring,
                functional=False,
            )
            if graph.num_edges // 2 <= _FUNCTIONAL_EDGE_LIMIT:
                rng = np.random.default_rng(seed)
                x = rng.normal(size=(graph.num_nodes, model.layers[0].in_dim))
                weights = [
                    rng.normal(size=(layer.in_dim, layer.out_dim))
                    for layer in model.layers
                ]
                _, s_func, s_ring = _run_consumer(
                    result, norm, plan, model, backend="scalar",
                    x=x, weights=weights, **common,
                )
                _, b_func, b_ring = _run_consumer(
                    result, norm, plan, model, backend="batched",
                    x=x, weights=weights, **common,
                )
                equal = equal and _layers_equal(
                    s_func, b_func, s_ring, b_ring, functional=True
                )
                functional_verified = True

        rows.append(
            {
                "tier": tier,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges // 2,
                "islands": result.num_islands,
                "hubs": result.num_hubs,
                "scalar_s": round(scalar_s, 4),
                "batched_s": round(batched_s, 4),
                "speedup": round(scalar_s / batched_s, 2) if batched_s else None,
                "equal": equal,
                "functional_verified": functional_verified,
            }
        )
    largest = rows[-1] if rows else None
    return {
        "benchmark": "consumer-scale",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "c_max": c_max,
            "preagg_k": preagg_k,
            "num_pes": num_pes,
            "layers": [
                [layer.in_dim, layer.out_dim] for layer in model.layers
            ],
            "verified": verify,
        },
        "tiers": rows,
        "largest_tier": largest["tier"] if largest else None,
        "largest_speedup": largest["speedup"] if largest else None,
    }
