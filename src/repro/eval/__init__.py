"""Evaluation harness: experiment registry, tables, spy plots."""

from repro.eval.experiments import (
    EVAL_DATASETS,
    PAPER_FIG10_AGG,
    PAPER_FIG10_OVERALL,
    PAPER_TABLE2_LATENCY_US,
    ExperimentResult,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_table1,
    experiment_table2,
)
from repro.eval.spyplot import density_grid, spy
from repro.eval.tables import render_csv, render_json, render_rows, render_table

__all__ = [
    "ExperimentResult",
    "experiment_table1",
    "experiment_table2",
    "experiment_fig9",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14",
    "EVAL_DATASETS",
    "PAPER_FIG10_AGG",
    "PAPER_FIG10_OVERALL",
    "PAPER_TABLE2_LATENCY_US",
    "spy",
    "density_grid",
    "render_table",
    "render_csv",
    "render_json",
    "render_rows",
]
