"""Locator scaling benchmark: scalar vs batched TP-BFS backends.

Times the Island Locator's two backends over a ladder of hub-and-island
graphs from ~1e3 to ~2e6 undirected edges (the structure the paper
targets, with enough background noise to exercise every kernel path:
bulk task classification, the multi-source island BFS, and the
sequential over-``c_max`` walks).  Each tier also *verifies* that both
backends return the exact same :class:`IslandizationResult`, so the
perf trajectory in ``BENCH_locator.json`` can never silently drift from
correctness.

Entry points:

* ``python -m repro bench locator`` — run tiers, print a table, write
  the JSON record;
* :func:`run_locator_bench` — library API (used by the benchmark suite
  and the CI ``bench-smoke`` job).

The JSON schema (one record per file)::

    {"benchmark": "locator-scale",
     "config": {"seed": ..., "repeats": ..., "c_max": ..., "profile": ...},
     "tiers": [{"tier": "1e4", "nodes": ..., "edges": ...,
                "scalar_s": ..., "batched_s": ..., "speedup": ...,
                "equal": true, "islands": ..., "rounds": ...}, ...],
     "largest_tier": "...", "largest_speedup": ...}

``edges`` counts undirected edges (half the CSR's directed entries).
Scalar timings at the top tiers use fewer repeats — the whole point is
that the scalar oracle takes tens of seconds there.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.config import LocatorConfig
from repro.core.islandizer import IslandLocator
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.generators import CommunityProfile, hub_island_graph

__all__ = ["BENCH_TIERS", "bench_graph", "run_locator_bench"]

#: Tier name -> target undirected edge count.  The hub-island generator
#: lands within a few percent of the target at ~10.6 edges per node.
BENCH_TIERS: dict[str, int] = {
    "1e3": 1_000,
    "1e4": 10_000,
    "1e5": 100_000,
    "1e6": 1_000_000,
    "2e6": 2_000_000,
}

_EDGES_PER_NODE = 10.6

#: Community structure used for every tier: medium islands with a thin
#: background overlay, so over-c_max welded regions (the locator's
#: hardest case) appear alongside clean islands.
_BENCH_PROFILE = CommunityProfile(
    island_size_mean=16.0,
    island_size_max=48,
    background_fraction=0.0075,
)


def bench_graph(tier: str, *, seed: int = 7) -> CSRGraph:
    """Build the (self-loop-free) benchmark graph of one tier."""
    try:
        target_edges = BENCH_TIERS[tier]
    except KeyError:
        raise ConfigError(
            f"unknown bench tier {tier!r}; available: {', '.join(BENCH_TIERS)}"
        ) from None
    nodes = max(64, int(target_edges / _EDGES_PER_NODE))
    graph, _ = hub_island_graph(
        nodes, _BENCH_PROFILE, seed=seed, name=f"bench-{tier}"
    )
    return graph.without_self_loops()


def _time_backend(
    graph: CSRGraph, config: LocatorConfig, repeats: int
) -> tuple[float, object]:
    """Best-of-``repeats`` wall time; returns (seconds, last result)."""
    locator = IslandLocator(config)
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = locator.run(graph)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_locator_bench(
    tiers: Sequence[str] = ("1e3", "1e4", "1e5", "1e6", "2e6"),
    *,
    repeats: int = 3,
    seed: int = 7,
    c_max: int = 64,
    verify: bool = True,
) -> dict:
    """Time both backends across ``tiers`` and return the JSON record.

    ``repeats`` applies to the batched backend (best-of); the scalar
    oracle runs ``repeats`` times up to the 1e5 tier and once above it.
    With ``verify`` (default) each tier asserts exact backend
    equivalence and records it in the row.
    """
    rows: list[dict] = []
    for tier in tiers:
        graph = bench_graph(tier, seed=seed)
        scalar_cfg = LocatorConfig(c_max=c_max, backend="scalar")
        batched_cfg = LocatorConfig(c_max=c_max, backend="batched")
        # One untimed batched run warms the allocator (first-touch page
        # faults otherwise dominate the small tiers).
        IslandLocator(batched_cfg).run(graph)
        batched_s, batched_res = _time_backend(graph, batched_cfg, repeats)
        scalar_reps = repeats if graph.num_edges < 300_000 else 1
        scalar_s, scalar_res = _time_backend(graph, scalar_cfg, scalar_reps)
        equal = bool(scalar_res.equals(batched_res)) if verify else None
        rows.append(
            {
                "tier": tier,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges // 2,
                "scalar_s": round(scalar_s, 4),
                "batched_s": round(batched_s, 4),
                "speedup": round(scalar_s / batched_s, 2) if batched_s else None,
                "equal": equal,
                "islands": batched_res.num_islands,
                "rounds": batched_res.num_rounds,
            }
        )
    largest = rows[-1] if rows else None
    return {
        "benchmark": "locator-scale",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "c_max": c_max,
            "profile": "hub-island mean=16 max=48 bg=0.0075",
            "verified": verify,
        },
        "tiers": rows,
        "largest_tier": largest["tier"] if largest else None,
        "largest_speedup": largest["speedup"] if largest else None,
    }
