"""ASCII spy plots of adjacency matrices (Figures 9 and 13).

The paper's Figures 9/13 are graphical spy plots of the adjacency
matrix before/after islandization and under the reordering baselines.
:func:`spy` renders a density raster using block characters so the
L-shapes and the (anti-)diagonal island blocks are visible in terminal
output and in the benchmark logs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["spy", "density_grid"]

_SHADES = " .:-=+*#%@"


def density_grid(graph: CSRGraph, *, resolution: int = 48) -> np.ndarray:
    """Bucket the adjacency nnz into a resolution × resolution grid."""
    grid = np.zeros((resolution, resolution), dtype=np.float64)
    n = graph.num_nodes
    if n == 0 or graph.num_edges == 0:
        return grid
    rows = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    cols = graph.indices
    r = (rows * resolution) // n
    c = (cols * resolution) // n
    np.add.at(grid, (r, c), 1.0)
    return grid


def spy(
    graph: CSRGraph,
    *,
    resolution: int = 48,
    anti_diagonal: bool = False,
    title: str | None = None,
) -> str:
    """Render an ASCII spy plot.

    ``anti_diagonal=True`` flips the column axis so island blocks run
    along the anti-diagonal, matching the paper's Figure 9 rendering.
    """
    grid = density_grid(graph, resolution=resolution)
    if anti_diagonal:
        grid = grid[:, ::-1]
    peak = grid.max()
    lines = []
    if title:
        lines.append(title)
    if peak == 0:
        lines.extend("." * resolution for _ in range(resolution))
        return "\n".join(lines)
    # Log scaling keeps single non-zeros visible next to dense blocks.
    scaled = np.log1p(grid) / np.log1p(peak)
    levels = np.minimum((scaled * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1)
    for row in levels:
        lines.append("".join(_SHADES[v] for v in row))
    return "\n".join(lines)
