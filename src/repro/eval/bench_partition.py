"""Partitioned-locator benchmark: monolithic vs sharded islandization.

Times the monolithic batched locator against the partitioned pipeline
(:func:`repro.core.islandize_partitioned`) over a ladder of graphs up
to ~2e7 undirected edges.  Unlike the other bench suites this one is a
*quality/performance trade*, not an exact-equivalence race: partitions
> 1 legitimately changes the islandization (boundary separators become
hubs), so every tier records the quantified quality delta — islands
found, hub coverage, classified-edge ratio — next to the wall-clock
and peak-RSS numbers, and additionally verifies the ``partitions=1``
oracle: the partitioned pipeline with a single shard must reproduce
the monolithic result *exactly* (``IslandizationResult.equals``).

Measurement methodology
-----------------------
Every *repeat* of every measured configuration runs in its own
**fresh subprocess** (spawned via ``sys.executable``): wall time is
taken inside the child around the islandize call only (graph loading
excluded), and peak RSS comes from ``resource.getrusage`` —
``RUSAGE_SELF`` for the coordinating process plus ``RUSAGE_CHILDREN``
for the worker fleet.  One child per repeat matters for fairness: the
monolithic locator re-run inside a warm process gets its big
allocations back from the allocator for free, while the partitioned
pipeline pays for a fresh worker fleet on every run — best-of over
*cold* children compares like with like.  It also keeps the RSS
numbers honest and the memory comparison meaningful: the partitioned
coordinator never materialises shard CSRs (workers mmap them), so its
parent RSS should sit *below* the monolithic run.

The largest tier uses a hub-heavier community profile
(``background_fraction=0.02`` instead of ``0.0075``).  This is where
partitioning wins big — the monolithic locator's cost grows
superlinearly with the welded hub-blob size while the partition/merge
overhead stays linear in edges — and the profile is recorded in the
JSON so the number cannot be mistaken for the standard-profile tiers.

Graphs are generated once per (tier, seed, edge cap) and cached as
``.npz`` under ``graph_dir`` so repeated runs (and the mono/part
children of one run) share them.

The JSON schema (one record per file)::

    {"benchmark": "locator-partition",
     "config": {"seed": ..., "repeats": ..., "c_max": ...,
                "partitions": ..., "workers": ..., "strategy": ...,
                "max_edges": ..., "verified": ...},
     "tiers": [{"tier": "2e6", "profile": "std", "nodes": ..., "edges": ...,
                "mono_s": ..., "part_s": ..., "speedup": ...,
                "mono_rss_mb": ..., "part_rss_mb": ...,
                "part_worker_rss_mb": ...,
                "equal_p1": true,
                "mono_quality": {...}, "part_quality": {...},
                "quality_delta": {"islands": ..., "hub_fraction": ...,
                                  "classified_edge_ratio": ...}}, ...],
     "largest_tier": "...", "largest_speedup": ...}

``edges`` counts undirected edges; ``*_s`` are best-of-``repeats``
in-child wall times; RSS columns are peak MB.
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro.core.config import LocatorConfig
from repro.errors import ConfigError, SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.generators import CommunityProfile, hub_island_graph

__all__ = [
    "PARTITION_TIERS",
    "partition_bench_graph",
    "run_partition_bench",
]

#: Tier name -> (target undirected edge count, profile key).  The
#: largest tier deliberately uses the hub-heavy profile — see module
#: docstring.
PARTITION_TIERS: dict[str, tuple[int, str]] = {
    "2e5": (200_000, "std"),
    "2e6": (2_000_000, "std"),
    "2e7": (20_000_000, "hub"),
}

#: Profile key -> (community structure, measured edges-per-node of the
#: generator under that structure; used to size the node count).
_PROFILES: dict[str, tuple[CommunityProfile, float]] = {
    "std": (
        CommunityProfile(
            island_size_mean=16.0, island_size_max=48,
            background_fraction=0.0075,
        ),
        10.6,
    ),
    "hub": (
        CommunityProfile(
            island_size_mean=16.0, island_size_max=48,
            background_fraction=0.02,
        ),
        12.5,
    ),
}


def partition_bench_graph(
    tier: str,
    *,
    seed: int = 7,
    max_edges: int | None = None,
    graph_dir: str | os.PathLike | None = None,
) -> Path:
    """Generate (or reuse) the benchmark graph of one tier on disk.

    Returns the path of a :meth:`CSRGraph.to_npz` archive.  With
    ``max_edges`` the tier's target edge count is capped, so the 2e7
    tier can smoke-run small (CI) without a separate tier ladder; the
    cap is part of the cache filename, so capped and full graphs
    coexist.  The graph is self-loop-free (the partitioned pipeline
    rejects self-loops, like the locator's preprocessing contract).
    """
    try:
        target_edges, profile_key = PARTITION_TIERS[tier]
    except KeyError:
        raise ConfigError(
            f"unknown partition bench tier {tier!r}; available: "
            f"{', '.join(PARTITION_TIERS)}"
        ) from None
    if max_edges is not None:
        if max_edges < 1_000:
            raise ConfigError(
                f"--max-edges must be >= 1000 (got {max_edges})"
            )
        target_edges = min(target_edges, max_edges)
    profile, edges_per_node = _PROFILES[profile_key]
    nodes = max(64, int(target_edges / edges_per_node))
    root = Path(graph_dir) if graph_dir is not None else (
        Path(tempfile.gettempdir()) / "repro-bench-graphs"
    )
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"partbench-{tier}-{profile_key}-n{nodes}-s{seed}.npz"
    if not path.exists():
        graph, _ = hub_island_graph(
            nodes, profile, seed=seed, name=f"partbench-{tier}"
        )
        graph = graph.without_self_loops()
        tmp = path.with_name(path.name + ".tmp")
        graph.to_npz(str(tmp))
        os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Child side: one measured configuration per fresh process
# ----------------------------------------------------------------------

def _child(spec: dict) -> dict:
    """Run one measured configuration; called in a fresh subprocess.

    Modes: ``mono`` (monolithic in-process locator), ``part`` (the
    partitioned pipeline with the spec's partitions/workers), and
    ``equal`` (run both monolithic and partitioned-with-one-shard and
    report exact equality — the partitions=1 oracle).
    """
    from repro.core.islandizer import IslandLocator
    from repro.core.islandizer_partitioned import (
        islandize_partitioned,
        quality_metrics,
    )

    graph = CSRGraph.from_npz(spec["graph"])
    config = LocatorConfig(
        c_max=spec["c_max"],
        backend="batched",
        partitions=spec["partitions"],
        partition_strategy=spec["strategy"],
    )
    if spec["mode"] == "equal":
        mono = IslandLocator(
            LocatorConfig(c_max=spec["c_max"], backend="batched")
        ).run(graph)
        part = islandize_partitioned(
            graph,
            LocatorConfig(c_max=spec["c_max"], backend="batched"),
        )
        return {"equal": bool(mono.equals(part))}

    t0 = time.perf_counter()
    if spec["mode"] == "mono":
        result = IslandLocator(config).run(graph)
    else:
        result = islandize_partitioned(
            graph, config, max_workers=spec["workers"]
        )
    elapsed = time.perf_counter() - t0
    if spec["verify"]:
        result.validate()
    rss_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    rss_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return {
        "time": round(elapsed, 4),
        "quality": quality_metrics(result),
        "rounds": result.num_rounds,
        # Linux ru_maxrss is in KiB.
        "rss_self_mb": round(rss_self / 1024, 1),
        "rss_children_mb": round(rss_children / 1024, 1),
    }


def _run_child(spec: dict) -> dict:
    """Spawn ``_child(spec)`` in a fresh interpreter and parse its JSON."""
    code = (
        "import json, sys\n"
        "from repro.eval.bench_partition import _child\n"
        "print(json.dumps(_child(json.loads(sys.argv[1]))))\n"
    )
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(spec)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise SimulationError(
            f"partition bench child failed ({spec['mode']}): "
            f"{proc.stderr.strip().splitlines()[-1] if proc.stderr else ''}"
        )
    # The child prints exactly one JSON line; tolerate library chatter
    # on earlier lines by taking the last one.
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Parent side: the suite
# ----------------------------------------------------------------------

def run_partition_bench(
    tiers: Sequence[str] = ("2e5", "2e6", "2e7"),
    *,
    repeats: int = 3,
    seed: int = 7,
    c_max: int = 64,
    partitions: int = 4,
    workers: int | None = None,
    strategy: str = "separator",
    max_edges: int | None = None,
    graph_dir: str | os.PathLike | None = None,
    verify: bool = True,
) -> dict:
    """Benchmark monolithic vs partitioned islandization across tiers.

    Each (tier, contender) pair runs in a fresh subprocess (see module
    docstring).  With ``verify`` (default) each tier also runs the
    ``partitions=1`` oracle child and asserts exact equality with the
    monolithic result, and the partitioned result of every measured
    child passes ``IslandizationResult.validate()``.
    """
    if partitions < 2:
        raise ConfigError(
            f"partition bench needs --partitions >= 2 (got {partitions}); "
            f"partitions=1 is covered by the built-in equality oracle"
        )
    workers = workers or partitions
    rows: list[dict] = []
    for tier in tiers:
        graph_path = partition_bench_graph(
            tier, seed=seed, max_edges=max_edges, graph_dir=graph_dir
        )
        graph = CSRGraph.from_npz(str(graph_path))
        nodes, edges = graph.num_nodes, graph.num_edges // 2
        del graph  # the parent should not hold 2e7-scale arrays
        base = {
            "graph": str(graph_path),
            "c_max": c_max,
            "partitions": partitions,
            "strategy": strategy,
            "workers": workers,
            "verify": verify,
        }
        mono_runs = [
            _run_child({**base, "mode": "mono", "partitions": 1})
            for _ in range(repeats)
        ]
        part_runs = [
            _run_child({**base, "mode": "part"}) for _ in range(repeats)
        ]
        equal_p1 = (
            _run_child({**base, "mode": "equal"})["equal"] if verify else None
        )
        mono, part = mono_runs[0], part_runs[0]
        mono_times = [run["time"] for run in mono_runs]
        part_times = [run["time"] for run in part_runs]
        mono_s, part_s = min(mono_times), min(part_times)
        mq, pq = (
            {
                k: round(v, 4) if isinstance(v, float) else v
                for k, v in child["quality"].items()
            }
            for child in (mono, part)
        )
        rows.append(
            {
                "tier": tier,
                "profile": PARTITION_TIERS[tier][1],
                "nodes": nodes,
                "edges": edges,
                "mono_s": round(mono_s, 4),
                "part_s": round(part_s, 4),
                "speedup": round(mono_s / part_s, 2) if part_s else None,
                "mono_times": mono_times,
                "part_times": part_times,
                "mono_rss_mb": max(r["rss_self_mb"] for r in mono_runs),
                "part_rss_mb": max(r["rss_self_mb"] for r in part_runs),
                "part_worker_rss_mb": max(
                    r["rss_children_mb"] for r in part_runs
                ),
                "equal_p1": equal_p1,
                "mono_quality": mq,
                "part_quality": pq,
                "quality_delta": {
                    "islands": pq["islands"] - mq["islands"],
                    "hub_fraction": round(
                        pq["hub_fraction"] - mq["hub_fraction"], 4
                    ),
                    "classified_edge_ratio": round(
                        pq["classified_edge_ratio"]
                        - mq["classified_edge_ratio"],
                        4,
                    ),
                },
            }
        )
    largest = rows[-1] if rows else None
    return {
        "benchmark": "locator-partition",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "c_max": c_max,
            "partitions": partitions,
            "workers": workers,
            "strategy": strategy,
            "max_edges": max_edges,
            "profiles": {
                key: (
                    f"hub-island mean={prof.island_size_mean:g} "
                    f"max={prof.island_size_max} "
                    f"bg={prof.background_fraction:g}"
                )
                for key, (prof, _) in _PROFILES.items()
            },
            "verified": verify,
        },
        "tiers": rows,
        "largest_tier": largest["tier"] if largest else None,
        "largest_speedup": largest["speedup"] if largest else None,
    }
