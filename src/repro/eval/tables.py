"""Row-dict rendering: ASCII tables, CSV, and JSON.

The benchmark harness prints paper-style tables to stdout;
:func:`render_table` turns a list of row dicts into a fixed-width
table, with columns ordered by first appearance.  :func:`render_csv`
and :func:`render_json` emit the same rows machine-readably (for
``repro sweep --format``), and :func:`render_rows` dispatches on a
format name.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Mapping

__all__ = [
    "render_table",
    "render_csv",
    "render_json",
    "render_rows",
    "format_value",
    "ROW_FORMATS",
]

#: Formats understood by :func:`render_rows`.
ROW_FORMATS = ("table", "csv", "json")


def format_value(value: object) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Iterable[Mapping[str, object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows (dicts) as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = _columns(rows)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(line, widths)) for line in cells
    )
    out = f"{header}\n{rule}\n{body}"
    if title:
        out = f"\n=== {title} ===\n{out}"
    return out


def _columns(rows: list[Mapping[str, object]]) -> list[str]:
    """Column names in first-appearance order across all rows."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def render_csv(rows: Iterable[Mapping[str, object]]) -> str:
    """Render rows as CSV (header + one line per row, raw values)."""
    rows = list(rows)
    if not rows:
        return ""
    columns = _columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue().rstrip("\n")


def render_json(rows: Iterable[Mapping[str, object]]) -> str:
    """Render rows as a JSON array of objects (raw values)."""
    return json.dumps([dict(row) for row in rows], indent=2)


def render_rows(
    rows: Iterable[Mapping[str, object]],
    fmt: str = "table",
    *,
    title: str | None = None,
) -> str:
    """Render rows in one of :data:`ROW_FORMATS` (title applies to table)."""
    if fmt == "table":
        return render_table(rows, title=title)
    if fmt == "csv":
        return render_csv(rows)
    if fmt == "json":
        return render_json(rows)
    raise ValueError(f"unknown row format {fmt!r}; pick from {ROW_FORMATS}")
