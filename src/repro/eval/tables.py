"""Minimal ASCII table rendering for benchmark output.

The benchmark harness prints paper-style tables to stdout;
:func:`render_table` turns a list of row dicts into a fixed-width
table, with columns ordered by first appearance.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["render_table", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Iterable[Mapping[str, object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows (dicts) as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(line, widths)) for line in cells
    )
    out = f"{header}\n{rule}\n{body}"
    if title:
        out = f"\n=== {title} ===\n{out}"
    return out
