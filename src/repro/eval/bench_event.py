"""Event-pipeline benchmark: the discrete-event mode vs its bounds.

Runs a full I-GCN inference (islandization + 2-layer GCN, batched
backends) over the shared hub-and-island graph ladder in all three
pipeline modes and records, per tier:

* the **sandwich position** — staged, streamed and event end-to-end
  cycles, with the event makespan provably between the streamed lower
  bound and the staged sum (``event_sim``'s structural contract);
* the **latency distribution** — per-island p50/p99 release-to-
  completion latency in µs, the serving-story metric the aggregate
  models cannot produce;
* the **simulation cost** — wall-clock seconds of the event mode next
  to the streamed mode, so the event refinement's overhead stays
  visible.

Each tier *verifies* the whole event contract — the sandwich bound,
byte-identical traces across two runs, a clean
:func:`~repro.core.event_sim.validate_trace` replay, and the cross-mode
counts/traffic equivalence — and records the verdict in the row, so
``BENCH_event.json`` can never drift from what the test suite pins.

Entry points:

* ``python -m repro bench event`` — run tiers, print a table, write the
  JSON record;
* :func:`run_event_bench` — library API (used by the CI ``bench-smoke``
  job).

The JSON schema (one record per file)::

    {"benchmark": "event-pipeline",
     "config": {"seed": ..., "repeats": ..., "c_max": ..., "preagg_k": ...,
                "layers": ..., "verified": ...},
     "tiers": [{"tier": "1e4", "nodes": ..., "edges": ...,
                "rounds": ..., "islands": ...,
                "staged_cycles": ..., "streamed_cycles": ...,
                "event_cycles": ..., "overlap_win": ...,
                "bound_gap": ..., "p50_us": ..., "p99_us": ...,
                "streamed_s": ..., "event_s": ...,
                "sandwich": true, "deterministic": true,
                "equal": true}, ...],
     "largest_tier": "...", "largest_speedup": ...}

``overlap_win`` is ``staged_cycles / event_cycles`` (> 1 means the
event model still hides locator time under contention);
``bound_gap`` is ``event_cycles / streamed_cycles`` (>= 1; how much
the island-granular refinement costs over the aggregate optimism);
``largest_speedup`` mirrors the other bench records' key and holds the
largest tier's overlap win.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.accelerator import IGCNAccelerator, IGCNReport
from repro.core.config import ConsumerConfig, LocatorConfig
from repro.core.event_sim import validate_trace
from repro.errors import ConfigError
from repro.eval.bench_locator import bench_graph
from repro.eval.bench_pipeline import _modes_equal, _run_mode
from repro.models.configs import gcn_model

__all__ = ["run_event_bench"]

#: Float slack when checking the sandwich (matches event_sim._EPS).
_EPS = 1e-6


def _verify_tier(
    staged: IGCNReport, streamed: IGCNReport, event: IGCNReport,
    event_again: IGCNReport,
) -> tuple[bool, bool, bool]:
    """``(sandwich, deterministic, equal)`` for one tier."""
    sandwich = (
        streamed.total_cycles - _EPS
        <= event.total_cycles
        <= staged.total_cycles + _EPS
    )
    validate_trace(event.event)
    deterministic = (
        event.event.trace_bytes() == event_again.event.trace_bytes()
    )
    equal = _modes_equal(staged, event) and _modes_equal(streamed, event)
    return sandwich, deterministic, equal


def run_event_bench(
    tiers: Sequence[str] = ("1e3", "1e4", "1e5", "1e6", "2e6"),
    *,
    repeats: int = 3,
    seed: int = 7,
    c_max: int = 64,
    preagg_k: int = 6,
    verify: bool = True,
) -> dict:
    """Run all three pipeline modes across ``tiers``; returns the record.

    The event mode runs ``repeats`` times (best-of wall clock) plus one
    extra run for the determinism check; the modelled cycle totals and
    traces are deterministic, so they come from the last run.  With
    ``verify`` (default) each tier asserts the sandwich bound, trace
    validity, run-to-run trace determinism and the cross-mode
    counts/traffic equivalence, recording the verdicts in the row.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1 (got {repeats})")
    model = gcn_model(32, 8)
    rows: list[dict] = []
    for tier in tiers:
        graph = bench_graph(tier, seed=seed)
        common = dict(c_max=c_max, preagg_k=preagg_k)
        _, staged = _run_mode(graph, model, pipeline="staged", **common)
        _run_mode(graph, model, pipeline="streamed", **common)  # warm
        streamed_s = float("inf")
        for _ in range(repeats):
            elapsed, streamed = _run_mode(
                graph, model, pipeline="streamed", **common
            )
            streamed_s = min(streamed_s, elapsed)
        _run_mode(graph, model, pipeline="event", **common)  # warm
        event_s = float("inf")
        for _ in range(repeats):
            elapsed, event = _run_mode(
                graph, model, pipeline="event", **common
            )
            event_s = min(event_s, elapsed)
        _, event_again = _run_mode(graph, model, pipeline="event", **common)

        sandwich = deterministic = equal = None
        if verify:
            sandwich, deterministic, equal = _verify_tier(
                staged, streamed, event, event_again
            )
        sim = event.event
        rows.append(
            {
                "tier": tier,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges // 2,
                "rounds": event.islandization.num_rounds,
                "islands": event.islandization.num_islands,
                "staged_cycles": round(staged.total_cycles, 1),
                "streamed_cycles": round(streamed.total_cycles, 1),
                "event_cycles": round(event.total_cycles, 1),
                "overlap_win": (
                    round(staged.total_cycles / event.total_cycles, 4)
                    if event.total_cycles
                    else None
                ),
                "bound_gap": (
                    round(event.total_cycles / streamed.total_cycles, 4)
                    if streamed.total_cycles
                    else None
                ),
                "p50_us": (
                    round(event.island_p50_us, 5)
                    if event.island_p50_us is not None
                    else None
                ),
                "p99_us": (
                    round(event.island_p99_us, 5)
                    if event.island_p99_us is not None
                    else None
                ),
                "ring_grants": sim.ring_grants,
                "cache_hit_rate": (
                    round(
                        sim.cache_hits / (sim.cache_hits + sim.cache_misses),
                        4,
                    )
                    if sim.cache_hits + sim.cache_misses
                    else None
                ),
                "streamed_s": round(streamed_s, 4),
                "event_s": round(event_s, 4),
                "sandwich": sandwich,
                "deterministic": deterministic,
                "equal": equal,
            }
        )
    largest = rows[-1] if rows else None
    return {
        "benchmark": "event-pipeline",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "c_max": c_max,
            "preagg_k": preagg_k,
            "layers": [
                [layer.in_dim, layer.out_dim] for layer in model.layers
            ],
            "verified": verify,
        },
        "tiers": rows,
        "largest_tier": largest["tier"] if largest else None,
        "largest_speedup": largest["overlap_win"] if largest else None,
    }
