"""Incremental-islandization benchmark: delta maintenance vs rebuild.

Times :func:`repro.core.islandizer_incremental.update_islandization`
against both from-scratch contenders on one evolving ~2e6-entry graph
across a ladder of *delta sizes* (the other suites ladder graph size;
an evolving-graph pipeline's variable is how much changed since the
cached islandization):

* ``record_s`` — :func:`record_islandization` on the mutated graph:
  the honest baseline.  A pipeline that wants to stay updatable must
  re-record the incremental bookkeeping on every rebuild, so this is
  the cost the incremental path actually displaces (the **headline**
  speedup).
* ``islandize_s`` — plain :func:`islandize` on the mutated graph: the
  cost for a pipeline that gives up on updatability.  Reported so the
  record-keeping overhead is visible next to the win.

Every ladder point asserts exact equivalence
(``IslandizationResult.equals``, per-engine work distribution
included) between the updated result and a from-scratch run on the
mutated graph — the incremental path has no approximation knob to
hide behind.

The churn delta
---------------
Uniform random edge insertions connect distant components, so a
handful of edits would weld most of the graph into one dirty region —
realistic graph growth does the opposite (triadic closure: new edges
close wedges).  The ladder's delta model reflects that:

* **insertions** (half the edits) are triadic closures through a
  *non-hub* mutual neighbour: pick ``u``, a non-hub neighbour ``v``,
  and a neighbour ``w`` of ``v``; insert ``(u, w)``.  Closing through
  a hub would not localise anything — the hub bounds TP-BFS walks, so
  its two components never interact — hence the non-hub restriction
  keeps each edit's dirt inside one round-1 component, the regime the
  dirty-region closure is built for.
* **deletions** (the other half) are uniform over existing directed
  entries.

Delta sizes 1e1/1e3/1e5 bracket the interesting range: single-edit
latency, the sweet spot, and past the crossover where
``update_islandization``'s ``max_dirty_fraction`` heuristic correctly
abandons splicing for a full rebuild (``fallback: true`` in the
record; ``crossover_delta`` pins the ladder point where the win is
gone).

Measurement methodology
-----------------------
All contenders run in *one* process, best-of-``repeats`` each (unlike
the partition suite there is no worker fleet to cold-start, and a
shared warm allocator is fair to both sides).  ``apply_s`` (building
the mutated CSR) is timed separately and excluded from every
contender: a delta pipeline needs the mutated graph downstream no
matter how the islandization is maintained.

The JSON schema (one record per file)::

    {"benchmark": "locator-incremental",
     "config": {"seed": ..., "delta_seed": ..., "repeats": ...,
                "th0": ..., "c_max": ..., "decay": ...,
                "max_edges": ..., "max_dirty_fraction": ...,
                "profile": "...", "verified": ...},
     "graph": {"nodes": ..., "edges": ...},
     "tiers": [{"tier": "1e3", "delta_edges": ..., "insertions": ...,
                "deletions": ..., "apply_s": ..., "incr_s": ...,
                "record_s": ..., "islandize_s": ...,
                "speedup_vs_record": ..., "speedup_vs_islandize": ...,
                "equal": true, "fallback": false,
                "dirty_nodes": ..., "region_nodes": ...}, ...],
     "headline_tier": "1e3", "headline_speedup": ...,
     "crossover_delta": ...}

``edges`` counts directed CSR entries; ``*_s`` are best-of-``repeats``
wall times; ``delta_edges`` is the *effective* edit count (a
``max_edges``-capped smoke graph caps the big deltas too, and the cap
lands in the record so a smoke run cannot impersonate the full
ladder).
"""

from __future__ import annotations

from typing import Sequence

import time

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.islandizer import islandize
from repro.core.islandizer_incremental import (
    record_islandization,
    update_islandization,
)
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph, GraphDelta
from repro.graph.generators import CommunityProfile, hub_island_graph

__all__ = [
    "DELTA_TIERS",
    "churn_delta",
    "incremental_bench_graph",
    "run_incremental_bench",
]

#: Delta-size ladder: tier name -> edit count (insertions + deletions).
DELTA_TIERS: dict[str, int] = {
    "1e1": 10,
    "1e3": 1_000,
    "1e5": 100_000,
}

#: The evolving-graph tier: target directed entries and the community
#: structure.  Smaller, denser islands than the partition suite's
#: profile — the regime where incremental maintenance matters is many
#: independent communities absorbing edits, not a few welded blobs.
_TARGET_EDGES = 2_000_000
_EDGES_PER_NODE = 10.6
_PROFILE = CommunityProfile(
    island_size_mean=9.0,
    island_size_max=24,
    island_density=0.4,
    background_fraction=0.0075,
    background_hub_bias=1.0,
)
_PROFILE_DESC = (
    f"hub-island mean={_PROFILE.island_size_mean:g} "
    f"max={_PROFILE.island_size_max} "
    f"density={_PROFILE.island_density:g} "
    f"bg={_PROFILE.background_fraction:g}"
)

#: Locator knobs of the suite.  TH0 is pinned (not quantile-derived):
#: an evolving pipeline pins its threshold precisely so deltas cannot
#: silently shift it — a moving TH0 forces the full-rebuild fallback
#: on every update (and the bench would measure nothing).
_TH0 = 16
_DECAY = 0.5


def incremental_bench_graph(
    *, seed: int = 7, max_edges: int | None = None
) -> CSRGraph:
    """The suite's base graph (self-loop-free).

    ``max_edges`` caps the target entry count so CI can smoke-run the
    suite small; the cap is recorded by the caller.
    """
    target = _TARGET_EDGES
    if max_edges is not None:
        if max_edges < 1_000:
            raise ConfigError(f"--max-edges must be >= 1000 (got {max_edges})")
        target = min(target, max_edges)
    nodes = max(64, int(target / _EDGES_PER_NODE))
    graph, _ = hub_island_graph(
        nodes, _PROFILE, seed=seed, name="incrbench"
    )
    return graph.without_self_loops()


def churn_delta(
    graph: CSRGraph,
    rng: np.random.Generator,
    k: int,
    th0: int,
    *,
    oracle: bool = False,
) -> GraphDelta:
    """``k`` churn edits: triadic insertions + uniform deletions.

    See the module docstring for why insertions close wedges through
    non-hub mutual neighbours.  Returns ``k//2`` insertions and
    ``k - k//2`` deletions, all distinct undirected pairs.

    Random draws happen in fixed-size batches consumed identically by
    two implementations of the candidate extraction: the vectorized
    default (the per-edit Python loop used to dominate the 1e5-tier
    profile) and the original scalar loop, kept as ``oracle=True``.
    Same generator state in, **byte-identical** delta out — pinned by
    the tests.
    """
    n = graph.num_nodes
    nonhub = graph.degrees < th0
    indptr, indices = graph.indptr, graph.indices
    ekeys = graph.edge_keys()
    k_ins = k // 2
    k_del = k - k_ins
    if oracle:
        eset = set(ekeys.tolist())
    else:
        # Running count of non-hub adjacency entries: the idx-th
        # non-hub neighbour of any row is one searchsorted away.
        prefix = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(nonhub[indices], out=prefix[1:])
    ins: list[tuple[int, int]] = []
    seen: set[int] = set()
    # Rejection sampling needs a budget: a tiny or saturated graph may
    # simply have no k closable wedges left.
    attempts = 0
    budget = 50 * k_ins + 1_000
    while len(ins) < k_ins:
        if attempts >= budget:
            raise ConfigError(
                f"graph too small for a {k}-edit churn delta "
                f"({len(ins)}/{k_ins} insertions found)"
            )
        b = min(budget - attempts, max(256, 2 * (k_ins - len(ins))))
        attempts += b
        u = rng.integers(0, n, size=b)
        r1 = rng.random(b)
        r2 = rng.random(b)
        if oracle:
            cand = _ins_candidates_scalar(
                u, r1, r2, indptr=indptr, indices=indices,
                nonhub=nonhub, eset=eset, n=n,
            )
        else:
            cand = _ins_candidates(
                u, r1, r2, indptr=indptr, indices=indices,
                prefix=prefix, ekeys=ekeys, n=n,
            )
        # Dedup against earlier accepts stays sequential — a later
        # candidate may repeat an earlier one — but now runs over the
        # few surviving candidate keys, not every raw draw.
        for cu, cw, ck in zip(*cand):
            if len(ins) >= k_ins:
                break
            ck = int(ck)
            if ck in seen:
                continue
            seen.add(ck)
            ins.append((int(cu), int(cw)))
    # Oversample deletion candidates 4x: some collapse to duplicate
    # undirected pairs or collide with an insertion's pair.
    pick = rng.choice(len(ekeys), size=min(4 * k_del, len(ekeys)),
                      replace=False)
    picked = ekeys[pick]
    if oracle:
        dels: list[tuple[int, int]] = []
        for key in picked:
            if len(dels) >= k_del:
                break
            key = int(key)
            u, v = key // n, key % n
            canon = min(u, v) * n + max(u, v)
            if canon in seen:
                continue
            seen.add(canon)
            dels.append((u, v))
        del_arr = np.asarray(dels, dtype=np.int64).reshape(-1, 2)
    else:
        # First occurrence per canonical pair == the scalar scan's
        # accept order; insertion collisions drop via one sorted
        # membership pass over the accepted insertion keys.
        canon = (
            np.minimum(picked // n, picked % n) * n
            + np.maximum(picked // n, picked % n)
        )
        uniq, first = np.unique(canon, return_index=True)
        if seen:
            ins_keys = np.sort(
                np.fromiter(seen, dtype=np.int64, count=len(seen))
            )
            pos = np.searchsorted(ins_keys, uniq)
            inb = pos < len(ins_keys)
            hit = np.zeros(len(uniq), dtype=bool)
            hit[inb] = ins_keys[pos[inb]] == uniq[inb]
            first = first[~hit]
        first.sort()
        sel = picked[first[:k_del]]
        del_arr = np.stack([sel // n, sel % n], axis=1)
    if len(del_arr) < k_del:
        raise ConfigError(
            f"graph too small for a {k}-edit churn delta "
            f"({len(del_arr)}/{k_del} deletions found)"
        )
    return GraphDelta.from_edges(
        insertions=np.asarray(ins, dtype=np.int64).reshape(-1, 2),
        deletions=del_arr,
    )


def _ins_candidates(u, r1, r2, *, indptr, indices, prefix, ekeys, n):
    """Vectorized wedge-closure candidates for one batch of draws.

    Returns ``(u, w, canonical key)`` of every draw that survives the
    rejection rules (non-empty rows, ``w != u``, edge absent), in draw
    order — exactly what :func:`_ins_candidates_scalar` yields from
    the same batch.
    """
    last = len(indices) - 1
    if last < 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    lo = indptr[u]
    deg_u = indptr[u + 1] - lo
    cnt_local = prefix[indptr[u + 1]] - prefix[lo]
    has_local = cnt_local > 0
    pool = np.where(has_local, cnt_local, deg_u)
    idx = (r1 * pool).astype(np.int64)
    # idx-th non-hub neighbour: first prefix position reaching
    # prefix[row start] + idx + 1 (fallback rows get a harmless 0
    # target; they read the plain idx-th neighbour instead).
    target = np.where(has_local, prefix[lo] + idx + 1, 0)
    p = np.searchsorted(prefix, target, side="left") - 1
    v_local = indices[np.clip(p, 0, last)]
    v_fall = indices[np.clip(lo + idx, 0, last)]
    v = np.where(has_local, v_local, v_fall)
    lo_v = indptr[v]
    deg_v = indptr[v + 1] - lo_v
    w = indices[np.clip(lo_v + (r2 * deg_v).astype(np.int64), 0, last)]
    valid = (deg_u > 0) & (deg_v > 0) & (w != u)
    key = np.minimum(u, w) * n + np.maximum(u, w)
    pos = np.searchsorted(ekeys, key)
    inb = pos < len(ekeys)
    exists = np.zeros(len(u), dtype=bool)
    exists[inb] = ekeys[pos[inb]] == key[inb]
    valid &= ~exists
    return u[valid], w[valid], key[valid]


def _ins_candidates_scalar(u_batch, r1, r2, *, indptr, indices, nonhub,
                           eset, n):
    """The original per-edit loop over one batch (the vectorization
    oracle): same draws in, same candidates out."""
    out_u: list[int] = []
    out_w: list[int] = []
    out_k: list[int] = []
    for i in range(len(u_batch)):
        u = int(u_batch[i])
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        if hi == lo:
            continue
        nbrs = indices[lo:hi]
        local = nbrs[nonhub[nbrs]]
        pool = local if len(local) else nbrs
        v = int(pool[int(r1[i] * len(pool))])
        lo2, hi2 = int(indptr[v]), int(indptr[v + 1])
        if hi2 == lo2:
            continue
        w = int(indices[lo2 + int(r2[i] * (hi2 - lo2))])
        if w == u:
            continue
        key = min(u, w) * n + max(u, w)
        if key in eset:
            continue
        out_u.append(u)
        out_w.append(w)
        out_k.append(key)
    return out_u, out_w, out_k


def _best(fn, repeats: int):
    """(result, best wall time) of ``repeats`` calls."""
    out, best = None, float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def run_incremental_bench(
    tiers: Sequence[str] = ("1e1", "1e3", "1e5"),
    *,
    repeats: int = 3,
    seed: int = 7,
    delta_seed: int = 11,
    c_max: int = 64,
    max_edges: int | None = None,
    max_dirty_fraction: float = 0.5,
    verify: bool = True,
) -> dict:
    """Benchmark incremental maintenance across the delta-size ladder.

    With ``verify`` (default) every ladder point asserts
    ``IslandizationResult.equals`` between the incremental result and
    a from-scratch run on the mutated graph, and validates the
    result's invariants.  Each tier draws its delta from a fresh
    ``default_rng(delta_seed)``, so one tier's numbers reproduce
    without running the others.
    """
    for tier in tiers:
        if tier not in DELTA_TIERS:
            raise ConfigError(
                f"unknown incremental bench tier {tier!r}; available: "
                f"{', '.join(DELTA_TIERS)}"
            )
    config = LocatorConfig(
        th0=_TH0, c_max=c_max, decay=_DECAY, incremental=True
    )
    graph = incremental_bench_graph(seed=seed, max_edges=max_edges)
    cached, state = record_islandization(graph, config)
    # A smoke-capped graph caps the big deltas too (recorded per row).
    k_cap = max(2, graph.num_edges // 8)
    rows: list[dict] = []
    for tier in tiers:
        k = min(DELTA_TIERS[tier], k_cap)
        rng = np.random.default_rng(delta_seed)
        delta = churn_delta(graph, rng, k, _TH0)
        t0 = time.perf_counter()
        mutated, ins_eff, del_eff = graph.apply_delta(
            delta, with_changes=True
        )
        apply_s = time.perf_counter() - t0
        applied = (mutated, ins_eff, del_eff)
        scratch, islandize_s = _best(
            lambda: islandize(mutated, config), repeats
        )
        _, record_s = _best(
            lambda: record_islandization(mutated, config), repeats
        )
        upd, incr_s = _best(
            lambda: update_islandization(
                graph, cached, state, delta, config,
                max_dirty_fraction=max_dirty_fraction, applied=applied,
            ),
            repeats,
        )
        equal = None
        if verify:
            equal = bool(upd.result.equals(scratch))
            upd.result.validate()
        rows.append({
            "tier": tier,
            "delta_edges": delta.num_edges,
            "insertions": delta.num_insertions,
            "deletions": delta.num_deletions,
            "apply_s": round(apply_s, 4),
            "incr_s": round(incr_s, 4),
            "record_s": round(record_s, 4),
            "islandize_s": round(islandize_s, 4),
            "speedup_vs_record": round(record_s / incr_s, 2),
            "speedup_vs_islandize": round(islandize_s / incr_s, 2),
            "equal": equal,
            "fallback": upd.fallback,
            "fallback_reason": upd.fallback_reason,
            "dirty_nodes": upd.dirty_nodes,
            "region_nodes": upd.region_nodes,
        })
    # Headline: the largest delta the incremental path still wins
    # outright (no fallback).  Crossover: the first ladder point where
    # the win is gone — by fallback or by measured speedup < 1.
    winners = [r for r in rows if not r["fallback"]
               and r["speedup_vs_record"] >= 1.0]
    headline = winners[-1] if winners else None
    crossover = next(
        (r["tier"] for r in rows
         if r["fallback"] or r["speedup_vs_record"] < 1.0),
        None,
    )
    return {
        "benchmark": "locator-incremental",
        "config": {
            "seed": seed,
            "delta_seed": delta_seed,
            "repeats": repeats,
            "th0": _TH0,
            "c_max": c_max,
            "decay": _DECAY,
            "max_edges": max_edges,
            "max_dirty_fraction": max_dirty_fraction,
            "profile": _PROFILE_DESC,
            "verified": verify,
        },
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "tiers": rows,
        "headline_tier": headline["tier"] if headline else None,
        "headline_speedup": (
            headline["speedup_vs_record"] if headline else None
        ),
        "crossover_delta": crossover,
    }
