"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad CSR arrays, out-of-range ids)."""


class DatasetError(ReproError):
    """Raised when a dataset name or scale is invalid."""


class ConfigError(ReproError):
    """Raised for invalid model or hardware configuration values."""


class SimulationError(ReproError):
    """Raised when a simulator reaches an inconsistent internal state."""


class IslandizationError(SimulationError):
    """Raised when the island locator violates one of its invariants."""
