"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       simulate one inference (any platform) and print the report
``islandize`` run only the Island Locator and print round statistics
``compare``   cross-platform comparison on one dataset
``sweep``     batched datasets × models × platforms sweep (optionally
              process-parallel) through the runtime Engine
``bench``     scaling benchmarks: the ``locator``/``consumer`` suites
              time scalar vs batched backends (BENCH_locator.json,
              BENCH_consumer.json); the ``pipeline`` suite times
              staged vs streamed execution and records the Fig. 3
              overlap win (BENCH_pipeline.json); the ``pincr`` suite
              times shard-routed incremental updates against full
              fleet re-records (BENCH_pincr.json)
``spy``       ASCII spy plot of a dataset before/after islandization
``experiments`` regenerate every paper table/figure (slow)
``cache``     inspect, clear, or size-evict the persistent artifact
              store
``queue``     durable experiment queue (sweep-as-a-service): define a
              grid once, drain it with any number of crash-tolerant
              worker processes, inspect/retry/reap it
``docs``      regenerate generated documentation (``docs cli`` writes
              docs/cli.md from this parser; ``--check`` verifies it)

All simulation goes through the runtime registry
(``repro.runtime.get_simulator``); artifact caching and batching go
through ``repro.runtime.Engine``.  ``run``/``compare``/``sweep``/
``experiments`` accept ``--cache-dir DIR`` (or the ``REPRO_CACHE_DIR``
environment variable) to persist the engine's artifact caches on disk,
so repeated invocations warm-start instead of re-islandizing.

Examples
--------
::

    python -m repro run --dataset cora --model gcn
    python -m repro run --dataset cora --platform hygcn
    python -m repro islandize --dataset citeseer --cmax 32
    python -m repro compare --dataset pubmed
    python -m repro sweep --datasets cora citeseer --platforms igcn awb
    python -m repro sweep --datasets cora pubmed --parallel 4 --cache-dir ~/.cache/repro
    python -m repro sweep --datasets cora --format json --output rows.json
    python -m repro bench consumer --tiers 1e3 1e4
    python -m repro cache stats
    python -m repro cache evict --max-size 500M
    python -m repro queue submit --db grid.sqlite --datasets cora citeseer
    python -m repro queue work --db grid.sqlite &   # any number of these
    python -m repro queue status --db grid.sqlite --format json
    python -m repro spy --dataset cora
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from pathlib import Path

import json

from repro.core import ConsumerConfig, IGCNAccelerator, LocatorConfig
from repro.errors import ReproError, SimulationError
from repro.eval import render_rows, render_table, spy
from repro.eval.bench_consumer import run_consumer_bench
from repro.eval.bench_event import run_event_bench
from repro.eval.bench_incremental import DELTA_TIERS, run_incremental_bench
from repro.eval.bench_locator import BENCH_TIERS, run_locator_bench
from repro.eval.bench_partition import PARTITION_TIERS, run_partition_bench
from repro.eval.bench_pincr import PINCR_DELTA_TIERS, run_pincr_bench
from repro.eval.bench_pipeline import run_pipeline_bench
from repro.eval.experiments import (
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_table1,
    experiment_table2,
    shared_engine,
)
from repro.eval.tables import ROW_FORMATS
from repro.graph import dataset_names, load_dataset
from repro.models import build_model
from repro.runtime import (
    DiskStore,
    Engine,
    ExperimentQueue,
    default_cache_dir,
    default_queue_path,
    get_simulator,
    resolve_name,
    simulator_aliases,
    simulator_names,
    work,
)

__all__ = ["main", "build_parser"]

#: I-GCN knob defaults, shared between the parser and the
#: "flag only applies to igcn" guard in _cmd_run.
_DEFAULT_PREAGG_K = 6
_DEFAULT_CMAX = 64


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="I-GCN (MICRO 2021) reproduction simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=dataset_names(), default="cora")
        p.add_argument("--scale", type=float, default=None,
                       help="node-count multiplier (default: per-dataset)")
        p.add_argument("--seed", type=int, default=7)

    def add_cache_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist artifact caches under DIR so later "
                            "invocations warm-start (default: "
                            "$REPRO_CACHE_DIR if set, else no disk cache)")

    def add_locator_backend_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--locator-backend", choices=["batched", "scalar"],
                       default="batched",
                       help="TP-BFS implementation: the vectorized batched "
                            "kernel (default) or the scalar oracle loop; "
                            "results are identical, only speed differs")
        p.add_argument("--partitions", type=int, default=1,
                       help="shard the graph and islandize shards in "
                            "parallel worker processes (default: 1 = "
                            "monolithic; >1 trades islandization quality "
                            "for wall clock and peak memory, see "
                            "docs/architecture.md)")
        p.add_argument("--partition-strategy", choices=["separator", "range"],
                       default="separator",
                       help="how --partitions > 1 splits the graph: "
                            "'separator' (default) cuts at degree-ordered "
                            "vertex separators so no island-able edge "
                            "crosses shards; 'range' is the naive "
                            "contiguous-id baseline")

    def add_backend_arg(p: argparse.ArgumentParser) -> None:
        add_locator_backend_arg(p)
        # Only commands with a consumer phase take --consumer-backend
        # (islandize stops at the locator; a silently ignored flag
        # would mislead).
        p.add_argument("--consumer-backend", choices=["batched", "scalar"],
                       default="batched",
                       help="Island Consumer implementation: the vectorized "
                            "multi-island kernel (default) or the scalar "
                            "per-island oracle loop; counts, traffic and "
                            "outputs are identical, only speed differs")
        p.add_argument("--pipeline", choices=["streamed", "staged", "event"],
                       default="streamed",
                       help="locator/consumer execution mode: 'streamed' "
                            "(default) consumes islands per locator round "
                            "as they form and reports overlapped cycles "
                            "(the paper's Fig. 3); 'staged' runs the two "
                            "phases back-to-back; 'event' refines the "
                            "streamed model to a discrete-event simulation "
                            "(per-island release, PE contention, ring/PRC "
                            "arbitration) and adds per-island p50/p99 "
                            "latency; counts, traffic and outputs are "
                            "identical in every mode, only the cycle model "
                            "differs")

    # Accept aliases too, so platform names printed by compare/sweep
    # ("awb-gcn", ...) round-trip as input.
    platform_choices = simulator_names() + simulator_aliases()

    run = sub.add_parser("run", help="simulate one inference")
    add_dataset_args(run)
    run.add_argument("--platform", choices=platform_choices, default="igcn",
                     help="which registered simulator to run")
    run.add_argument("--model", choices=["gcn", "graphsage", "gin"],
                     default="gcn")
    run.add_argument("--variant", choices=["algo", "hy"], default="algo")
    run.add_argument("--preagg-k", type=int, default=_DEFAULT_PREAGG_K)
    run.add_argument("--cmax", type=int, default=_DEFAULT_CMAX)
    run.add_argument("--functional", action="store_true",
                     help="execute real math and verify vs reference "
                          "(igcn only)")
    run.add_argument("--validate", action="store_true",
                     help="replay the event trace through the conformance "
                          "validator after the run (requires --pipeline "
                          "event): causality, PE exclusivity, port "
                          "capacity, cache occupancy and work conservation")
    add_cache_arg(run)
    add_backend_arg(run)

    isl = sub.add_parser("islandize", help="run only the Island Locator")
    add_dataset_args(isl)
    isl.add_argument("--cmax", type=int, default=64)
    isl.add_argument("--th0", type=int, default=None)
    isl.add_argument("--decay", type=float, default=0.5)
    isl.add_argument("--delta", metavar="FILE", default=None,
                     help="apply a GraphDelta archive (.npz) to the "
                          "dataset and maintain the islandization "
                          "incrementally instead of re-running it; "
                          "prints the updated round table plus the "
                          "dirty-region telemetry")
    add_locator_backend_arg(isl)

    cmp_ = sub.add_parser("compare", help="cross-platform comparison")
    add_dataset_args(cmp_)
    cmp_.add_argument("--variant", choices=["algo", "hy"], default="algo")
    add_cache_arg(cmp_)
    add_backend_arg(cmp_)

    swp = sub.add_parser(
        "sweep", help="batched datasets x models x platforms sweep"
    )
    swp.add_argument("--datasets", nargs="+", choices=dataset_names(),
                     default=list(dataset_names()),
                     help="datasets to sweep (default: all five)")
    swp.add_argument("--platforms", nargs="+", choices=platform_choices,
                     default=["igcn", "awb", "hygcn", "sigma"],
                     help="registered platforms to sweep")
    swp.add_argument("--models", nargs="+", default=["gcn"],
                     help="model specs, 'family' or 'family:variant' "
                          "(e.g. gcn gcn:hy gin)")
    swp.add_argument("--variant", choices=["algo", "hy"], default="algo",
                     help="default variant for specs without one")
    swp.add_argument("--scale", type=float, default=None)
    swp.add_argument("--seed", type=int, default=7)
    swp.add_argument("--parallel", type=int, default=0,
                     help="process-pool workers (0 = serial); with "
                          "--queue, the number of local queue workers")
    swp.add_argument("--queue", metavar="FILE", default=None,
                     help="route the sweep through the durable "
                          "experiment queue at FILE: the grid is "
                          "submitted idempotently (a restart resumes, "
                          "done cells are never re-run), --parallel "
                          "local workers plus this process drain it, "
                          "and the rows fold back identically to the "
                          "in-process path")
    swp.add_argument("--format", choices=list(ROW_FORMATS), default="table",
                     help="row output format (default: table)")
    swp.add_argument("--output", metavar="FILE", default=None,
                     help="write formatted rows to FILE instead of stdout")
    add_cache_arg(swp)
    add_backend_arg(swp)

    bench = sub.add_parser(
        "bench", help="performance benchmarks (backends and pipeline modes)"
    )
    bench.add_argument("suite",
                       choices=["locator", "consumer", "pipeline", "event",
                                "partition", "incremental", "pincr"],
                       help="benchmark suite to run: locator/consumer time "
                            "scalar vs batched backends, pipeline times "
                            "staged vs streamed execution and records the "
                            "modelled overlap win, event runs the "
                            "discrete-event pipeline against its "
                            "streamed/staged sandwich bounds and records "
                            "per-island p50/p99 latency, partition times "
                            "monolithic vs sharded islandization in fresh "
                            "processes and records peak RSS plus the "
                            "quality delta, incremental times delta-driven "
                            "island maintenance vs from-scratch rebuilds "
                            "across a ladder of delta sizes, pincr times "
                            "shard-routed incremental updates vs full "
                            "fleet re-records on one warm shard fleet")
    tier_choices = list(BENCH_TIERS) + [
        t for t in PARTITION_TIERS if t not in BENCH_TIERS
    ] + [t for t in DELTA_TIERS if t not in BENCH_TIERS]
    bench.add_argument("--tiers", nargs="+", choices=tier_choices,
                       default=None,
                       help="graph-scale tiers by undirected edge count "
                            "(default: every tier of the chosen suite; "
                            "locator/consumer/pipeline ladder ends at 2e6, "
                            "the partition ladder is 2e5/2e6/2e7; the "
                            "incremental suite's tiers are *delta sizes* "
                            "1e1/1e3/1e5 on one ~2e6-entry graph)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of repeats for the batched backend")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--cmax", type=int, default=64)
    bench.add_argument("--preagg-k", type=int, default=_DEFAULT_PREAGG_K,
                       help="consumer suite: pre-aggregation window width")
    bench.add_argument("--partitions", type=int, default=4,
                       help="partition/pincr suites: shard count for the "
                            "partitioned contender (pincr real runs use "
                            "--partitions 6 to match BENCH_partition)")
    bench.add_argument("--workers", type=int, default=None,
                       help="partition/pincr suites: worker processes "
                            "(default: --partitions)")
    bench.add_argument("--partition-strategy",
                       choices=["separator", "range"], default="separator",
                       help="partition/pincr suites: graph-splitting "
                            "strategy")
    bench.add_argument("--max-edges", type=int, default=None,
                       help="partition/incremental/pincr suites: cap the "
                            "target edge count so the big tiers smoke-run "
                            "small (CI uses this; the cap is recorded in "
                            "the JSON — the delta suites cap their big "
                            "deltas to match)")
    bench.add_argument("--delta-seed", type=int, default=11,
                       help="incremental/pincr suites: RNG seed of the "
                            "churn deltas (each tier draws from a fresh "
                            "generator at this seed)")
    bench.add_argument("--graph-dir", metavar="DIR", default=None,
                       help="partition/pincr suites: cache generated "
                            "benchmark graphs under DIR (default: a "
                            "shared temp directory)")
    bench.add_argument("--no-verify", action="store_true",
                       help="skip the per-tier verification (backend "
                            "equivalence, or for the partition suite the "
                            "partitions=1 equality oracle and result "
                            "validation)")
    bench.add_argument("--output", metavar="FILE", default=None,
                       help="JSON record destination (default: "
                            "BENCH_<suite>.json; without an explicit "
                            "--output, a run with fewer tiers refuses to "
                            "overwrite a fuller record)")

    spy_ = sub.add_parser("spy", help="ASCII spy plot, before/after")
    add_dataset_args(spy_)
    spy_.add_argument("--resolution", type=int, default=48)

    exp = sub.add_parser("experiments", help="regenerate all paper results")
    exp.add_argument(
        "--only",
        choices=["table1", "table2", "fig9", "fig10", "fig11", "fig12",
                 "fig13", "fig14"],
        default=None,
    )
    add_cache_arg(exp)

    cache = sub.add_parser(
        "cache", help="inspect, clear, or size-evict the artifact store"
    )
    cache.add_argument("action", choices=["stats", "clear", "evict",
                                          "verify", "gc"],
                       help="stats: per-kind entry counts and bytes; "
                            "clear: delete every persisted artifact; "
                            "evict: drop least-recently-written artifacts "
                            "until the store fits --max-size; "
                            "verify: sweep the store for orphaned or "
                            "corrupt files and report them (--repair "
                            "deletes them); "
                            "gc: remove unreachable files — tmp debris, "
                            "foreign files, and artifacts stranded by a "
                            "key-space version bump (--dry-run reports "
                            "without deleting)")
    cache.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="store location (default: $REPRO_CACHE_DIR, "
                            "else ~/.cache/repro)")
    cache.add_argument("--max-size", metavar="SIZE", default=None,
                       help="evict: size budget as bytes or with a K/M/G "
                            "suffix (e.g. 500M, 1.5G)")
    cache.add_argument("--repair", action="store_true",
                       help="verify: delete every orphaned or corrupt "
                            "file found (default: report only)")
    cache.add_argument("--dry-run", action="store_true",
                       help="gc: report what would be removed without "
                            "deleting anything")
    cache.add_argument("--force", action="store_true",
                       help="gc: sweep even when the index lock cannot "
                            "be held (fcntl unavailable, or a shared "
                            "mount that rejects flock) — a concurrent "
                            "writer could lose artifacts, so gc "
                            "otherwise refuses the unlocked destructive "
                            "sweep")

    queue = sub.add_parser(
        "queue",
        help="durable experiment queue: crash-tolerant sweeps as a "
             "service",
    )
    queue.add_argument("action",
                       choices=["submit", "work", "status", "retry",
                                "reap"],
                       help="submit: define (or idempotently re-assert) "
                            "a datasets x models x platforms grid of "
                            "experiment cells; "
                            "work: claim cells one at a time — "
                            "heartbeating the lease, simulating through "
                            "the shared artifact store — until the "
                            "queue drains (run any number of these, on "
                            "any host sharing the db and cache dir); "
                            "status: per-status cell counts plus "
                            "quarantined-error detail (exit 1 if any "
                            "error cells); "
                            "retry: requeue quarantined error cells "
                            "with a fresh attempt budget; "
                            "reap: requeue claimed cells whose lease "
                            "expired (workers also reap on every claim)")
    queue.add_argument("--db", metavar="FILE", default=None,
                       help="queue database (default: $REPRO_QUEUE_DB "
                            "if set, else ./.repro-queue.sqlite)")
    queue.add_argument("--datasets", nargs="+", choices=dataset_names(),
                       default=None,
                       help="submit: datasets to grid (default: all "
                            "five)")
    queue.add_argument("--platforms", nargs="+", choices=platform_choices,
                       default=None,
                       help="submit: platforms to grid (default: igcn "
                            "awb hygcn sigma)")
    queue.add_argument("--models", nargs="+", default=None,
                       help="submit: model specs, 'family' or "
                            "'family:variant' (default: gcn)")
    queue.add_argument("--variant", choices=["algo", "hy"], default="algo",
                       help="submit: default variant for specs without "
                            "one")
    queue.add_argument("--scale", type=float, default=None,
                       help="submit: node-count multiplier")
    queue.add_argument("--seed", type=int, default=7,
                       help="submit: dataset RNG seed")
    queue.add_argument("--lease", type=float, default=None,
                       help="claim lease in seconds: submit persists it "
                            "as the queue-wide default; work overrides "
                            "it for its own claims")
    queue.add_argument("--max-attempts", type=int, default=None,
                       help="submit: per-cell retry budget before a "
                            "failing cell is quarantined as 'error' "
                            "(queue-wide, default 3)")
    queue.add_argument("--backoff", type=float, default=None,
                       help="submit: base of the exponential retry "
                            "backoff in seconds (queue-wide, default "
                            "0.5)")
    queue.add_argument("--max-cells", type=int, default=None,
                       help="work: exit after this many cells instead "
                            "of draining the queue")
    queue.add_argument("--no-wait", action="store_true",
                       help="work: exit as soon as no cell is claimable "
                            "instead of outliving other workers' leases")
    queue.add_argument("--timeout", type=float, default=None,
                       help="work: wall-clock bound in seconds")
    queue.add_argument("--format", choices=["table", "json"],
                       default="table",
                       help="status: output format (json prints the "
                            "counts/expired/errors summary CI gates on)")
    add_cache_arg(queue)
    add_backend_arg(queue)

    docs = sub.add_parser(
        "docs", help="regenerate generated documentation"
    )
    docs.add_argument("target", choices=["cli"],
                      help="cli: the command-line reference "
                           "(docs/cli.md), rendered from this parser")
    docs.add_argument("--output", metavar="FILE", default="docs/cli.md",
                      help="destination file (default: docs/cli.md)")
    docs.add_argument("--check", action="store_true",
                      help="verify the file is up to date instead of "
                           "writing it (exit 1 on drift; CI docs-check "
                           "runs this)")
    return parser


def _parse_size(text: str) -> int:
    """``"500M"``/``"1.5G"``/plain bytes → byte count."""
    units = {"k": 1_000, "m": 1_000_000, "g": 1_000_000_000}
    cleaned = text.strip().lower().rstrip("b")
    factor = 1
    if cleaned and cleaned[-1] in units:
        factor = units[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError:
        raise ReproError(f"unparsable size {text!r} (try 500M or 2G)") from None
    if not math.isfinite(value) or value < 0:
        raise ReproError(f"size must be a non-negative finite number "
                         f"(got {text!r})")
    return int(value * factor)


def _resolve_cache_dir(args: argparse.Namespace) -> str | None:
    """--cache-dir flag, else REPRO_CACHE_DIR, else None (memory only)."""
    return args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None


def _locator_kwargs(args: argparse.Namespace) -> dict:
    """Locator knobs shared by every command with a locator phase."""
    return {
        "backend": args.locator_backend,
        "partitions": args.partitions,
        "partition_strategy": args.partition_strategy,
    }


def _cmd_run(args) -> int:
    platform = resolve_name(args.platform)
    if args.functional and platform != "igcn":
        raise SimulationError("--functional is only supported on igcn")
    if args.validate and (platform != "igcn" or args.pipeline != "event"):
        raise SimulationError(
            "--validate replays an event trace and requires "
            "--platform igcn --pipeline event"
        )
    if platform != "igcn" and (
        args.cmax != _DEFAULT_CMAX or args.preagg_k != _DEFAULT_PREAGG_K
    ):
        raise SimulationError(
            "--cmax/--preagg-k configure the I-GCN locator/consumer and "
            "only apply with --platform igcn"
        )
    # The engine supplies cached artifacts (datasets, islandizations);
    # with --cache-dir they persist, so a repeated run warm-starts.
    engine = Engine(
        locator=LocatorConfig(**_locator_kwargs(args)),
        consumer=ConsumerConfig(backend=args.consumer_backend,
                                pipeline=args.pipeline),
        cache_dir=_resolve_cache_dir(args),
    )
    ds = engine.dataset(args.dataset, scale=args.scale, seed=args.seed,
                        with_features=args.functional)
    model_kwargs = {} if args.model == "gin" else {"variant": args.variant}
    model = build_model(args.model, ds.num_features, ds.num_classes,
                        **model_kwargs)
    if platform == "igcn":
        sim = get_simulator(
            "igcn",
            locator=LocatorConfig(c_max=args.cmax, **_locator_kwargs(args)),
            consumer=ConsumerConfig(preagg_k=args.preagg_k,
                                    backend=args.consumer_backend,
                                    pipeline=args.pipeline),
        )
        report = sim.simulate(
            ds.graph, model, feature_density=ds.feature_density,
            engine=engine,
            functional=args.functional,
            features=ds.features if args.functional else None,
        )
    else:
        report = get_simulator(platform).simulate(
            ds.graph, model, feature_density=ds.feature_density, engine=engine
        )
    title = ("I-GCN" if platform == "igcn" else report.platform)
    print(render_table([report.summary()], title=f"{title} on {ds.name}"))
    if args.validate:
        from repro.core.event_sim import validate_trace

        validate_trace(report.event)
        sim = report.event
        print(f"event trace valid: {len(sim.trace)} events, "
              f"{len(sim.islands)} units, makespan "
              f"{sim.makespan:.1f} cycles")
    if args.functional:
        import numpy as np

        from repro.models import init_weights, reference_forward

        ref = reference_forward(
            ds.graph.without_self_loops(), model, ds.features,
            init_weights(model, seed=0),
        )
        err = float(np.max(np.abs(report.outputs - ref)))
        print(f"max |islandized - reference| = {err:.2e}")
    return 0


def _cmd_islandize(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = LocatorConfig(c_max=args.cmax, th0=args.th0, decay=args.decay,
                           incremental=args.delta is not None,
                           **_locator_kwargs(args))
    update = None
    if args.delta is not None:
        from repro.graph.csr import GraphDelta
        from repro.runtime import Engine

        delta = GraphDelta.from_npz(args.delta)
        engine = Engine(locator=config)
        update = engine.update(ds.graph, delta)
        result = update.result
    else:
        result = IGCNAccelerator(locator=config).islandize(ds.graph)
    result.validate()
    rows = [
        {
            "round": r.round_id,
            "threshold": r.threshold,
            "remaining": r.nodes_remaining,
            "hubs": r.hubs_found,
            "islands": r.islands_found,
            "islanded": r.nodes_islanded,
            "cmax_drops": r.tasks_dropped_cmax,
        }
        for r in result.rounds
    ]
    title = (f"islandization of {ds.name} (after {args.delta})"
             if update is not None else f"islandization of {ds.name}")
    print(render_table(rows, title=title))
    print(f"\ntotal: {result.num_islands} islands, {result.num_hubs} hubs "
          f"({result.hub_fraction:.1%}), "
          f"{len(result.interhub_edges)} inter-hub edges; "
          f"edge coverage validated")
    if update is not None:
        how = (f"full rebuild ({update.fallback_reason})" if update.fallback
               else "incremental splice")
        shards = getattr(update, "dirty_shards", None)
        extra = (f", {len(shards)} dirty shard(s) "
                 f"{sorted(shards)}" if shards is not None else "")
        print(f"delta: {how}; dirty {update.dirty_nodes} nodes, "
              f"region {update.region_nodes} nodes{extra}")
    return 0


def _cmd_compare(args) -> int:
    engine = Engine(
        locator=LocatorConfig(**_locator_kwargs(args)),
        consumer=ConsumerConfig(backend=args.consumer_backend,
                                pipeline=args.pipeline),
        cache_dir=_resolve_cache_dir(args),
    )
    ds = engine.dataset(args.dataset, scale=args.scale, seed=args.seed)
    model = build_model("gcn", ds.num_features, ds.num_classes,
                        variant=args.variant)
    igcn = engine.simulate("igcn", ds, model)
    rows = []
    for name in simulator_names():
        if name in ("pull", "push"):
            # Idealized dataflow characterization models (Table 1), not
            # part of the paper's cross-platform comparison set.
            continue
        rep = engine.simulate(name, ds, model)
        rows.append({
            "platform": rep.platform,
            "latency_us": round(rep.latency_us, 2),
            "speedup": round(rep.latency_us / igcn.latency_us, 2),
            "dram_mb": round(rep.offchip_bytes / 1e6, 3),
        })
    print(render_table(rows, title=f"cross-platform on {ds.name} "
                                   f"(GCN-{args.variant})"))
    return 0


def _cmd_sweep(args) -> int:
    engine = Engine(
        locator=LocatorConfig(**_locator_kwargs(args)),
        consumer=ConsumerConfig(backend=args.consumer_backend,
                                pipeline=args.pipeline),
        cache_dir=_resolve_cache_dir(args),
    )
    rows = engine.sweep(
        args.datasets,
        args.platforms,
        models=args.models,
        variant=args.variant,
        scale=args.scale,
        seed=args.seed,
        parallel=args.parallel or None,
        queue=args.queue,
    )
    title = (
        f"sweep: {len(args.datasets)} datasets x {len(args.models)} models "
        f"x {len(args.platforms)} platforms"
    )
    text = render_rows(rows, args.format, title=title)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {len(rows)} rows to {args.output}")
    else:
        print(text)
    # Worker deltas are folded back into the engine, so the counters are
    # meaningful for parallel runs too.  Keep machine-readable stdout
    # clean: the stats line moves to stderr for csv/json on stdout.
    stats = engine.cache_stats()
    stats_line = (
        f"cache: islandizations computed {stats['islandization'].misses}, "
        f"reused {stats['islandization'].hits}; datasets loaded "
        f"{stats['dataset'].misses}; summary rows reused "
        f"{stats['summary'].hits} of {stats['summary'].total}"
    )
    stream = sys.stderr if (args.format != "table" and not args.output) else sys.stdout
    print(f"\n{stats_line}" if stream is sys.stdout else stats_line, file=stream)
    # Fault-recovery events (a pool worker died, a queue worker exited
    # nonzero) degrade performance, never correctness — the rows above
    # are complete either way — but an operator should see them.
    for note in engine.degradations:
        detail = ", ".join(
            f"{key}={value}" for key, value in note.items() if key != "event"
        )
        print(f"degraded: {note['event']} ({detail}) — recovered, "
              f"rows complete", file=stream)
    return 0


def _cmd_cache(args) -> int:
    # default_cache_dir() already prefers $REPRO_CACHE_DIR when set.
    store = DiskStore(args.cache_dir or default_cache_dir())
    if args.repair and args.action != "verify":
        raise ReproError("--repair only applies to cache verify")
    if args.dry_run and args.action != "gc":
        raise ReproError("--dry-run only applies to cache gc")
    if args.force and args.action != "gc":
        raise ReproError("--force only applies to cache gc")
    if args.action == "gc":
        report = store.gc(dry_run=args.dry_run, force=args.force)
        verb = "would remove" if args.dry_run else "removed"
        adopted = "" if report.indexed else (
            " (no reachability index: conservative sweep"
            + (", survivors adopted)" if not args.dry_run else ")")
        )
        print(f"artifact store at {report.root}: "
              f"{report.live} reachable artifacts{adopted}")
        for path in report.removed:
            print(f"  {verb}: {path}")
        print(f"{verb} {len(report.removed)} files "
              f"({report.freed / 1e6:.3f} MB)")
        return 0
    if args.action == "verify":
        report = store.verify(repair=args.repair)
        print(f"artifact store at {report.root}: "
              f"{report.ok} artifacts intact, "
              f"{len(report.orphaned)} orphaned, "
              f"{len(report.corrupt)} corrupt")
        for label, paths in (("orphaned", report.orphaned),
                             ("corrupt", report.corrupt)):
            for path in paths:
                print(f"  {label}: {path}")
        if args.repair:
            print(f"removed {report.removed} files")
        elif not report.clean:
            print("run `repro cache verify --repair` to delete them")
        return 0 if (report.clean or args.repair) else 1
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} artifacts from {store.root}")
        return 0
    if args.action == "evict":
        if args.max_size is None:
            raise ReproError("cache evict needs --max-size (e.g. 500M)")
        removed, freed = store.evict(_parse_size(args.max_size))
        kept = sum(size for _, size in store.entries().values())
        print(f"evicted {removed} artifacts ({freed / 1e6:.3f} MB) from "
              f"{store.root}; {kept / 1e6:.3f} MB kept")
        return 0
    entries = store.entries()
    if not entries:
        print(f"artifact store at {store.root}: empty")
        return 0
    rows = [
        {"kind": kind, "entries": count, "mb": round(size / 1e6, 3)}
        for kind, (count, size) in entries.items()
    ]
    total = sum(size for _, size in entries.values())
    print(render_table(rows, title=f"artifact store at {store.root}"))
    print(f"\ntotal: {sum(c for c, _ in entries.values())} artifacts, "
          f"{total / 1e6:.3f} MB")
    return 0


#: Which ``repro queue`` flags each action consumes; anything set off
#: its default for a non-consuming action raises instead of being
#: silently ignored (same guard idiom as ``repro cache``/``bench``).
_QUEUE_FLAG_ACTIONS = {
    "datasets": ("submit",), "platforms": ("submit",),
    "models": ("submit",), "variant": ("submit",), "scale": ("submit",),
    "seed": ("submit",), "max_attempts": ("submit",),
    "backoff": ("submit",), "locator_backend": ("submit",),
    "partitions": ("submit",), "partition_strategy": ("submit",),
    "consumer_backend": ("submit",), "pipeline": ("submit",),
    "lease": ("submit", "work"), "cache_dir": ("submit", "work"),
    "max_cells": ("work",), "no_wait": ("work",), "timeout": ("work",),
    "format": ("status",),
}

_QUEUE_FLAG_DEFAULTS = {
    "variant": "algo", "seed": 7, "locator_backend": "batched",
    "partitions": 1, "partition_strategy": "separator",
    "consumer_backend": "batched", "pipeline": "streamed",
    "no_wait": False, "format": "table",
}


def _cmd_queue(args) -> int:
    for flag, actions in _QUEUE_FLAG_ACTIONS.items():
        if args.action in actions:
            continue
        if getattr(args, flag) != _QUEUE_FLAG_DEFAULTS.get(flag):
            raise ReproError(
                f"--{flag.replace('_', '-')} only applies to "
                f"repro queue {'/'.join(actions)}"
            )
    path = args.db or default_queue_path()
    if args.action != "submit" and not Path(path).exists():
        # Opening would create an empty queue and e.g. `work` would
        # "drain" it instantly — turn the typo into a clean error.
        raise ReproError(
            f"no queue database at {path} — run `repro queue submit` "
            f"first (or pass the right --db)"
        )

    if args.action == "submit":
        policy = {
            key: value
            for key, value in (("lease_s", args.lease),
                               ("max_attempts", args.max_attempts),
                               ("backoff_s", args.backoff))
            if value is not None
        }
        with ExperimentQueue(path, **policy) as q:
            report = q.submit(
                args.datasets or list(dataset_names()),
                args.platforms or ["igcn", "awb", "hygcn", "sigma"],
                models=args.models or ["gcn"],
                variant=args.variant,
                scale=args.scale,
                seed=args.seed,
                locator=LocatorConfig(**_locator_kwargs(args)),
                consumer=ConsumerConfig(backend=args.consumer_backend,
                                        pipeline=args.pipeline),
                cache_dir=_resolve_cache_dir(args),
            )
        print(f"queue {path}: grid of {len(report.cell_ids)} cells "
              f"({report.added} added, {report.reused} already present)")
        print("drain it with `repro queue work"
              + (f" --db {args.db}`" if args.db else "`")
              + " — as many of them as you like")
        return 0

    if args.action == "work":
        report = work(
            path,
            cache_dir=_resolve_cache_dir(args),
            lease_s=args.lease,
            max_cells=args.max_cells,
            wait=not args.no_wait,
            timeout_s=args.timeout,
        )
        print(f"worker {report.owner}: {report.done} done, "
              f"{report.failed} failed, {report.lost} lost leases")
        return 0 if report.failed == 0 else 1

    with ExperimentQueue(path) as q:
        if args.action == "retry":
            requeued = q.retry()
            print(f"requeued {requeued} quarantined cell(s) with a "
                  f"fresh attempt budget")
            return 0
        if args.action == "reap":
            reaped = q.reap()
            print(f"reaped {len(reaped)} expired lease(s)"
                  + (f": cells {reaped}" if reaped else ""))
            return 0
        status = q.status()
    if args.format == "json":
        print(json.dumps({
            "path": status.path,
            "counts": status.counts,
            "total": status.total,
            "expired": status.expired,
            "drained": status.drained,
            "errors": status.errors,
        }, indent=2))
    else:
        rows = [{"status": name, "cells": status.counts[name]}
                for name in ("pending", "claimed", "done", "error")]
        print(render_table(rows, title=f"queue at {status.path} "
                                       f"({status.total} cells)"))
        if status.expired:
            print(f"\n{status.expired} claimed cell(s) past their lease "
                  f"— the next claim (or `repro queue reap`) requeues "
                  f"them")
        for err in status.errors:
            last = (err["error"] or "").strip().splitlines()
            print(f"  quarantined cell {err['id']} "
                  f"({err['dataset']}/{err['model']}/{err['platform']}, "
                  f"{err['attempts']} attempts)"
                  + (f": {last[-1]}" if last else ""))
        if status.errors:
            print("rerun them with `repro queue retry`")
        elif status.drained:
            print("\nqueue drained: every cell is done")
    return 0 if status.counts["error"] == 0 else 1


def _cmd_bench(args) -> int:
    if args.repeats < 1:
        raise SimulationError(
            f"--repeats must be >= 1 (got {args.repeats})"
        )
    if args.suite not in ("partition", "pincr"):
        # Silently ignoring partition-only knobs would mislead.
        for flag, default in (("partitions", 4), ("workers", None),
                              ("partition_strategy", "separator"),
                              ("graph_dir", None)):
            if getattr(args, flag) != default:
                raise SimulationError(
                    f"--{flag.replace('_', '-')} only applies to the "
                    f"partition and pincr suites"
                )
        if args.suite != "incremental" and args.max_edges is not None:
            raise SimulationError(
                "--max-edges only applies to the partition, incremental "
                "and pincr suites"
            )
    if args.suite not in ("incremental", "pincr") and args.delta_seed != 11:
        raise SimulationError(
            "--delta-seed only applies to the incremental and pincr suites"
        )
    tiers = args.tiers or (
        list(PARTITION_TIERS) if args.suite == "partition"
        else list(DELTA_TIERS) if args.suite == "incremental"
        else list(PINCR_DELTA_TIERS) if args.suite == "pincr"
        else list(BENCH_TIERS)
    )
    if args.suite == "partition":
        record = run_partition_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            c_max=args.cmax,
            partitions=args.partitions,
            workers=args.workers,
            strategy=args.partition_strategy,
            max_edges=args.max_edges,
            graph_dir=args.graph_dir,
            verify=not args.no_verify,
        )
    elif args.suite == "pincr":
        if args.preagg_k != _DEFAULT_PREAGG_K:
            raise SimulationError(
                "--preagg-k configures the consumer scan and only applies "
                "to the consumer and pipeline suites"
            )
        record = run_pincr_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            delta_seed=args.delta_seed,
            c_max=args.cmax,
            partitions=args.partitions,
            workers=args.workers,
            strategy=args.partition_strategy,
            max_edges=args.max_edges,
            graph_dir=args.graph_dir,
            verify=not args.no_verify,
        )
    elif args.suite == "incremental":
        if args.preagg_k != _DEFAULT_PREAGG_K:
            raise SimulationError(
                "--preagg-k configures the consumer scan and only applies "
                "to the consumer and pipeline suites"
            )
        record = run_incremental_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            delta_seed=args.delta_seed,
            c_max=args.cmax,
            max_edges=args.max_edges,
            verify=not args.no_verify,
        )
    elif args.suite == "locator":
        if args.preagg_k != _DEFAULT_PREAGG_K:
            raise SimulationError(
                "--preagg-k configures the consumer scan and only applies "
                "to the consumer and pipeline suites"
            )
        record = run_locator_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            c_max=args.cmax,
            verify=not args.no_verify,
        )
    elif args.suite == "consumer":
        record = run_consumer_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            c_max=args.cmax,
            preagg_k=args.preagg_k,
            verify=not args.no_verify,
        )
    elif args.suite == "event":
        record = run_event_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            c_max=args.cmax,
            preagg_k=args.preagg_k,
            verify=not args.no_verify,
        )
    else:
        record = run_pipeline_bench(
            tiers=tiers,
            repeats=args.repeats,
            seed=args.seed,
            c_max=args.cmax,
            preagg_k=args.preagg_k,
            verify=not args.no_verify,
        )
    if args.suite == "partition":
        rows = [
            {
                "tier": row["tier"],
                "profile": row["profile"],
                "edges": row["edges"],
                "mono_s": row["mono_s"],
                "part_s": row["part_s"],
                "speedup": row["speedup"],
                "mono_rss_mb": row["mono_rss_mb"],
                "part_rss_mb": row["part_rss_mb"],
                "cer_delta": row["quality_delta"]["classified_edge_ratio"],
                "equal_p1": (
                    "-" if row["equal_p1"] is None else str(row["equal_p1"])
                ),
            }
            for row in record["tiers"]
        ]
        title = (
            f"partitioned islandization, {record['config']['partitions']} "
            f"shards x {record['config']['workers']} workers "
            f"(best-of wall clock, fresh processes)"
        )
    elif args.suite == "pincr":
        rows = [
            {
                "delta": row["tier"],
                "edits": row["delta_edges"],
                "update_s": row["update_s"],
                "rerecord_s": row["rerecord_s"],
                "speedup": row["speedup"],
                "dirty_shards": len(row["dirty_shards"]),
                "fallback": str(row["fallback"]),
                "equal": "-" if row["equal"] is None else str(row["equal"]),
            }
            for row in record["tiers"]
        ]
        title = (
            f"shard-routed updates vs full fleet re-record, "
            f"{record['config']['partitions']} shards x "
            f"{record['config']['workers']} workers "
            f"(warm fleet, best-of wall clock)"
        )
    elif args.suite == "incremental":
        rows = [
            {
                "delta": row["tier"],
                "edits": row["delta_edges"],
                "incr_s": row["incr_s"],
                "record_s": row["record_s"],
                "islandize_s": row["islandize_s"],
                "vs_record": row["speedup_vs_record"],
                "vs_scratch": row["speedup_vs_islandize"],
                "dirty": row["dirty_nodes"],
                "fallback": str(row["fallback"]),
                "equal": "-" if row["equal"] is None else str(row["equal"]),
            }
            for row in record["tiers"]
        ]
        title = (
            f"incremental maintenance vs rebuild on a "
            f"{record['graph']['edges']}-entry graph "
            f"(best-of wall clock)"
        )
    elif args.suite == "pipeline":
        rows = [
            {
                "tier": row["tier"],
                "rounds": row["rounds"],
                "staged_cyc": row["staged_cycles"],
                "streamed_cyc": row["streamed_cycles"],
                "overlap_win": row["overlap_win"],
                "staged_s": row["staged_s"],
                "streamed_s": row["streamed_s"],
                "equal": "-" if row["equal"] is None else str(row["equal"]),
            }
            for row in record["tiers"]
        ]
        title = "pipeline overlap: staged vs streamed (modelled cycles)"
    elif args.suite == "event":
        rows = [
            {
                "tier": row["tier"],
                "streamed_cyc": row["streamed_cycles"],
                "event_cyc": row["event_cycles"],
                "staged_cyc": row["staged_cycles"],
                "overlap_win": row["overlap_win"],
                "p50_us": row["p50_us"],
                "p99_us": row["p99_us"],
                "event_s": row["event_s"],
                "ok": (
                    "-"
                    if row["sandwich"] is None
                    else str(
                        row["sandwich"]
                        and row["deterministic"]
                        and row["equal"]
                    )
                ),
            }
            for row in record["tiers"]
        ]
        title = (
            "event pipeline: discrete-event makespan inside its "
            "streamed/staged sandwich"
        )
    else:
        rows = [
            {
                "tier": row["tier"],
                "nodes": row["nodes"],
                "edges": row["edges"],
                "scalar_s": row["scalar_s"],
                "batched_s": row["batched_s"],
                "speedup": row["speedup"],
                "equal": "-" if row["equal"] is None else str(row["equal"]),
            }
            for row in record["tiers"]
        ]
        title = f"{args.suite} backend scaling (best-of wall clock)"
    print(render_table(rows, title=title))
    output = args.output or f"BENCH_{args.suite}.json"
    if args.output is None and Path(output).exists():
        # Partial-tier smoke runs must not clobber a committed
        # full-ladder record by accident; an explicit --output opts in.
        try:
            existing = json.loads(Path(output).read_text())
        except (OSError, ValueError):
            existing = {}
        if len(existing.get("tiers", ())) > len(record["tiers"]):
            print(f"error: {output} holds a {len(existing['tiers'])}-tier "
                  f"record; pass --output to overwrite it with "
                  f"{len(record['tiers'])} tiers", file=sys.stderr)
            return 2
    # Write the record first: on a divergence it is the evidence.
    Path(output).write_text(json.dumps(record, indent=2) + "\n")
    equal_key = "equal_p1" if args.suite == "partition" else "equal"
    failed = any(row[equal_key] is False for row in record["tiers"])
    if args.suite == "event":
        # The event contract is wider than cross-mode equality: the
        # sandwich bound and trace determinism gate the record too.
        failed = failed or any(
            row["sandwich"] is False or row["deterministic"] is False
            for row in record["tiers"]
        )
    if failed:
        what = (
            "the partitions=1 oracle and the monolithic locator"
            if args.suite == "partition"
            else "the incremental update and the from-scratch locator"
            if args.suite == "incremental"
            else "the shard-routed update and the fleet re-record"
            if args.suite == "pincr"
            else "pipeline modes" if args.suite == "pipeline"
            else "the event contract (sandwich/determinism/equality)"
            if args.suite == "event"
            else "backends"
        )
        print(f"error: {what} diverged — see rows above and "
              f"{output}", file=sys.stderr)
        return 1
    if args.suite in ("incremental", "pincr"):
        baseline = ("full fleet re-record" if args.suite == "pincr"
                    else "recording rebuild")
        if record["headline_tier"] is None:
            print(f"\nwrote {output}: no delta tier beats the {baseline}")
        else:
            cross = record["crossover_delta"] or "beyond the ladder"
            print(f"\nwrote {output}: {record['headline_tier']}-edit delta "
                  f"speedup {record['headline_speedup']}x vs {baseline} "
                  f"(crossover at {cross})")
    else:
        print(f"\nwrote {output}: largest tier {record['largest_tier']} "
              f"speedup {record['largest_speedup']}x")
    return 0


def render_cli_docs() -> str:
    """Render docs/cli.md from the argparse tree (deterministically).

    Each subcommand contributes its ``format_help()`` block, wrapped at
    a fixed width so the output is identical regardless of the
    generating terminal — ``repro docs cli --check`` diffs against the
    committed file byte-for-byte.
    """
    previous = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "79"
    try:
        parser = build_parser()
        sub_action = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        lines = [
            "# CLI reference",
            "",
            "<!-- Generated by `python -m repro docs cli`; do not edit by",
            "hand.  CI's docs-check job fails when this file is stale. -->",
            "",
            "All commands run as `python -m repro <command>` (or plain",
            "`repro <command>` after `pip install -e .`).  See",
            "[architecture.md](architecture.md) for what each layer does and",
            "[benchmarks.md](benchmarks.md) for the `bench` suites' records.",
            "",
        ]
        helps = {
            choice.dest: choice.help or ""
            for choice in sub_action._choices_actions
        }
        for name, command in sub_action.choices.items():
            lines.append(f"## `repro {name}`")
            lines.append("")
            summary = helps.get(name, "")
            if summary:
                lines.append(summary[0].upper() + summary[1:] + ".")
                lines.append("")
            lines.append("```text")
            lines.append(command.format_help().rstrip())
            lines.append("```")
            lines.append("")
        return "\n".join(lines)
    finally:
        if previous is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = previous


def _cmd_docs(args) -> int:
    rendered = render_cli_docs()
    path = Path(args.output)
    if args.check:
        current = path.read_text() if path.exists() else None
        if current != rendered:
            print(f"error: {path} is stale — regenerate it with "
                  f"`python -m repro docs cli`", file=sys.stderr)
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rendered)
    print(f"wrote {path}")
    return 0


def _cmd_spy(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    base = ds.graph.without_self_loops()
    print(spy(base, resolution=args.resolution,
              title=f"--- {ds.name}: original ---"))
    result = IGCNAccelerator().islandize(ds.graph)
    reordered = base.permute(result.island_permutation())
    print()
    print(spy(reordered, resolution=args.resolution, anti_diagonal=True,
              title=f"--- {ds.name}: islandized ({result.num_rounds} rounds) ---"))
    return 0


def _cmd_experiments(args) -> int:
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is not None:
        shared_engine(cache_dir)
    registry = {
        "table1": experiment_table1,
        "table2": experiment_table2,
        "fig9": experiment_fig9,
        "fig10": experiment_fig10,
        "fig11": experiment_fig11,
        "fig12": experiment_fig12,
        "fig13": experiment_fig13,
        "fig14": experiment_fig14,
    }
    selected = [args.only] if args.only else list(registry)
    for name in selected:
        print(registry[name]().render())
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (:class:`repro.errors.ReproError`) print as clean
    one-line messages with exit code 2 instead of tracebacks.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "islandize": _cmd_islandize,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "spy": _cmd_spy,
        "experiments": _cmd_experiments,
        "cache": _cmd_cache,
        "queue": _cmd_queue,
        "docs": _cmd_docs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Filesystem trouble (unwritable --output, read-only cache dir)
        # is an environment problem, not a bug: no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
