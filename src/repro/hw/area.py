"""Area model: Figure 11's ALM-normalised resource breakdown.

The paper normalises LUTs/FFs/DSPs to Adaptive Logic Modules (ALMs) and
reports the breakdown of an I-GCN instance with 4K MACs and 64 TP-BFS
engines: Island Locator ≈ 34 %, Island Consumer ≈ 66 %.

Per-unit ALM costs below are budget figures chosen to (a) land the
published 34/66 split at the published instance size and (b) sum to a
design that fits a Stratix 10 SX (~933 k ALMs) — the same kind of
engineering estimate the paper's own normalisation performs.  The value
of the model is that the split *shifts correctly* when the instance is
resized (more BFS engines grow the locator share, more MACs grow the
consumer share), which the ablation benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AreaBreakdown", "AreaModel"]

# Per-unit ALM costs (budget estimates; see module docstring).
ALM_PER_MAC = 110               # fp32 MAC datapath, DSP normalised to ALMs
ALM_PER_BFS_ENGINE = 4200       # FSM + LVT + bitmap buffer
ALM_PER_DEGREE_FIFO = 2000      # loop-back FIFO + island filter + comparator
ALM_TASK_GENERATOR = 12000      # adjacency fetcher + task queues
ALM_LOCATOR_MISC = 9000         # PR/CR island tables, control
ALM_PER_PE_CONTROL = 5000       # scan window FSMs, CASE/scheduler
ALM_HUB_CACHES = 60000          # HUB XW cache + DHUB-PRC banks
ALM_RING_COLLECTOR = 40000      # ring switches + island collector


@dataclass(frozen=True)
class AreaBreakdown:
    """ALM usage per module."""

    modules: dict[str, int]

    @property
    def total(self) -> int:
        """Total ALMs."""
        return sum(self.modules.values())

    def fractions(self) -> dict[str, float]:
        """Module shares of the total."""
        total = self.total
        return {name: alm / total for name, alm in self.modules.items()}

    @property
    def locator_fraction(self) -> float:
        """Island Locator share (paper: ~34 %)."""
        locator = ("hub_detector", "task_generator", "tp_bfs_engines", "locator_misc")
        return sum(self.modules.get(m, 0) for m in locator) / self.total

    @property
    def consumer_fraction(self) -> float:
        """Island Consumer share (paper: ~66 %)."""
        return 1.0 - self.locator_fraction


@dataclass(frozen=True)
class AreaModel:
    """Compose an ALM breakdown from an instance's dimensions."""

    num_macs: int = 4096
    num_bfs_engines: int = 64
    num_degree_fifos: int = 8
    num_pes: int = 8

    def breakdown(self) -> AreaBreakdown:
        """ALMs per module for this instance."""
        return AreaBreakdown(
            modules={
                "hub_detector": self.num_degree_fifos * ALM_PER_DEGREE_FIFO,
                "task_generator": ALM_TASK_GENERATOR,
                "tp_bfs_engines": self.num_bfs_engines * ALM_PER_BFS_ENGINE,
                "locator_misc": ALM_LOCATOR_MISC,
                "mac_array": self.num_macs * ALM_PER_MAC,
                "pe_control": self.num_pes * ALM_PER_PE_CONTROL,
                "hub_caches": ALM_HUB_CACHES,
                "ring_collector": ALM_RING_COLLECTOR,
            }
        )
