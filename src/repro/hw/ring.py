"""Ring network with in-network reduction (§3.3.2).

PEs sit on a unidirectional ring; each owns one bank of the distributed
HUB partial-result cache (DHUB-PRC).  When a PE finishes an island it
emits the hubs' partial sums toward their home banks.  Each ring entry
switch compares the hub id arriving from its left neighbour with the
one injected locally and *reduces in the network* when they match, so
hot hubs do not multiply ring traffic.

This model routes messages hop-by-hop (so hop counts and reduction
opportunities are exact for a given emission order) without modelling
per-cycle contention; ``cycles_estimate`` converts hop counts into an
approximate cycle cost assuming all links transfer in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RingStats", "RingNetwork"]


@dataclass
class RingStats:
    """Counters of ring activity."""

    messages_injected: int = 0
    hops_travelled: int = 0
    in_network_reductions: int = 0
    bank_updates: int = 0

    def cycles_estimate(self, num_pes: int) -> float:
        """Approximate cycles: hops divided across the parallel links."""
        if num_pes <= 0:
            return 0.0
        return self.hops_travelled / num_pes


@dataclass
class RingNetwork:
    """Hub partial-result routing with per-entry reduction."""

    num_pes: int
    stats: RingStats = field(default_factory=RingStats)
    # Per-link in-flight hub ids from the previous batch, used to find
    # reduction opportunities between consecutive injections.
    _in_flight: dict[int, set[int]] = field(default_factory=dict)

    def home_bank(self, hub_id: int) -> int:
        """DHUB-PRC bank owning ``hub_id`` (fixed at first appearance)."""
        return hub_id % self.num_pes

    def send(self, src_pe: int, hub_id: int) -> int:
        """Route one partial result from ``src_pe`` to the hub's bank.

        Returns the number of hops travelled.  A message that overtakes
        another in-flight update for the *same hub* on its first link is
        merged there (in-network reduction) and travels no further.
        """
        if not 0 <= src_pe < self.num_pes:
            raise ValueError(f"src_pe {src_pe} out of range")
        dst = self.home_bank(hub_id)
        self.stats.messages_injected += 1
        link = src_pe
        in_flight_here = self._in_flight.setdefault(link, set())
        if hub_id in in_flight_here:
            self.stats.in_network_reductions += 1
            return 0
        in_flight_here.add(hub_id)  # stays pending until drain()
        hops = (dst - src_pe) % self.num_pes
        if hops == 0:
            # Local bank: no ring traversal.
            self.stats.bank_updates += 1
            return 0
        self.stats.hops_travelled += hops
        self.stats.bank_updates += 1
        return hops

    def send_many(self, src_pe: int, hub_ids) -> int:
        """Route a batch of partial results from one PE, vectorized.

        Counter-equivalent to calling :meth:`send` once per id in
        order: duplicates (within the batch or against updates already
        in flight on this link) reduce in the network, the rest travel
        ``(home - src) % num_pes`` hops.  Returns total hops.
        """
        if not 0 <= src_pe < self.num_pes:
            raise ValueError(f"src_pe {src_pe} out of range")
        ids = np.asarray(hub_ids, dtype=np.int64)
        self.stats.messages_injected += len(ids)
        in_flight_here = self._in_flight.setdefault(src_pe, set())
        first = np.zeros(len(ids), dtype=bool)
        first[np.unique(ids, return_index=True)[1]] = True
        if in_flight_here:
            first &= ~np.isin(ids, np.fromiter(in_flight_here, dtype=np.int64))
        new_ids = ids[first]
        self.stats.in_network_reductions += len(ids) - len(new_ids)
        in_flight_here.update(new_ids.tolist())
        hops = (new_ids % self.num_pes - src_pe) % self.num_pes
        total_hops = int(hops.sum())
        self.stats.hops_travelled += total_hops
        self.stats.bank_updates += len(new_ids)
        return total_hops

    def send_batches(self, src_pes, hub_ids, offsets) -> int:
        """Route many per-PE batches, each followed by a drain, in bulk.

        Counter-equivalent to ``send_many(src_pes[b],
        hub_ids[offsets[b]:offsets[b+1]]); drain()`` for every batch
        ``b`` in order: duplicates *within* a batch reduce in the
        network, nothing carries over between batches, and the final
        in-flight state is empty (post-drain).  Returns total hops.

        The vectorized path requires an empty in-flight state (the
        invariant the per-island consumer loop maintains); live
        in-flight entries fall back to the sequential calls so the
        first batch interacts with them exactly.
        """
        src_pes = np.asarray(src_pes, dtype=np.int64)
        hub_ids = np.asarray(hub_ids, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if self._in_flight:
            total = 0
            for b in range(len(src_pes)):
                total += self.send_many(
                    int(src_pes[b]), hub_ids[offsets[b]:offsets[b + 1]]
                )
                self.drain()
            return total
        if len(src_pes) and not (
            (0 <= src_pes).all() and (src_pes < self.num_pes).all()
        ):
            bad = src_pes[(src_pes < 0) | (src_pes >= self.num_pes)][0]
            raise ValueError(f"src_pe {int(bad)} out of range")
        m = len(hub_ids)
        self.stats.messages_injected += m
        if m == 0:
            return 0
        counts = np.diff(offsets)
        batch_of = np.repeat(np.arange(len(src_pes), dtype=np.int64), counts)
        span = int(hub_ids.max()) + 1
        uniq = np.unique(batch_of * span + hub_ids)
        self.stats.in_network_reductions += m - len(uniq)
        src = src_pes[uniq // span]
        hops = (uniq % span % self.num_pes - src) % self.num_pes
        total_hops = int(hops.sum())
        self.stats.hops_travelled += total_hops
        self.stats.bank_updates += len(uniq)
        return total_hops

    def drain(self) -> None:
        """Clear in-flight state between islands/batches."""
        self._in_flight.clear()
