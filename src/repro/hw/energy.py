"""Energy model: Table 2's Energy Efficiency (Graph/kJ).

Total inference energy is modelled as

``E = P_total * latency  +  macs * e_mac  +  sram_bytes * e_sram +
dram_bytes * e_dram``

with the board-level term ``P_total * latency`` dominating, matching
what Table 2 implies (back-solving the paper's EE against its latency
gives a near-constant ~110 W power draw for both I-GCN and AWB-GCN;
DESIGN.md §6).  Energy efficiency is then ``graphs / kJ = 1000 / E_J``
per single-graph inference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import HardwareConfig

__all__ = ["EnergyReport", "estimate_energy"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one inference."""

    static_j: float
    mac_j: float
    sram_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        """Total joules per inference."""
        return self.static_j + self.mac_j + self.sram_j + self.dram_j

    @property
    def graphs_per_kj(self) -> float:
        """Table 2's EE metric: inferences per kilojoule."""
        if self.total_j == 0:
            return float("inf")
        return 1000.0 / self.total_j


def estimate_energy(
    hw: HardwareConfig,
    *,
    latency_s: float,
    macs: float,
    dram_bytes: float,
    sram_bytes: float | None = None,
) -> EnergyReport:
    """Estimate the energy of one inference.

    ``sram_bytes`` defaults to 3 accesses of 4 bytes per MAC (two reads
    and one write of the accumulator datapath).
    """
    if sram_bytes is None:
        sram_bytes = macs * 12.0
    return EnergyReport(
        static_j=hw.total_power_w * latency_s,
        mac_j=macs * hw.energy_per_mac_pj * 1e-12,
        sram_j=sram_bytes * hw.energy_per_sram_byte_pj * 1e-12,
        dram_j=dram_bytes * hw.energy_per_dram_byte_pj * 1e-12,
    )
