"""Analytic cycle/latency model.

The latency of a phase is the slower of its compute and memory streams
(the paper's architectures all double-buffer DRAM transfers behind the
MAC pipeline), plus explicit serial overheads:

``cycles = max(macs / (num_macs * util), bytes / bytes_per_cycle) + overhead``

For I-GCN the Island Locator runs concurrently with the Island Consumer
(§3.1: "I-GCN overlaps graph restructuring and graph processing"), so
its cycles only matter if the locator is the slower pipe — which the
model captures with a ``max``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import HardwareConfig

__all__ = ["PhaseCycles", "LatencyModel", "compute_cycles", "memory_cycles"]


def compute_cycles(macs: float, hw: HardwareConfig, *, utilization: float | None = None) -> float:
    """Cycles to retire ``macs`` multiply-accumulates."""
    util = hw.compute_utilization if utilization is None else utilization
    return macs / (hw.num_macs * util)


def memory_cycles(num_bytes: float, hw: HardwareConfig) -> float:
    """Cycles to stream ``num_bytes`` at full off-chip bandwidth."""
    return num_bytes / hw.bytes_per_cycle


@dataclass(frozen=True)
class PhaseCycles:
    """Cycle breakdown of one pipeline phase."""

    name: str
    compute: float
    memory: float
    overhead: float = 0.0

    @property
    def total(self) -> float:
        """max(compute, memory) + overhead: double-buffered phase time."""
        return max(self.compute, self.memory) + self.overhead

    @property
    def bound(self) -> str:
        """Which stream dominates this phase."""
        return "compute" if self.compute >= self.memory else "memory"


@dataclass(frozen=True)
class LatencyModel:
    """Combine phases into an end-to-end latency."""

    hw: HardwareConfig

    def phase(self, name: str, *, macs: float = 0.0, dram_bytes: float = 0.0,
              overhead_cycles: float = 0.0,
              utilization: float | None = None) -> PhaseCycles:
        """Build one phase from op and byte counts."""
        return PhaseCycles(
            name=name,
            compute=compute_cycles(macs, self.hw, utilization=utilization),
            memory=memory_cycles(dram_bytes, self.hw),
            overhead=overhead_cycles,
        )

    def overlapped(self, *phases: PhaseCycles) -> float:
        """Cycles of fully concurrent phases: the slowest one wins."""
        return max((p.total for p in phases), default=0.0)

    def sequential(self, *phases: PhaseCycles) -> float:
        """Cycles of strictly serial phases."""
        return sum(p.total for p in phases)

    def to_microseconds(self, cycles: float) -> float:
        """Convert cycles to microseconds at the configured frequency."""
        return self.hw.cycles_to_us(cycles)
