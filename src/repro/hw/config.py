"""Hardware envelope and calibration constants.

The paper's evaluation platform (§4.1/§4.6.2): an Intel Stratix 10 SX
FPGA at 330 MHz with 4096 floating-point MAC units — deliberately
matched to AWB-GCN's configuration for fairness.  This module is the
single home of every physical constant the analytic models use, with
the provenance of each value documented, so the performance model is
auditable and tunable.

Calibration notes
-----------------
* ``consumer_utilization`` (0.80) back-solved from the paper's Cora
  GCN-algo latency: ~1.4 MMACs / 4096 / 330 MHz = 1.04 µs ideal vs
  1.3 µs reported.
* ``total_power_w`` back-solved from Table 2's energy efficiency:
  EE[Graph/kJ] = 1000 / (P × latency) gives ≈ 105-115 W for I-GCN.
* Off-chip bandwidth 76.8 GB/s = 4-channel DDR4-2400, the Stratix 10 SX
  dev-kit configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["HardwareConfig", "IGCN_DEFAULT"]


@dataclass(frozen=True)
class HardwareConfig:
    """Physical envelope of an accelerator instance."""

    name: str = "i-gcn-stratix10"
    num_macs: int = 4096
    frequency_hz: float = 330e6
    offchip_bandwidth_bps: float = 76.8e9
    # On-chip capacities (bytes).
    weight_buffer_bytes: int = 4 * 1024 * 1024
    hub_xw_cache_bytes: int = 2 * 1024 * 1024
    hub_prc_bytes: int = 2 * 1024 * 1024
    feature_buffer_bytes: int = 1 * 1024 * 1024
    # Total usable on-chip SRAM (Stratix 10 SX: ~28 MB M20K + eSRAM).
    # Traffic *counting* follows §4.6.1's all-off-chip convention, but
    # the *latency* model lets read-mostly operands (features,
    # adjacency, weights) reside on-chip up to this capacity — the
    # paper's own practical-configuration note.
    onchip_capacity_bytes: int = 24 * 1024 * 1024
    # Utilisation of the MAC array when the pipeline is full.
    compute_utilization: float = 0.80
    # Energy constants (picojoules); FPGA-class fp32 datapath.
    energy_per_mac_pj: float = 3.5
    energy_per_sram_byte_pj: float = 0.6
    energy_per_dram_byte_pj: float = 25.0
    total_power_w: float = 110.0

    def __post_init__(self) -> None:
        if self.num_macs < 1:
            raise ConfigError("num_macs must be >= 1")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.offchip_bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if not 0.0 < self.compute_utilization <= 1.0:
            raise ConfigError("compute_utilization must be in (0, 1]")

    @property
    def bytes_per_cycle(self) -> float:
        """Off-chip bytes deliverable per clock cycle."""
        return self.offchip_bandwidth_bps / self.frequency_hz

    @property
    def macs_per_cycle(self) -> float:
        """Effective MACs retired per cycle at the calibrated utilisation."""
        return self.num_macs * self.compute_utilization

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        return cycles / self.frequency_hz

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds."""
        return self.cycles_to_seconds(cycles) * 1e6


#: The configuration used throughout the paper's evaluation.
IGCN_DEFAULT = HardwareConfig()
