"""Hardware models: envelope, traffic, cycles, energy, area, ring."""

from repro.hw.area import AreaBreakdown, AreaModel
from repro.hw.config import IGCN_DEFAULT, HardwareConfig
from repro.hw.cycles import LatencyModel, PhaseCycles, compute_cycles, memory_cycles
from repro.hw.energy import EnergyReport, estimate_energy
from repro.hw.memory import CacheModel, TrafficMeter
from repro.hw.ring import RingNetwork, RingStats

__all__ = [
    "HardwareConfig",
    "IGCN_DEFAULT",
    "TrafficMeter",
    "CacheModel",
    "LatencyModel",
    "PhaseCycles",
    "compute_cycles",
    "memory_cycles",
    "EnergyReport",
    "estimate_energy",
    "AreaBreakdown",
    "AreaModel",
    "RingNetwork",
    "RingStats",
]
