"""Off-chip traffic accounting and on-chip buffer models.

:class:`TrafficMeter` is the ledger every simulator writes its DRAM
accesses into, broken down by traffic class so Figure 14(A)'s
normalised off-chip access comparison can be regenerated and explained.
The paper's counting convention (§4.6.1) applies: adjacency and input
features start off-chip; anything served from an on-chip structure is
free once loaded.

:class:`CacheModel` is a deliberately simple capacity/miss-ratio model
(no timing): when a working set exceeds its capacity, the excess
fraction of accesses spills to DRAM.  That is the granularity at which
the paper itself reasons ("hubs' associated data will likely be stored
on-chip and sufficiently reused").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrafficMeter", "CacheModel", "effective_offchip_bytes"]

#: Read-mostly traffic classes eligible for on-chip residence in the
#: latency model (the paper's §4.6.1 practical configuration).
#: ``hidden-results``/``intermediate`` are inter-layer tensors that stay
#: on-chip when they fit — only final results must stream out.
RESIDENT_CATEGORIES = (
    "features",
    "adjacency",
    "weights",
    "hidden-results",
    "intermediate",
)


def effective_offchip_bytes(
    meter: "TrafficMeter",
    capacity_bytes: int,
    *,
    resident_categories: tuple[str, ...] = RESIDENT_CATEGORIES,
) -> int:
    """Bytes that must actually cross the DRAM pins for latency purposes.

    Up to ``capacity_bytes`` of the resident-eligible categories stay
    on-chip; everything else (final result writes, spills) always pays
    bandwidth.
    """
    resident = sum(
        meter.reads.get(cat, 0) + meter.writes.get(cat, 0)
        for cat in resident_categories
    )
    discount = min(capacity_bytes, resident)
    return max(0, meter.total_bytes - discount)


@dataclass
class TrafficMeter:
    """Byte ledger for one simulated inference."""

    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)

    def read(self, category: str, num_bytes: int) -> None:
        """Record ``num_bytes`` read from DRAM under ``category``."""
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.reads[category] = self.reads.get(category, 0) + int(num_bytes)

    def write(self, category: str, num_bytes: int) -> None:
        """Record ``num_bytes`` written to DRAM under ``category``."""
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.writes[category] = self.writes.get(category, 0) + int(num_bytes)

    @property
    def total_read_bytes(self) -> int:
        """All DRAM reads."""
        return sum(self.reads.values())

    @property
    def total_write_bytes(self) -> int:
        """All DRAM writes."""
        return sum(self.writes.values())

    @property
    def total_bytes(self) -> int:
        """All DRAM traffic."""
        return self.total_read_bytes + self.total_write_bytes

    def breakdown(self) -> dict[str, int]:
        """Read+write bytes per category (sorted descending)."""
        merged: dict[str, int] = {}
        for src in (self.reads, self.writes):
            for key, val in src.items():
                merged[key] = merged.get(key, 0) + val
        return dict(sorted(merged.items(), key=lambda kv: -kv[1]))

    def merge(self, other: "TrafficMeter") -> None:
        """Fold another meter's counts into this one."""
        for key, val in other.reads.items():
            self.reads[key] = self.reads.get(key, 0) + val
        for key, val in other.writes.items():
            self.writes[key] = self.writes.get(key, 0) + val


@dataclass
class CacheModel:
    """Capacity/miss-fraction cache model.

    ``miss_ratio`` is 0 while the resident set fits, then grows as the
    uncovered fraction of the resident set — the steady-state hit rate
    of a uniformly reused working set under any stack-replacement
    policy.
    """

    name: str
    capacity_bytes: int
    resident_bytes: int = 0
    accesses: int = 0
    misses: float = 0.0

    def fit(self, resident_bytes: int) -> None:
        """Declare the resident working set size."""
        if resident_bytes < 0:
            raise ValueError("resident set must be non-negative")
        self.resident_bytes = int(resident_bytes)

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses expected to spill to DRAM."""
        if self.resident_bytes <= self.capacity_bytes or self.resident_bytes == 0:
            return 0.0
        return 1.0 - self.capacity_bytes / self.resident_bytes

    def access(self, count: int = 1, *, bytes_per_access: int = 0,
               meter: TrafficMeter | None = None, category: str = "") -> float:
        """Record ``count`` accesses; returns DRAM bytes incurred.

        When a meter is supplied the spilled bytes are charged to it.
        """
        if count < 0:
            raise ValueError("access count must be non-negative")
        self.accesses += count
        missed = count * self.miss_ratio
        self.misses += missed
        spilled = int(round(missed * bytes_per_access))
        if meter is not None and spilled > 0:
            meter.read(category or self.name, spilled)
        return float(spilled)

    def access_batch(self, counts, *, bytes_per_access: int = 0,
                     meter: TrafficMeter | None = None,
                     category: str = "") -> float:
        """Record many :meth:`access` calls at once.

        ``counts`` is an array of per-call access counts.  ``accesses``
        and the spilled bytes are identical to the sequential loop: the
        bytes are rounded *per call* — ``round((count * miss_ratio) *
        bytes_per_access)`` each — so a meter charged by the batch
        reads the same total as one charged call-by-call (``np.rint``
        and Python's ``round`` share round-half-to-even).  Only the
        float ``misses`` diagnostic is summed in a different order and
        may differ from the loop in its last ulps; nothing derives
        from it.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ValueError("access count must be non-negative")
        self.accesses += int(counts.sum())
        ratio = self.miss_ratio
        if ratio == 0.0 or counts.size == 0:
            return 0.0
        missed = counts.astype(np.float64) * ratio
        self.misses += float(missed.sum())
        spilled = int(np.rint(missed * bytes_per_access).sum())
        if meter is not None and spilled > 0:
            meter.read(category or self.name, spilled)
        return float(spilled)

    def access_uniform(self, num_calls: int, *, bytes_per_access: int = 0,
                       meter: TrafficMeter | None = None,
                       category: str = "") -> float:
        """Record ``num_calls`` single accesses in O(1).

        Every call has count 1, so each spills the same
        ``round(miss_ratio * bytes_per_access)`` bytes — the per-call
        rounding of :meth:`access` multiplied out instead of looped
        (the hub caches' bulk-update paths depend on this parity for
        ``accesses`` and meter bytes).  As in :meth:`access_batch`, the
        float ``misses`` diagnostic may differ from a literal loop in
        its last ulps.
        """
        if num_calls < 0:
            raise ValueError("access count must be non-negative")
        self.accesses += num_calls
        ratio = self.miss_ratio
        if ratio == 0.0 or num_calls == 0:
            return 0.0
        self.misses += num_calls * ratio
        spilled = num_calls * int(round(ratio * bytes_per_access))
        if meter is not None and spilled > 0:
            meter.read(category or self.name, spilled)
        return float(spilled)
