"""GNN model configurations.

The paper evaluates three model families (§4.1):

* **GCN** — 2 layers.  "algo" variant uses the original Kipf & Welling
  hidden width (16); "Hy" variant uses HyGCN's 128 hidden channels.
* **GraphSage** — 2 layers, mean aggregator; "algo" uses the original
  paper's 128 hidden units, "Hy" uses 128 as well (same by accident of
  the original configuration).
* **GIN** — 3 layers, sum aggregator with (1+eps) self weighting;
  evaluated with HyGCN's configuration (64 hidden).

A model here is a stack of :class:`LayerSpec` plus an aggregation
normalisation kind.  All three families fit the paper's Equation 1
abstraction ``X' = sigma(A_hat X W)`` with a per-family ``A_hat``; see
``repro.models.reference.NORMALIZATIONS``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "LayerSpec",
    "ModelConfig",
    "gcn_model",
    "graphsage_model",
    "gin_model",
    "build_model",
    "MODEL_FAMILIES",
]

#: Aggregation kinds understood by the reference and the accelerator.
AGGREGATIONS = ("gcn-sym", "sage-mean", "gin-sum")


@dataclass(frozen=True)
class LayerSpec:
    """One GraphCONV layer: dims and activation."""

    in_dim: int
    out_dim: int
    activation: str = "relu"  # "relu" | "none"

    def __post_init__(self) -> None:
        if self.in_dim <= 0 or self.out_dim <= 0:
            raise ConfigError("layer dimensions must be positive")
        if self.activation not in ("relu", "none"):
            raise ConfigError(f"unknown activation {self.activation!r}")


@dataclass(frozen=True)
class ModelConfig:
    """A full GNN: ordered layers + aggregation normalisation."""

    name: str
    aggregation: str
    layers: tuple[LayerSpec, ...]
    gin_eps: float = 0.0

    def __post_init__(self) -> None:
        if self.aggregation not in AGGREGATIONS:
            raise ConfigError(
                f"unknown aggregation {self.aggregation!r}; pick from {AGGREGATIONS}"
            )
        if not self.layers:
            raise ConfigError("a model needs at least one layer")
        for prev, nxt in zip(self.layers, self.layers[1:]):
            if prev.out_dim != nxt.in_dim:
                raise ConfigError(
                    f"layer dims mismatch: {prev.out_dim} -> {nxt.in_dim}"
                )

    @property
    def num_layers(self) -> int:
        """Number of GraphCONV layers."""
        return len(self.layers)

    @property
    def input_dim(self) -> int:
        """Input feature width."""
        return self.layers[0].in_dim

    @property
    def output_dim(self) -> int:
        """Output (class) width."""
        return self.layers[-1].out_dim

    def layer_dims(self) -> list[tuple[int, int]]:
        """(in, out) for each layer, in order."""
        return [(layer.in_dim, layer.out_dim) for layer in self.layers]


def _stack(name: str, aggregation: str, dims: list[int], *, gin_eps: float = 0.0) -> ModelConfig:
    layers = []
    for i, (d_in, d_out) in enumerate(zip(dims, dims[1:])):
        activation = "relu" if i < len(dims) - 2 else "none"
        layers.append(LayerSpec(d_in, d_out, activation))
    return ModelConfig(name=name, aggregation=aggregation, layers=tuple(layers), gin_eps=gin_eps)


def gcn_model(num_features: int, num_classes: int, *, variant: str = "algo") -> ModelConfig:
    """2-layer GCN; ``variant`` is ``"algo"`` (hidden 16) or ``"hy"`` (128)."""
    hidden = {"algo": 16, "hy": 128}.get(variant)
    if hidden is None:
        raise ConfigError(f"unknown GCN variant {variant!r}")
    return _stack(f"gcn-{variant}", "gcn-sym", [num_features, hidden, num_classes])


def graphsage_model(num_features: int, num_classes: int, *, variant: str = "algo") -> ModelConfig:
    """2-layer GraphSage (mean aggregator); hidden 128 in both variants."""
    hidden = {"algo": 128, "hy": 128}.get(variant)
    if hidden is None:
        raise ConfigError(f"unknown GraphSage variant {variant!r}")
    return _stack(f"gs-{variant}", "sage-mean", [num_features, hidden, num_classes])


def gin_model(num_features: int, num_classes: int, *, hidden: int = 64, eps: float = 0.1) -> ModelConfig:
    """3-layer GIN (sum aggregator with (1+eps) self weight)."""
    return _stack(
        "gin", "gin-sum", [num_features, hidden, hidden, num_classes], gin_eps=eps
    )


MODEL_FAMILIES = {
    "gcn": gcn_model,
    "graphsage": graphsage_model,
    "gin": gin_model,
}


def build_model(family: str, num_features: int, num_classes: int, **kwargs) -> ModelConfig:
    """Build a model by family name (``gcn``/``graphsage``/``gin``)."""
    try:
        factory = MODEL_FAMILIES[family]
    except KeyError:
        raise ConfigError(
            f"unknown model family {family!r}; pick from {sorted(MODEL_FAMILIES)}"
        ) from None
    return factory(num_features, num_classes, **kwargs)
