"""Reference GNN forward pass (ground truth for the simulators).

Implements Equation 1 of the paper, ``X(l+1) = sigma(A_hat X(l) W(l))``,
directly with scipy sparse algebra.  The accelerator simulators must
produce numerically identical results (up to floating-point reorder
noise) — the losslessness of islandization and redundancy removal is
*tested* against this module.

Normalisation factorisation
---------------------------
I-GCN's shared-neighbour reuse requires the contribution of node ``u``
to target ``v`` to be expressible as ``b_v * (a_u * xw_u)``: a source
scale applied once during combination, and a target scale applied once
after aggregation.  Each supported aggregation factorises exactly:

======== ===================== ============== ============== ===========
kind     A_hat                 a_u (source)   b_v (target)   self edge
======== ===================== ============== ============== ===========
gcn-sym  D^-1/2 (A+I) D^-1/2   dhat_u^-1/2    dhat_v^-1/2    via A+I
sage-mean D^-1 (A+I)           1              1/dhat_v       via A+I
gin-sum  A + (1+eps) I         1              1              explicit
======== ===================== ============== ============== ===========

where ``dhat`` is the degree of ``A+I``.  GIN's self edge carries a
different weight, so it is applied as a separate per-node axpy rather
than as part of the symmetric edge set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.models.configs import ModelConfig

__all__ = [
    "NormalizationSpec",
    "normalization_for",
    "normalized_adjacency",
    "init_weights",
    "reference_layer",
    "reference_forward",
]


@dataclass(frozen=True)
class NormalizationSpec:
    """Factorised edge weighting for one aggregation kind.

    ``source_scale``/``target_scale`` are per-node vectors (a_u / b_v
    above); ``self_weight`` is the extra diagonal term applied outside
    the edge set (0 when self loops are already in the edge set).
    ``add_self_loops`` says whether the aggregation runs on ``A + I``.
    """

    kind: str
    add_self_loops: bool
    source_scale: np.ndarray
    target_scale: np.ndarray
    self_weight: float


def normalization_for(graph: CSRGraph, kind: str, *, gin_eps: float = 0.0) -> NormalizationSpec:
    """Build the factorised normalisation for ``graph`` and ``kind``."""
    degrees = graph.without_self_loops().degrees.astype(np.float64)
    if kind == "gcn-sym":
        dhat = degrees + 1.0
        inv_sqrt = 1.0 / np.sqrt(dhat)
        return NormalizationSpec(
            kind=kind,
            add_self_loops=True,
            source_scale=inv_sqrt,
            target_scale=inv_sqrt,
            self_weight=0.0,
        )
    if kind == "sage-mean":
        dhat = degrees + 1.0
        ones = np.ones_like(dhat)
        return NormalizationSpec(
            kind=kind,
            add_self_loops=True,
            source_scale=ones,
            target_scale=1.0 / dhat,
            self_weight=0.0,
        )
    if kind == "gin-sum":
        ones = np.ones(graph.num_nodes, dtype=np.float64)
        return NormalizationSpec(
            kind=kind,
            add_self_loops=False,
            source_scale=ones,
            target_scale=ones,
            self_weight=1.0 + gin_eps,
        )
    raise ConfigError(f"unknown aggregation kind {kind!r}")


def normalized_adjacency(graph: CSRGraph, kind: str, *, gin_eps: float = 0.0):
    """Materialise ``A_hat`` as a scipy CSR matrix (reference path)."""
    spec = normalization_for(graph, kind, gin_eps=gin_eps)
    base = graph.without_self_loops()
    adj = base.with_self_loops() if spec.add_self_loops else base
    mat = adj.to_scipy()
    # Scale rows by target (result row v) and columns by source (u):
    # A_hat[v, u] = b_v * a_u * A[v, u].  The graph is symmetric so the
    # CSR row index is the aggregation *target*.
    diag_b = sparse.diags(spec.target_scale)
    diag_a = sparse.diags(spec.source_scale)
    mat = diag_b @ mat @ diag_a
    if spec.self_weight != 0.0:
        mat = mat + sparse.identity(graph.num_nodes, format="csr") * spec.self_weight
    return mat.tocsr()


def init_weights(model: ModelConfig, *, seed: int = 0) -> list[np.ndarray]:
    """Deterministic Glorot-style weights for every layer."""
    rng = np.random.default_rng(seed)
    weights = []
    for d_in, d_out in model.layer_dims():
        limit = np.sqrt(6.0 / (d_in + d_out))
        weights.append(rng.uniform(-limit, limit, size=(d_in, d_out)))
    return weights


def _activate(x: np.ndarray, activation: str) -> np.ndarray:
    if activation == "relu":
        return np.maximum(x, 0.0)
    return x


def reference_layer(
    a_hat, x: np.ndarray, w: np.ndarray, *, activation: str = "none"
) -> np.ndarray:
    """One combination-first GraphCONV layer: ``sigma(A_hat (X W))``."""
    xw = x @ w if not sparse.issparse(x) else (x @ w)
    xw = np.asarray(xw)
    out = a_hat @ xw
    return _activate(np.asarray(out), activation)


def reference_forward(
    graph: CSRGraph,
    model: ModelConfig,
    features,
    weights: list[np.ndarray] | None = None,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Full multi-layer forward pass; returns the output feature matrix.

    ``features`` may be a dense ndarray or a scipy sparse matrix.
    """
    if weights is None:
        weights = init_weights(model, seed=seed)
    if len(weights) != model.num_layers:
        raise ConfigError("weights list does not match layer count")
    a_hat = normalized_adjacency(graph, model.aggregation, gin_eps=model.gin_eps)
    x = features
    for layer, w in zip(model.layers, weights):
        if w.shape != (layer.in_dim, layer.out_dim):
            raise ConfigError(
                f"weight shape {w.shape} does not match layer "
                f"({layer.in_dim}, {layer.out_dim})"
            )
        x = reference_layer(a_hat, x, w, activation=layer.activation)
    return np.asarray(x)
