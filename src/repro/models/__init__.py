"""GNN model substrate: configs, reference forward pass, workload counts."""

from repro.models.configs import (
    LayerSpec,
    ModelConfig,
    build_model,
    gcn_model,
    gin_model,
    graphsage_model,
)
from repro.models.reference import (
    NormalizationSpec,
    init_weights,
    normalization_for,
    normalized_adjacency,
    reference_forward,
    reference_layer,
)
from repro.models.workload import LayerWorkload, Workload, build_workload

__all__ = [
    "LayerSpec",
    "ModelConfig",
    "gcn_model",
    "graphsage_model",
    "gin_model",
    "build_model",
    "NormalizationSpec",
    "normalization_for",
    "normalized_adjacency",
    "init_weights",
    "reference_forward",
    "reference_layer",
    "LayerWorkload",
    "Workload",
    "build_workload",
]
