"""Workload descriptors: operation counts of a (graph, model) pair.

Both the accelerator simulators and the analytic platform models need
the same bookkeeping: how many MAC operations does each phase of each
layer require, and how large are the matrices involved.  Centralising
it here keeps every simulator consistent (and is itself unit-tested
against brute-force counting).

Conventions
-----------
* One *MAC* = one multiply-accumulate.  A vector axpy of length L
  counts as L MACs.
* Combination-first order (paper §2.2.1): layer l computes
  ``XW = X(l) @ W(l)`` then aggregates ``A_hat @ XW``.
* ``X(0)`` is sparse with the dataset's published density; hidden
  layers are dense (post-ReLU zeros are not exploited, matching the
  baselines' accounting).
* Aggregation MACs = nnz(A_hat) * out_dim (each non-zero contributes a
  scaled vector accumulation).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import IO

from repro.graph.csr import CSRGraph
from repro.models.configs import ModelConfig
from repro.serialize import read_npz, write_npz

__all__ = ["LayerWorkload", "Workload", "build_workload"]

BYTES_PER_VALUE = 4  # fp32 datapath, matching the paper's FPGA design
BYTES_PER_INDEX = 4


@dataclass(frozen=True)
class LayerWorkload:
    """Operation/byte counts for one GraphCONV layer."""

    layer_index: int
    in_dim: int
    out_dim: int
    feature_nnz: int          # nnz of X(l)
    adjacency_nnz: int        # nnz of A_hat (incl. self loops when added)
    combination_macs: int     # SpMM X @ W
    aggregation_macs: int     # SpMM A_hat @ XW (no redundancy removal)
    feature_bytes: int        # size of X(l) as stored (sparse or dense)
    xw_bytes: int             # size of XW (dense)
    weight_bytes: int         # size of W

    @property
    def total_macs(self) -> int:
        """Combination + aggregation MACs."""
        return self.combination_macs + self.aggregation_macs


@dataclass(frozen=True)
class Workload:
    """Full-model operation counts for one graph."""

    graph_name: str
    model_name: str
    num_nodes: int
    adjacency_nnz: int
    layers: tuple[LayerWorkload, ...]

    @property
    def total_macs(self) -> int:
        """All MACs across layers and phases."""
        return sum(layer.total_macs for layer in self.layers)

    @property
    def combination_macs(self) -> int:
        """All combination-phase MACs."""
        return sum(layer.combination_macs for layer in self.layers)

    @property
    def aggregation_macs(self) -> int:
        """All aggregation-phase MACs (before redundancy removal)."""
        return sum(layer.aggregation_macs for layer in self.layers)

    @property
    def aggregation_fraction(self) -> float:
        """Share of total ops spent in aggregation (paper: ~23 % avg)."""
        total = self.total_macs
        return self.aggregation_macs / total if total else 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the workload (pure-integer metadata, no arrays)."""
        write_npz(
            file,
            {},
            {
                "format": 1,
                "graph_name": self.graph_name,
                "model_name": self.model_name,
                "num_nodes": int(self.num_nodes),
                "adjacency_nnz": int(self.adjacency_nnz),
                "layers": [dataclasses.asdict(layer) for layer in self.layers],
            },
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "Workload":
        """Restore a workload written by :meth:`to_npz`."""
        _, meta = read_npz(file)
        layers = tuple(
            LayerWorkload(**{name: int(value) for name, value in layer.items()})
            for layer in meta["layers"]
        )
        return cls(
            graph_name=str(meta["graph_name"]),
            model_name=str(meta["model_name"]),
            num_nodes=int(meta["num_nodes"]),
            adjacency_nnz=int(meta["adjacency_nnz"]),
            layers=layers,
        )


def build_workload(
    graph: CSRGraph,
    model: ModelConfig,
    *,
    feature_density: float = 1.0,
) -> Workload:
    """Count per-layer operations for ``model`` on ``graph``.

    ``feature_density`` is the nnz fraction of the *input* feature
    matrix; hidden feature matrices are treated as dense.
    """
    n = graph.num_nodes
    base = graph.without_self_loops()
    add_self = model.aggregation in ("gcn-sym", "sage-mean")
    adj_nnz = base.num_edges + (n if add_self else 0)
    # GIN applies its (1+eps) self term as one axpy per node.
    gin_self_nnz = n if model.aggregation == "gin-sum" else 0

    layers: list[LayerWorkload] = []
    for i, layer in enumerate(model.layers):
        density = feature_density if i == 0 else 1.0
        feat_nnz = int(round(n * layer.in_dim * density))
        comb = feat_nnz * layer.out_dim
        agg = (adj_nnz + gin_self_nnz) * layer.out_dim
        if density < 1.0:
            feat_bytes = feat_nnz * (BYTES_PER_VALUE + BYTES_PER_INDEX)
        else:
            feat_bytes = n * layer.in_dim * BYTES_PER_VALUE
        layers.append(
            LayerWorkload(
                layer_index=i,
                in_dim=layer.in_dim,
                out_dim=layer.out_dim,
                feature_nnz=feat_nnz,
                adjacency_nnz=adj_nnz + gin_self_nnz,
                combination_macs=comb,
                aggregation_macs=agg,
                feature_bytes=feat_bytes,
                xw_bytes=n * layer.out_dim * BYTES_PER_VALUE,
                weight_bytes=layer.in_dim * layer.out_dim * BYTES_PER_VALUE,
            )
        )
    return Workload(
        graph_name=graph.name,
        model_name=model.name,
        num_nodes=n,
        adjacency_nnz=adj_nnz,
        layers=tuple(layers),
    )
