"""The I-GCN accelerator: locator + consumer + hardware models.

:class:`IGCNAccelerator` is the library's front door.  ``run`` performs
a full multi-layer inference:

1. islandize the (self-loop-free) graph once — structure is shared by
   all layers;
2. build island tasks and the inter-hub plan once;
3. run the Island Consumer per layer (functional or counting);
4. fold operation counts, DRAM traffic, locator work, and the
   locator/consumer overlap into latency and energy via ``repro.hw``.

The returned :class:`IGCNReport` carries everything the paper's tables
and figures need: pruning rates (Fig 10), traffic breakdown (Fig 14A),
latency/EE (Table 2, Fig 14B), round statistics (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.config import ConsumerConfig, LocatorConfig
from repro.core.consumer import IslandConsumer, LayerCounts
from repro.core.interhub import build_interhub_plan
from repro.core.islandizer import IslandLocator
from repro.core.pipeline import pipelined_makespan
from repro.core.types import IslandizationResult
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig, IGCN_DEFAULT
from repro.hw.energy import EnergyReport, estimate_energy
from repro.hw.memory import TrafficMeter, effective_offchip_bytes
from repro.models.configs import ModelConfig
from repro.models.reference import init_weights, normalization_for
from repro.report import BaseReport

__all__ = ["IGCNAccelerator", "IGCNReport"]


@dataclass
class IGCNReport(BaseReport):
    """Complete result of one simulated I-GCN inference."""

    platform: ClassVar[str] = "igcn"

    graph_name: str
    model_name: str
    islandization: IslandizationResult
    layers: list[LayerCounts]
    meter: TrafficMeter
    locator_cycles: float
    consumer_cycles: float
    total_cycles: float
    latency_us: float
    energy: EnergyReport
    outputs: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def macs_performed(self) -> int:
        """Uniform-report alias of :attr:`total_macs`."""
        return self.total_macs

    @property
    def total_macs(self) -> int:
        """MACs actually performed (with redundancy removal)."""
        return sum(layer.total_macs for layer in self.layers)

    @property
    def total_baseline_macs(self) -> int:
        """MACs a no-reuse dataflow would perform."""
        return sum(layer.total_baseline_macs for layer in self.layers)

    @property
    def aggregation_pruning_rate(self) -> float:
        """Figure 10 (left): fraction of aggregation MACs pruned."""
        baseline = sum(layer.aggregation_baseline_macs for layer in self.layers)
        pruned = sum(layer.aggregation_pruned_macs for layer in self.layers)
        return pruned / baseline if baseline else 0.0

    @property
    def overall_pruning_rate(self) -> float:
        """Figure 10 (right): fraction of *all* MACs pruned."""
        baseline = self.total_baseline_macs
        return (baseline - self.total_macs) / baseline if baseline else 0.0

    @property
    def aggregation_fraction(self) -> float:
        """Share of baseline ops in aggregation (paper: ~23 % average)."""
        baseline = self.total_baseline_macs
        agg = sum(layer.aggregation_baseline_macs for layer in self.layers)
        return agg / baseline if baseline else 0.0

    def _summary_extras(self) -> dict[str, object]:
        """Islandization and pruning metrics unique to I-GCN."""
        return {
            "rounds": self.islandization.num_rounds,
            "islands": self.islandization.num_islands,
            "hubs": self.islandization.num_hubs,
            "prune_agg": round(self.aggregation_pruning_rate, 4),
            "prune_all": round(self.overall_pruning_rate, 4),
        }


class IGCNAccelerator:
    """Functional + performance simulator of the I-GCN design."""

    def __init__(
        self,
        hw: HardwareConfig | None = None,
        locator: LocatorConfig | None = None,
        consumer: ConsumerConfig | None = None,
    ) -> None:
        self.hw = hw or IGCN_DEFAULT
        self.locator_config = locator or LocatorConfig()
        self.consumer_config = consumer or ConsumerConfig()

    # ------------------------------------------------------------------
    def islandize(self, graph: CSRGraph) -> IslandizationResult:
        """Run only the Island Locator (strips self-loops first)."""
        return IslandLocator(self.locator_config).run(graph.without_self_loops())

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        features=None,
        weights: list[np.ndarray] | None = None,
        feature_density: float = 1.0,
        functional: bool = False,
        seed: int = 0,
        islandization: IslandizationResult | None = None,
    ) -> IGCNReport:
        """Simulate one inference of ``model`` over ``graph``.

        Functional mode (``functional=True``) computes real outputs and
        requires ``features`` (dense or scipy-sparse); weights default
        to the deterministic Glorot initialisation shared with the
        reference implementation.
        """
        if functional and features is None:
            raise SimulationError("functional mode requires features")
        if islandization is not None:
            # The locator already holds the self-loop-free copy it ran
            # on; reuse it instead of rebuilding an O(nnz) clean graph
            # per call (the runtime Engine leans on this).
            clean = islandization.graph
            result = islandization
        else:
            clean = graph.without_self_loops()
            result = IslandLocator(self.locator_config).run(clean)

        norm = normalization_for(clean, model.aggregation, gin_eps=model.gin_eps)
        interhub = build_interhub_plan(result, add_self_loops=norm.add_self_loops)
        if functional and weights is None:
            weights = init_weights(model, seed=seed)

        consumer = IslandConsumer(self.consumer_config, self.hw)
        # Backend-appropriate task representation (packed TaskBatch for
        # the batched consumer, per-island bitmaps for the scalar
        # oracle), built once and shared by every layer.
        tasks = consumer.prepare(result, add_self_loops=norm.add_self_loops)
        meter = TrafficMeter()
        meter.read("adjacency", result.work.total_adjacency_bytes)

        layer_counts: list[LayerCounts] = []
        layer_cycles: list[float] = []
        x = features
        for idx, layer in enumerate(model.layers):
            layer_meter = TrafficMeter()
            execution = consumer.run_layer(
                result,
                tasks,
                interhub,
                norm,
                layer,
                layer_index=idx,
                meter=layer_meter,
                x=x if functional else None,
                w=weights[idx] if functional else None,
                feature_density=feature_density if idx == 0 else 1.0,
                final_layer=idx == model.num_layers - 1,
            )
            layer_counts.append(execution.counts)
            compute = execution.counts.total_macs / self.hw.macs_per_cycle
            # Latency charges only the bytes that must cross the pins;
            # read-mostly operands reside on-chip up to capacity
            # (§4.6.1's practical configuration).
            memory = (
                effective_offchip_bytes(layer_meter, self.hw.onchip_capacity_bytes)
                / self.hw.bytes_per_cycle
            )
            layer_cycles.append(max(compute, memory))
            meter.merge(layer_meter)
            if functional:
                x = execution.output

        locator_cycles, consumer_cycles, total_cycles = self._latency(
            result, layer_cycles
        )
        latency_s = self.hw.cycles_to_seconds(total_cycles)
        energy = estimate_energy(
            self.hw,
            latency_s=latency_s,
            macs=sum(c.total_macs for c in layer_counts),
            dram_bytes=meter.total_bytes,
        )
        return IGCNReport(
            graph_name=graph.name,
            model_name=model.name,
            islandization=result,
            layers=layer_counts,
            meter=meter,
            locator_cycles=locator_cycles,
            consumer_cycles=consumer_cycles,
            total_cycles=total_cycles,
            latency_us=self.hw.cycles_to_us(total_cycles),
            energy=energy,
            outputs=x if functional else None,
        )

    # ------------------------------------------------------------------
    def _latency(
        self, result: IslandizationResult, layer_cycles: list[float]
    ) -> tuple[float, float, float]:
        """Overlap the locator with the consumer (Fig 3's pipeline)."""
        config = self.locator_config
        # Adjacency beyond on-chip capacity pays DRAM bandwidth.
        adjacency_spill = max(
            0.0, result.work.total_adjacency_bytes - self.hw.onchip_capacity_bytes
        )
        spill_cycles_per_byte = (
            adjacency_spill / result.work.total_adjacency_bytes
            / self.hw.bytes_per_cycle
            if result.work.total_adjacency_bytes
            else 0.0
        )
        round_cycles = []
        for stats in result.rounds:
            detect = stats.detect_items / config.p1
            scans = (stats.adjacency_bytes / 4) / config.p2
            dram = stats.adjacency_bytes * spill_cycles_per_byte
            round_cycles.append(max(detect, scans, dram))
        locator_cycles = float(sum(round_cycles))
        consumer_cycles = float(sum(layer_cycles))
        pipeline_fill = 64.0

        # Degenerate graphs (0 nodes, or nothing left after self-loop
        # removal) produce zero locator rounds; there is no release
        # schedule to overlap, so the consumer runs start-to-finish and
        # the releases/chunks/shares arrays below (which are all sized
        # per-round) are never built with mismatched lengths.
        if not round_cycles:
            return 0.0, consumer_cycles, consumer_cycles + pipeline_fill

        # Islands stream to the consumer *as they form* (§3.1.1: no
        # per-round synchronisation on the consumer side), so round r's
        # work becomes available from the round's *start*; only the
        # locator's production rate can starve the consumer, which the
        # release-time makespan captures.  A small fixed fill covers the
        # first-island delay.
        cumulative = np.cumsum(round_cycles)
        releases = [0.0] + cumulative[:-1].tolist()
        islanded = np.asarray(
            [s.nodes_islanded + s.hubs_found for s in result.rounds], dtype=np.float64
        )
        if islanded.sum() == 0:
            shares = np.ones(len(releases)) / len(releases)
        else:
            shares = islanded / islanded.sum()
        chunks = (shares * consumer_cycles).tolist()
        total = max(
            pipelined_makespan(releases, chunks), locator_cycles
        ) + pipeline_fill
        return locator_cycles, consumer_cycles, total
