"""The I-GCN accelerator: locator + consumer + hardware models (§3-§4).

:class:`IGCNAccelerator` is the library's front door.  ``run`` performs
a full multi-layer inference:

1. islandize the (self-loop-free) graph once — structure is shared by
   all layers;
2. build island tasks and the inter-hub plan once;
3. run the Island Consumer per layer (functional or counting);
4. fold operation counts, DRAM traffic, locator work, and the
   locator/consumer overlap into latency and energy via ``repro.hw``.

Steps 1-3 run in one of two pipeline modes
(:attr:`ConsumerConfig.pipeline`), reproducing Fig. 3's overlap claim
(§3.1.1) at the software level:

* ``"streamed"`` (default) — the locator *streams*
  :class:`~repro.core.types.RoundOutput` chunks; island tasks are
  assembled per round as chunks arrive, layers execute chunk-by-chunk,
  and end-to-end cycles come from the measured per-round release/work
  schedule (:func:`~repro.core.pipeline.streamed_schedule`);
* ``"staged"`` — islandize to completion, then consume; cycles are the
  plain sum of the two phases;
* ``"event"`` — the discrete-event refinement
  (:mod:`repro.core.event_sim`): per-island release inside each round,
  PE contention, ring/DHUB-PRC port arbitration and hub-cache
  occupancy over event time; the report additionally carries the event
  trace and per-island latency records (p50/p99), and the makespan is
  sandwiched ``streamed <= event <= staged`` on every input.

Counts, traffic, and functional outputs are byte-identical across
modes (and across both locator/consumer backends); only the overlap
model differs (``tests/test_pipeline_stream.py``).

The returned :class:`IGCNReport` carries everything the paper's tables
and figures need: pruning rates (Fig 10), traffic breakdown (Fig 14A),
latency/EE (Table 2, Fig 14B), round statistics (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.config import ConsumerConfig, LocatorConfig
from repro.core.consumer import IslandConsumer, LayerCounts
from repro.core.event_sim import EventSimResult, simulate_events
from repro.core.interhub import build_interhub_plan
from repro.core.islandizer import IslandLocator, islandize
from repro.core.pipeline import pipelined_makespan, streamed_schedule
from repro.core.types import IslandizationResult
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.hw.config import HardwareConfig, IGCN_DEFAULT
from repro.hw.energy import EnergyReport, estimate_energy
from repro.hw.memory import TrafficMeter, effective_offchip_bytes
from repro.models.configs import ModelConfig
from repro.models.reference import init_weights, normalization_for
from repro.report import BaseReport

__all__ = ["IGCNAccelerator", "IGCNReport"]


@dataclass
class IGCNReport(BaseReport):
    """Complete result of one simulated I-GCN inference."""

    platform: ClassVar[str] = "igcn"

    graph_name: str
    model_name: str
    islandization: IslandizationResult
    layers: list[LayerCounts]
    meter: TrafficMeter
    locator_cycles: float
    consumer_cycles: float
    total_cycles: float
    latency_us: float
    energy: EnergyReport
    pipeline: str = "streamed"
    outputs: np.ndarray | None = field(default=None, repr=False)
    #: Event-mode only: the discrete-event trace + per-island records.
    event: EventSimResult | None = field(default=None, repr=False)
    #: Event-mode only: per-island release-to-completion latency
    #: percentiles (the serving-story tail metric), in microseconds.
    island_p50_us: float | None = None
    island_p99_us: float | None = None

    # ------------------------------------------------------------------
    @property
    def macs_performed(self) -> int:
        """Uniform-report alias of :attr:`total_macs`."""
        return self.total_macs

    @property
    def total_macs(self) -> int:
        """MACs actually performed (with redundancy removal)."""
        return sum(layer.total_macs for layer in self.layers)

    @property
    def total_baseline_macs(self) -> int:
        """MACs a no-reuse dataflow would perform."""
        return sum(layer.total_baseline_macs for layer in self.layers)

    @property
    def aggregation_pruning_rate(self) -> float:
        """Figure 10 (left): fraction of aggregation MACs pruned."""
        baseline = sum(layer.aggregation_baseline_macs for layer in self.layers)
        pruned = sum(layer.aggregation_pruned_macs for layer in self.layers)
        return pruned / baseline if baseline else 0.0

    @property
    def overall_pruning_rate(self) -> float:
        """Figure 10 (right): fraction of *all* MACs pruned."""
        baseline = self.total_baseline_macs
        return (baseline - self.total_macs) / baseline if baseline else 0.0

    @property
    def aggregation_fraction(self) -> float:
        """Share of baseline ops in aggregation (paper: ~23 % average)."""
        baseline = self.total_baseline_macs
        agg = sum(layer.aggregation_baseline_macs for layer in self.layers)
        return agg / baseline if baseline else 0.0

    @property
    def overlap_saved_cycles(self) -> float:
        """Cycles the pipeline overlap hides vs. a staged back-to-back run.

        Zero in staged mode by construction; in streamed mode this is
        the Fig. 3 win — ``(locator + consumer + fill) - total``.
        """
        staged_total = (
            self.locator_cycles + self.consumer_cycles
            + IGCNAccelerator.PIPELINE_FILL_CYCLES
        )
        return max(0.0, staged_total - self.total_cycles)

    def _summary_extras(self) -> dict[str, object]:
        """Islandization and pruning metrics unique to I-GCN."""
        extras = {
            "rounds": self.islandization.num_rounds,
            "islands": self.islandization.num_islands,
            "hubs": self.islandization.num_hubs,
            "prune_agg": round(self.aggregation_pruning_rate, 4),
            "prune_all": round(self.overall_pruning_rate, 4),
            "pipeline": self.pipeline,
        }
        if self.pipeline == "event":
            extras["island_p50_us"] = (
                round(self.island_p50_us, 5)
                if self.island_p50_us is not None else None
            )
            extras["island_p99_us"] = (
                round(self.island_p99_us, 5)
                if self.island_p99_us is not None else None
            )
        return extras


class IGCNAccelerator:
    """Functional + performance simulator of the I-GCN design."""

    #: Fixed pipeline-fill cycles covering the first-island delay.
    PIPELINE_FILL_CYCLES = 64.0

    def __init__(
        self,
        hw: HardwareConfig | None = None,
        locator: LocatorConfig | None = None,
        consumer: ConsumerConfig | None = None,
    ) -> None:
        self.hw = hw or IGCN_DEFAULT
        self.locator_config = locator or LocatorConfig()
        self.consumer_config = consumer or ConsumerConfig()

    # ------------------------------------------------------------------
    def islandize(self, graph: CSRGraph) -> IslandizationResult:
        """Run only the Island Locator (strips self-loops first).

        Honours ``LocatorConfig.partitions``: values > 1 dispatch to
        the partition-parallel locator.
        """
        return islandize(graph.without_self_loops(), self.locator_config)

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        features=None,
        weights: list[np.ndarray] | None = None,
        feature_density: float = 1.0,
        functional: bool = False,
        seed: int = 0,
        islandization: IslandizationResult | None = None,
    ) -> IGCNReport:
        """Simulate one inference of ``model`` over ``graph``.

        Functional mode (``functional=True``) computes real outputs and
        requires ``features`` (dense or scipy-sparse); weights default
        to the deterministic Glorot initialisation shared with the
        reference implementation.
        """
        if functional and features is None:
            raise SimulationError("functional mode requires features")
        # Event mode shares the streamed chunked execution path — the
        # per-round work tallies it measures feed the event schedule —
        # so counts/traffic/outputs stay byte-identical to streamed.
        streamed = self.consumer_config.pipeline in ("streamed", "event")
        consumer = IslandConsumer(self.consumer_config, self.hw)
        if islandization is not None:
            # The locator already holds the self-loop-free copy it ran
            # on; reuse it instead of rebuilding an O(nnz) clean graph
            # per call (the runtime Engine leans on this).
            clean = islandization.graph
            result = islandization
        else:
            clean = graph.without_self_loops()
            result = None

        # Normalisation depends only on the clean graph, so it is known
        # before islandization starts — the streamed pipeline needs it
        # to assemble tasks while the locator is still running.
        norm = normalization_for(clean, model.aggregation, gin_eps=model.gin_eps)
        if functional and weights is None:
            weights = init_weights(model, seed=seed)

        if streamed:
            # Fig. 3's producer/consumer hand-off: one task chunk per
            # locator round, assembled as each RoundOutput arrives — a
            # cached islandization replays its recorded round stream.
            chunks: list = []
            scratch: dict = {}  # per-inference reusable assembly maps

            def assemble(chunk) -> None:
                chunks.append(
                    consumer.prepare_chunk(
                        clean, chunk.islands,
                        add_self_loops=norm.add_self_loops,
                        scratch=scratch,
                    )
                )

            if result is None and self.locator_config.partitions == 1:
                result = IslandLocator(self.locator_config).run(
                    clean, on_round=assemble
                )
            else:
                if result is None:
                    # Partitioned locator: no live round stream — the
                    # merged result replays its recorded rounds, which
                    # the streamed overlap model consumes identically
                    # (the cached-islandization path below).
                    result = islandize(clean, self.locator_config)
                for chunk in result.iter_rounds():
                    assemble(chunk)
        else:
            if result is None:
                result = islandize(clean, self.locator_config)
            # Backend-appropriate task representation (packed TaskBatch
            # for the batched consumer, per-island bitmaps for the
            # scalar oracle), built once and shared by every layer.
            tasks = consumer.prepare(result, add_self_loops=norm.add_self_loops)

        interhub = build_interhub_plan(result, add_self_loops=norm.add_self_loops)
        meter = TrafficMeter()
        meter.read("adjacency", result.work.total_adjacency_bytes)

        layer_counts: list[LayerCounts] = []
        layer_cycles: list[float] = []
        round_work = np.zeros(len(result.rounds), dtype=np.float64)
        x = features
        for idx, layer in enumerate(model.layers):
            layer_meter = TrafficMeter()
            layer_kwargs = dict(
                layer_index=idx,
                meter=layer_meter,
                x=x if functional else None,
                w=weights[idx] if functional else None,
                feature_density=feature_density if idx == 0 else 1.0,
                final_layer=idx == model.num_layers - 1,
            )
            if streamed:
                chunk_work: list[int] = []
                execution = consumer.run_layer_chunked(
                    result, chunks, interhub, norm, layer,
                    chunk_work=chunk_work, **layer_kwargs,
                )
                round_work += np.asarray(chunk_work, dtype=np.float64)
            else:
                execution = consumer.run_layer(
                    result, tasks, interhub, norm, layer, **layer_kwargs
                )
            layer_counts.append(execution.counts)
            compute = execution.counts.total_macs / self.hw.macs_per_cycle
            # Latency charges only the bytes that must cross the pins;
            # read-mostly operands reside on-chip up to capacity
            # (§4.6.1's practical configuration).
            memory = (
                effective_offchip_bytes(layer_meter, self.hw.onchip_capacity_bytes)
                / self.hw.bytes_per_cycle
            )
            layer_cycles.append(max(compute, memory))
            meter.merge(layer_meter)
            if functional:
                x = execution.output

        event = None
        if self.consumer_config.pipeline == "event":
            locator_cycles, consumer_cycles, total_cycles, event = (
                self._event_latency(result, layer_cycles, round_work, model)
            )
        else:
            locator_cycles, consumer_cycles, total_cycles = self._latency(
                result, layer_cycles, round_work if streamed else None
            )
        latency_s = self.hw.cycles_to_seconds(total_cycles)
        energy = estimate_energy(
            self.hw,
            latency_s=latency_s,
            macs=sum(c.total_macs for c in layer_counts),
            dram_bytes=meter.total_bytes,
        )
        p50 = event.latency_percentile(50) if event is not None else None
        p99 = event.latency_percentile(99) if event is not None else None
        return IGCNReport(
            graph_name=graph.name,
            model_name=model.name,
            islandization=result,
            layers=layer_counts,
            meter=meter,
            locator_cycles=locator_cycles,
            consumer_cycles=consumer_cycles,
            total_cycles=total_cycles,
            latency_us=self.hw.cycles_to_us(total_cycles),
            energy=energy,
            pipeline=self.consumer_config.pipeline,
            outputs=x if functional else None,
            event=event,
            island_p50_us=(
                self.hw.cycles_to_us(p50) if p50 is not None else None
            ),
            island_p99_us=(
                self.hw.cycles_to_us(p99) if p99 is not None else None
            ),
        )

    # ------------------------------------------------------------------
    def _latency(
        self,
        result: IslandizationResult,
        layer_cycles: list[float],
        round_work: np.ndarray | None = None,
    ) -> tuple[float, float, float]:
        """End-to-end cycles of one inference, per pipeline mode.

        ``round_work`` is the measured per-round consumer work vector a
        streamed run collected (``None`` in staged mode).  Staged runs
        the phases strictly back-to-back — locator, then consumer —
        so their cycles simply add.  Streamed overlaps them (Fig 3):
        islands stream to the consumer as they form, so round r's work
        releases at the round's start and the total is the
        work-conserving makespan of the measured release/work schedule
        (floored at the locator itself, which must still finish).  A
        small fixed fill covers the first-island delay in both modes.
        """
        round_cycles = self._round_cycles(result)
        locator_cycles = float(sum(round_cycles))
        consumer_cycles = float(sum(layer_cycles))
        pipeline_fill = self.PIPELINE_FILL_CYCLES

        # Degenerate graphs (0 nodes, or nothing left after self-loop
        # removal) produce zero locator rounds; there is no release
        # schedule to overlap, so the consumer runs start-to-finish in
        # either mode.
        if not round_cycles:
            return 0.0, consumer_cycles, consumer_cycles + pipeline_fill

        if round_work is None:
            total = locator_cycles + consumer_cycles + pipeline_fill
            return locator_cycles, consumer_cycles, total

        releases, chunks = streamed_schedule(
            round_cycles, round_work.tolist(), consumer_cycles
        )
        total = max(
            pipelined_makespan(releases, chunks), locator_cycles
        ) + pipeline_fill
        return locator_cycles, consumer_cycles, total

    # ------------------------------------------------------------------
    def _round_cycles(self, result: IslandizationResult) -> list[float]:
        """Per-round locator cycle estimates (shared by every mode).

        Each round is the max of its hub-detection scan, its TP-BFS
        adjacency scan, and — for adjacency beyond on-chip capacity —
        its share of the DRAM spill bandwidth.
        """
        config = self.locator_config
        # Adjacency beyond on-chip capacity pays DRAM bandwidth.
        adjacency_spill = max(
            0.0, result.work.total_adjacency_bytes - self.hw.onchip_capacity_bytes
        )
        spill_cycles_per_byte = (
            adjacency_spill / result.work.total_adjacency_bytes
            / self.hw.bytes_per_cycle
            if result.work.total_adjacency_bytes
            else 0.0
        )
        round_cycles = []
        for stats in result.rounds:
            detect = stats.detect_items / config.p1
            scans = (stats.adjacency_bytes / 4) / config.p2
            dram = stats.adjacency_bytes * spill_cycles_per_byte
            round_cycles.append(max(detect, scans, dram))
        return round_cycles

    # ------------------------------------------------------------------
    def _event_latency(
        self,
        result: IslandizationResult,
        layer_cycles: list[float],
        round_work: np.ndarray,
        model: ModelConfig,
    ) -> tuple[float, float, float, EventSimResult]:
        """End-to-end cycles of the discrete-event pipeline mode.

        The per-round consumer chunks come from the same
        :func:`~repro.core.pipeline.streamed_schedule` the streamed
        mode uses — so the event schedule conserves exactly the same
        cycle total — and each chunk is split over the round's islands
        by their member + hub counts, released at their production
        times inside the round.  The makespan is floored at the
        locator (which must still finish) plus the shared fill, which
        keeps the sandwich ``streamed <= event <= staged`` structural
        (see :mod:`repro.core.event_sim`).
        """
        round_cycles = self._round_cycles(result)
        locator_cycles = float(sum(round_cycles))
        consumer_cycles = float(sum(layer_cycles))
        pipeline_fill = self.PIPELINE_FILL_CYCLES
        num_pes = self.consumer_config.num_pes
        row_bytes = 4 * max(
            (layer.out_dim for layer in model.layers), default=1
        )
        cache_entries = max(1, self.hw.hub_xw_cache_bytes // row_bytes)
        if not round_cycles:
            # Degenerate graphs: no rounds, no schedule to refine —
            # same start-to-finish total as the other modes.
            sim = simulate_events(
                [], [], [], num_pes=num_pes, cache_entries=cache_entries
            )
            return (
                0.0, consumer_cycles, consumer_cycles + pipeline_fill, sim
            )
        _, chunks = streamed_schedule(
            round_cycles, round_work.tolist(), consumer_cycles
        )
        round_index = {
            stats.round_id: idx for idx, stats in enumerate(result.rounds)
        }
        round_islands: list[list[tuple[int, float, tuple[int, ...]]]] = [
            [] for _ in round_cycles
        ]
        for island_id, island in enumerate(result.islands):
            round_islands[round_index[island.round_id]].append(
                (
                    island_id,
                    float(island.num_members + island.num_hubs),
                    tuple(int(h) for h in island.hubs),
                )
            )
        sim = simulate_events(
            round_cycles,
            round_islands,
            chunks,
            num_pes=num_pes,
            cache_entries=cache_entries,
        )
        total = max(sim.makespan, locator_cycles) + pipeline_fill
        return locator_cycles, consumer_cycles, total, sim
