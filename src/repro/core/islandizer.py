"""The Island Locator (Algorithm 1): round-based islandization.

Orchestrates the three concurrent tasks of Algorithm 1 — hub detection
(Th1), BFS task generation (Th2) and TP-BFS execution (Th3) — with the
paper's per-round synchronisation.  The software model runs the phases
sequentially inside each round; that is result-equivalent to the
asynchronous hardware because all three phases share one predicate
(``degree >= TH_round``) and synchronise at round boundaries.  The
*work* of each phase is still tracked separately so the hardware cycle
model can overlap them.

Th3 has two interchangeable backends selected by
:attr:`~repro.core.config.LocatorConfig.backend`:

* ``"batched"`` (default) — the vectorized stamp-array kernels of
  :mod:`repro.core.tp_bfs_batched`: bulk task classification, one
  multi-source NumPy BFS for all island-producing tasks, and
  level-vectorized walks for over-``c_max`` regions;
* ``"scalar"`` — the original per-edge Python loop of
  :mod:`repro.core.tp_bfs`, kept as the oracle.

Both produce the exact same :class:`IslandizationResult` — islands,
hub order, inter-hub edges, round statistics and work counters — which
``tests/test_backend_equivalence.py`` pins across graph families.

Termination: the threshold decays geometrically to ``th_min``; at
``th_min = 1`` every remaining node with an edge becomes a hub and
degree-0 nodes are swept into singleton islands, so the node list
always empties (DESIGN.md §6).
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.hub_detector import detect_new_hubs
from repro.core.tp_bfs import BFSRoundState, TaskOutcome, run_bfs_task
from repro.core.tp_bfs_batched import TASK_OUTCOME_CODES, execute_round_batched
from repro.core.types import (
    Island,
    IslandizationResult,
    LocatorWork,
    RoundOutput,
    RoundStats,
)
from repro.errors import IslandizationError
from repro.graph.csr import CSRGraph

__all__ = ["IslandLocator", "islandize"]

_MAX_ROUNDS = 1000  # safety net; real runs finish in < 20 rounds

_NO_HUBS = np.zeros(0, dtype=np.int64)


class _GreedyEngineDispatch:
    """Greedy idle-engine assignment for the P2 work model.

    Replaces the original per-task ``np.argmin(engine_load)`` full scan
    with an O(log P2) heap.  Entries are ``(load, engine)`` tuples, so
    a pop returns the least-loaded engine and — among ties — the
    lowest engine index, exactly ``argmin``'s first-minimum rule; the
    resulting ``per_engine_scans`` distribution is identical.
    """

    def __init__(self, p2: int) -> None:
        self._p2 = p2
        self._heap: list[tuple[int, int]] = [(0, i) for i in range(p2)]

    def add(self, scans: int) -> None:
        """Assign one task's scan work to the current idlest engine."""
        load, engine = heapq.heappop(self._heap)
        heapq.heappush(self._heap, (load + scans, engine))

    def loads(self) -> np.ndarray:
        """Per-engine scan totals (the LocatorWork distribution)."""
        arr = np.zeros(self._p2, dtype=np.int64)
        for load, engine in self._heap:
            arr[engine] = load
        return arr


class _Round:
    """Mutable Th3 tallies of one round (shared by both backends)."""

    __slots__ = (
        "islands_found", "nodes_islanded", "dropped_classified",
        "dropped_visited", "dropped_cmax", "interhub_found",
        "scans", "fetches", "bytes",
    )

    def __init__(self) -> None:
        self.islands_found = 0
        self.nodes_islanded = 0
        self.dropped_classified = 0
        self.dropped_visited = 0
        self.dropped_cmax = 0
        self.interhub_found = 0
        self.scans = 0
        self.fetches = 0
        self.bytes = 0


class IslandLocator:
    """Runtime graph restructuring: find hubs and islands by rounds."""

    def __init__(self, config: LocatorConfig | None = None) -> None:
        self.config = config or LocatorConfig()

    def run(
        self,
        graph: CSRGraph,
        *,
        on_round: Callable[[RoundOutput], None] | None = None,
    ) -> IslandizationResult:
        """Islandize ``graph`` by draining :meth:`stream` to completion.

        ``on_round`` (optional) is invoked with each round's
        :class:`RoundOutput` as it is produced — the callback form of
        the streaming hand-off, for consumers that prefer not to drive
        the generator themselves.  The returned result is identical
        with or without a callback (and identical to what a pre-stream
        monolithic run produced: the stream *is* the implementation).
        """
        stream = self.stream(graph)
        while True:
            try:
                chunk = next(stream)
            except StopIteration as stop:
                return stop.value
            if on_round is not None:
                on_round(chunk)

    def stream(
        self,
        graph: CSRGraph,
        *,
        tap: Callable[..., None] | None = None,
    ) -> Generator[RoundOutput, None, IslandizationResult]:
        """Islandize ``graph``, yielding one chunk per locator round.

        The generator form of Fig. 3's producer side: after each round
        of Algorithm 1 it yields a :class:`RoundOutput` with the
        islands finalized that round (isolated-node singletons first,
        then TP-BFS islands in task order — exactly their slice of the
        final result's island list) and the round's statistics, then
        resumes with the next threshold.  The
        :class:`IslandizationResult` is the generator's return value
        (``StopIteration.value``), so ``run()`` is a plain drain of
        this stream and both entry points produce byte-identical
        results for either Th3 backend.

        ``tap`` (optional) receives ``(round_id, task_hubs, task_seeds,
        task_scans, task_fetches, task_bytes, task_outcomes)`` once per
        round, before the round's chunk is yielded — the raw Th2 queue
        plus each task's TP-BFS scan count, adjacency fetches/bytes
        and outcome code (``tp_bfs_batched.TASK_*``) in task order.
        Incremental islandization records these to replay the greedy
        engine dispatch and to subtract a dirty region's contribution
        from the cached counters under deltas; the run itself is
        unaffected by the callback.

        ``graph`` must not contain self-loops: they carry no structural
        information for clustering and are handled by the consumer's
        normalisation (the GCN ``A + I`` diagonal), so the locator
        rejects them to keep edge accounting unambiguous.  The
        adjacency must be symmetric (the repository's graph
        constructors guarantee this); both Th3 backends rely on it.
        """
        if graph.has_self_loops():
            raise IslandizationError(
                "islandize expects a graph without self-loops; call "
                "graph.without_self_loops() first"
            )
        config = self.config
        batched = config.backend == "batched"
        n = graph.num_nodes
        degrees = graph.degrees.astype(np.int64)
        classified = np.zeros(n, dtype=bool)
        is_hub = np.zeros(n, dtype=bool)
        num_classified = 0
        # Scalar backend: persistent v_global stamp array.  Batched
        # backend: per-entry CSR source ids shared by every round's
        # component labelling (built once: the graph is immutable).
        visited_round = None if batched else np.zeros(n, dtype=np.int64)
        csr_rows = (
            np.repeat(np.arange(n, dtype=np.int64), degrees) if batched else None
        )
        csr_lists: dict = {}  # lazily filled list-CSR cache for walks

        islands: list[Island] = []
        hub_ids: list[int] = []
        hub_rounds: list[int] = []
        interhub: set[tuple[int, int]] = set()
        interhub_keys = np.zeros(0, dtype=np.int64)
        rounds: list[RoundStats] = []
        dispatch = _GreedyEngineDispatch(config.p2)

        total_fetch = 0
        total_bytes = 0
        total_detect = 0
        total_scans = 0

        threshold = config.initial_threshold(degrees)
        round_id = 1
        while num_classified < n:
            if round_id > _MAX_ROUNDS:
                raise IslandizationError(
                    f"locator failed to converge after {_MAX_ROUNDS} rounds"
                )
            round_first_island = len(islands)
            detection = detect_new_hubs(degrees, classified, threshold)
            new_hubs = detection.new_hubs
            classified[new_hubs] = True
            is_hub[new_hubs] = True
            num_classified += len(new_hubs)
            hub_ids.extend(new_hubs.tolist())
            hub_rounds.extend([round_id] * len(new_hubs))
            isolated = detection.isolated
            islands.extend(
                Island.from_trusted_arrays(
                    round_id=round_id,
                    members=isolated[i:i + 1],
                    hubs=_NO_HUBS,
                )
                for i in range(len(isolated))
            )
            classified[isolated] = True
            num_classified += len(isolated)

            # --- Th2: task generation (reads each new hub's adjacency).
            # Vectorised CSR gather: one (hub, a0) task per adjacency
            # entry of each new hub, emitted hub-major with neighbours
            # in row (sorted) order — the exact sequence a scalar
            # per-hub loop would produce, so round stats are unchanged.
            starts = graph.indptr[new_hubs]
            counts = graph.indptr[new_hubs + 1] - starts
            total_tasks = int(counts.sum())
            prefix = np.cumsum(counts) - counts
            flat = np.arange(total_tasks, dtype=np.int64) + np.repeat(
                starts - prefix, counts
            )
            task_hubs = np.repeat(new_hubs, counts)
            task_seeds = graph.indices[flat]
            taskgen_fetches = len(new_hubs)
            taskgen_bytes = total_tasks * 4

            # --- Th3: TP-BFS over the task queue.
            tally = _Round()
            if batched:
                outcome = execute_round_batched(
                    graph, csr_rows, is_hub, classified, config.c_max,
                    task_hubs, task_seeds, interhub_keys, csr_lists,
                )
                islands.extend(
                    Island.from_trusted_arrays(
                        round_id=round_id,
                        members=members,
                        hubs=hubs,
                    )
                    for members, hubs in outcome.islands
                )
                if outcome.islands:
                    new_members = np.concatenate(
                        [members for members, _ in outcome.islands]
                    )
                    classified[new_members] = True
                    num_classified += len(new_members)
                if len(outcome.new_interhub_keys):
                    # New keys are sorted and disjoint from the known
                    # set; a stable sort of the concatenation is a
                    # near-linear merge (np.union1d re-uniques instead).
                    interhub_keys = np.sort(
                        np.concatenate(
                            [interhub_keys, outcome.new_interhub_keys]
                        ),
                        kind="stable",
                    )
                # Replay the greedy dispatch in task order (tasks with
                # zero scans are skipped, as in the scalar path).
                for scans in outcome.task_scans[
                    outcome.task_scans > 0
                ].tolist():
                    dispatch.add(scans)
                tally.islands_found = outcome.islands_found
                tally.nodes_islanded = outcome.nodes_islanded
                tally.dropped_classified = outcome.dropped_classified
                tally.dropped_visited = outcome.dropped_visited
                tally.dropped_cmax = outcome.dropped_cmax
                tally.interhub_found = len(outcome.new_interhub_keys)
                tally.scans = outcome.scans
                tally.fetches = outcome.fetches
                tally.bytes = outcome.adjacency_bytes
                if tap is not None:
                    tap(
                        round_id, task_hubs, task_seeds, outcome.task_scans,
                        outcome.task_fetches, outcome.task_bytes,
                        outcome.task_outcomes,
                    )
            else:
                tap_arrays = (
                    (
                        np.zeros(total_tasks, dtype=np.int64),
                        np.zeros(total_tasks, dtype=np.int64),
                        np.zeros(total_tasks, dtype=np.int64),
                        np.zeros(total_tasks, dtype=np.int8),
                    )
                    if tap is not None
                    else None
                )
                num_classified += self._run_round_scalar(
                    graph, degrees, threshold, round_id, visited_round,
                    task_hubs, task_seeds, islands, classified, interhub,
                    dispatch, tally, tap_arrays,
                )
                if tap is not None:
                    tap(round_id, task_hubs, task_seeds, *tap_arrays)

            rounds.append(
                RoundStats(
                    round_id=round_id,
                    threshold=threshold,
                    nodes_remaining=int(detection.detect_items),
                    hubs_found=len(new_hubs),
                    islands_found=tally.islands_found,
                    nodes_islanded=tally.nodes_islanded,
                    tasks_generated=total_tasks,
                    tasks_dropped_classified=tally.dropped_classified,
                    tasks_dropped_visited=tally.dropped_visited,
                    tasks_dropped_cmax=tally.dropped_cmax,
                    interhub_edges_found=tally.interhub_found,
                    adjacency_fetches=tally.fetches + taskgen_fetches,
                    adjacency_bytes=tally.bytes + taskgen_bytes,
                    detect_items=detection.detect_items,
                )
            )
            total_fetch += tally.fetches + taskgen_fetches
            total_bytes += tally.bytes + taskgen_bytes
            total_detect += detection.detect_items
            total_scans += tally.scans

            yield RoundOutput(
                stats=rounds[-1],
                islands=tuple(islands[round_first_island:]),
                new_hub_ids=new_hubs,
                first_island_id=round_first_island,
            )

            threshold = config.next_threshold(threshold)
            round_id += 1

        if batched:
            interhub_arr = (
                np.stack([interhub_keys // n, interhub_keys % n], axis=1)
                if len(interhub_keys)
                else np.zeros((0, 2), dtype=np.int64)
            )
        else:
            interhub_arr = (
                np.asarray(sorted(interhub), dtype=np.int64).reshape(-1, 2)
                if interhub
                else np.zeros((0, 2), dtype=np.int64)
            )
        work = LocatorWork(
            total_adjacency_fetches=total_fetch,
            total_adjacency_bytes=total_bytes,
            total_detect_items=total_detect,
            total_bfs_scans=total_scans,
            per_engine_scans=dispatch.loads(),
        )
        return IslandizationResult(
            graph=graph,
            islands=islands,
            hub_ids=np.asarray(hub_ids, dtype=np.int64),
            hub_round=np.asarray(hub_rounds, dtype=np.int64),
            interhub_edges=interhub_arr,
            rounds=rounds,
            work=work,
        )

    # ------------------------------------------------------------------
    def _run_round_scalar(
        self,
        graph: CSRGraph,
        degrees: np.ndarray,
        threshold: int,
        round_id: int,
        visited_round: np.ndarray,
        task_hubs: np.ndarray,
        task_seeds: np.ndarray,
        islands: list[Island],
        classified: np.ndarray,
        interhub: set[tuple[int, int]],
        dispatch: _GreedyEngineDispatch,
        tally: _Round,
        tap_arrays: tuple[np.ndarray, ...] | None = None,
    ) -> int:
        """One round of Th3 through the per-edge oracle loop.

        Returns the number of nodes newly classified (islanded).
        ``tap_arrays`` (optional, pre-zeroed ``(scans, fetches, bytes,
        outcomes)``) collects each task's counters by task index for
        the stream's ``tap`` callback.
        """
        config = self.config
        state = BFSRoundState.create(
            graph, degrees, threshold, config.c_max, round_id, visited_round
        )
        newly_classified = 0
        for pos, (hub, a0) in enumerate(
            zip(task_hubs.tolist(), task_seeds.tolist())
        ):
            bytes_before = state.adjacency_bytes
            result = run_bfs_task(state, hub, a0)
            if result.scans:
                dispatch.add(result.scans)
            if tap_arrays is not None:
                tap_arrays[0][pos] = result.scans
                tap_arrays[1][pos] = result.fetches
                tap_arrays[2][pos] = state.adjacency_bytes - bytes_before
                tap_arrays[3][pos] = TASK_OUTCOME_CODES[result.outcome]
            if result.outcome is TaskOutcome.ISLAND:
                members = np.asarray(result.members, dtype=np.int64)
                islands.append(
                    Island.from_trusted_arrays(
                        round_id=round_id,
                        members=members,
                        hubs=np.asarray(result.hubs, dtype=np.int64),
                    )
                )
                classified[members] = True
                newly_classified += len(members)
                tally.islands_found += 1
                tally.nodes_islanded += len(members)
            elif result.outcome is TaskOutcome.SEED_IS_HUB:
                edge = (min(hub, a0), max(hub, a0))
                if edge not in interhub:
                    interhub.add(edge)
                    tally.interhub_found += 1
                tally.dropped_classified += 1
            elif result.outcome is TaskOutcome.ALREADY_VISITED:
                tally.dropped_visited += 1
            else:
                tally.dropped_cmax += 1
        tally.scans = state.scans
        tally.fetches = state.adjacency_fetches
        tally.bytes = state.adjacency_bytes
        return newly_classified


def islandize(
    graph: CSRGraph,
    config: LocatorConfig | None = None,
    *,
    store=None,
    max_workers: int | None = None,
) -> IslandizationResult:
    """Convenience wrapper: run the Island Locator on ``graph``.

    With ``config.partitions > 1`` the run is dispatched to the
    partition-parallel, out-of-core locator
    (:func:`repro.core.islandizer_partitioned.islandize_partitioned`);
    ``store`` and ``max_workers`` only apply there.  ``partitions == 1``
    runs monolithically in-process — no shard files, no worker fleet —
    which is also exactly what the partitioned path's single-shard
    oracle contract reproduces.
    """
    config = config or LocatorConfig()
    if config.partitions > 1:
        from repro.core.islandizer_partitioned import islandize_partitioned

        return islandize_partitioned(
            graph, config, store=store, max_workers=max_workers
        )
    return IslandLocator(config).run(graph)
