"""The Island Locator (Algorithm 1): round-based islandization.

Orchestrates the three concurrent tasks of Algorithm 1 — hub detection
(Th1), BFS task generation (Th2) and TP-BFS execution (Th3) — with the
paper's per-round synchronisation.  The software model runs the phases
sequentially inside each round; that is result-equivalent to the
asynchronous hardware because all three phases share one predicate
(``degree >= TH_round``) and synchronise at round boundaries.  The
*work* of each phase is still tracked separately so the hardware cycle
model can overlap them.

Termination: the threshold decays geometrically to ``th_min``; at
``th_min = 1`` every remaining node with an edge becomes a hub and
degree-0 nodes are swept into singleton islands, so the node list
always empties (DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.hub_detector import detect_new_hubs
from repro.core.tp_bfs import BFSRoundState, TaskOutcome, run_bfs_task
from repro.core.types import Island, IslandizationResult, LocatorWork, RoundStats
from repro.errors import IslandizationError
from repro.graph.csr import CSRGraph

__all__ = ["IslandLocator", "islandize"]

_MAX_ROUNDS = 1000  # safety net; real runs finish in < 20 rounds


class IslandLocator:
    """Runtime graph restructuring: find hubs and islands by rounds."""

    def __init__(self, config: LocatorConfig | None = None) -> None:
        self.config = config or LocatorConfig()

    def run(self, graph: CSRGraph) -> IslandizationResult:
        """Islandize ``graph`` (which must not contain self-loops).

        Self-loops carry no structural information for clustering and
        are handled by the consumer's normalisation (the GCN ``A + I``
        diagonal), so the locator rejects them to keep edge accounting
        unambiguous.
        """
        if graph.has_self_loops():
            raise IslandizationError(
                "islandize expects a graph without self-loops; call "
                "graph.without_self_loops() first"
            )
        config = self.config
        n = graph.num_nodes
        degrees = graph.degrees.astype(np.int64)
        classified = np.zeros(n, dtype=bool)
        is_hub = np.zeros(n, dtype=bool)
        visited_round = np.zeros(n, dtype=np.int64)

        islands: list[Island] = []
        hub_ids: list[int] = []
        hub_rounds: list[int] = []
        interhub: set[tuple[int, int]] = set()
        rounds: list[RoundStats] = []
        engine_load = np.zeros(config.p2, dtype=np.int64)

        total_fetch = 0
        total_bytes = 0
        total_detect = 0
        total_scans = 0

        threshold = config.initial_threshold(degrees)
        round_id = 1
        while classified.sum() < n:
            if round_id > _MAX_ROUNDS:
                raise IslandizationError(
                    f"locator failed to converge after {_MAX_ROUNDS} rounds"
                )
            detection = detect_new_hubs(degrees, classified, threshold)
            new_hubs = detection.new_hubs
            classified[new_hubs] = True
            is_hub[new_hubs] = True
            hub_ids.extend(new_hubs.tolist())
            hub_rounds.extend([round_id] * len(new_hubs))
            for iso in detection.isolated.tolist():
                islands.append(
                    Island(
                        island_id=len(islands),
                        round_id=round_id,
                        members=np.asarray([iso], dtype=np.int64),
                        hubs=np.zeros(0, dtype=np.int64),
                    )
                )
                classified[iso] = True

            # --- Th2: task generation (reads each new hub's adjacency).
            # Vectorised CSR gather: one (hub, a0) task per adjacency
            # entry of each new hub, emitted hub-major with neighbours
            # in row (sorted) order — the exact sequence the scalar
            # per-hub loop produced, so round stats are unchanged.
            starts = graph.indptr[new_hubs]
            counts = graph.indptr[new_hubs + 1] - starts
            total_tasks = int(counts.sum())
            prefix = np.cumsum(counts) - counts
            flat = np.arange(total_tasks, dtype=np.int64) + np.repeat(
                starts - prefix, counts
            )
            task_hubs = np.repeat(new_hubs, counts)
            task_seeds = graph.indices[flat]
            tasks: list[tuple[int, int]] = list(
                zip(task_hubs.tolist(), task_seeds.tolist())
            )
            taskgen_fetches = len(new_hubs)
            taskgen_bytes = total_tasks * 4

            # --- Th3: TP-BFS over the task queue.
            state = BFSRoundState.create(
                graph, degrees, threshold, config.c_max, round_id, visited_round
            )
            islands_found = 0
            nodes_islanded = 0
            dropped_classified = 0
            dropped_visited = 0
            dropped_cmax = 0
            interhub_found = 0
            for hub, a0 in tasks:
                result = run_bfs_task(state, hub, a0)
                if result.scans:
                    # Greedy idle-engine dispatch for the P2 work model.
                    engine = int(np.argmin(engine_load))
                    engine_load[engine] += result.scans
                if result.outcome is TaskOutcome.ISLAND:
                    members = np.asarray(result.members, dtype=np.int64)
                    islands.append(
                        Island(
                            island_id=len(islands),
                            round_id=round_id,
                            members=members,
                            hubs=np.asarray(result.hubs, dtype=np.int64),
                        )
                    )
                    classified[members] = True
                    islands_found += 1
                    nodes_islanded += len(members)
                elif result.outcome is TaskOutcome.SEED_IS_HUB:
                    edge = (min(hub, a0), max(hub, a0))
                    if edge not in interhub:
                        interhub.add(edge)
                        interhub_found += 1
                    dropped_classified += 1
                elif result.outcome is TaskOutcome.ALREADY_VISITED:
                    dropped_visited += 1
                else:
                    dropped_cmax += 1

            rounds.append(
                RoundStats(
                    round_id=round_id,
                    threshold=threshold,
                    nodes_remaining=int(detection.detect_items),
                    hubs_found=len(new_hubs),
                    islands_found=islands_found,
                    nodes_islanded=nodes_islanded,
                    tasks_generated=len(tasks),
                    tasks_dropped_classified=dropped_classified,
                    tasks_dropped_visited=dropped_visited,
                    tasks_dropped_cmax=dropped_cmax,
                    interhub_edges_found=interhub_found,
                    adjacency_fetches=state.adjacency_fetches + taskgen_fetches,
                    adjacency_bytes=state.adjacency_bytes + taskgen_bytes,
                    detect_items=detection.detect_items,
                )
            )
            total_fetch += state.adjacency_fetches + taskgen_fetches
            total_bytes += state.adjacency_bytes + taskgen_bytes
            total_detect += detection.detect_items
            total_scans += state.scans

            threshold = config.next_threshold(threshold)
            round_id += 1

        interhub_arr = (
            np.asarray(sorted(interhub), dtype=np.int64).reshape(-1, 2)
            if interhub
            else np.zeros((0, 2), dtype=np.int64)
        )
        work = LocatorWork(
            total_adjacency_fetches=total_fetch,
            total_adjacency_bytes=total_bytes,
            total_detect_items=total_detect,
            total_bfs_scans=total_scans,
            per_engine_scans=engine_load,
        )
        return IslandizationResult(
            graph=graph,
            islands=islands,
            hub_ids=np.asarray(hub_ids, dtype=np.int64),
            hub_round=np.asarray(hub_rounds, dtype=np.int64),
            interhub_edges=interhub_arr,
            rounds=rounds,
            work=work,
        )


def islandize(
    graph: CSRGraph, config: LocatorConfig | None = None
) -> IslandizationResult:
    """Convenience wrapper: run the Island Locator on ``graph``."""
    return IslandLocator(config).run(graph)
