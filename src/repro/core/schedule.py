"""Event-driven PE schedule model (extension of the paper's §3.3.2).

The analytic model in :mod:`repro.core.accelerator` treats the PE array
as one aggregate server.  This module refines that with a discrete-event
schedule: every island/inter-hub task is dispatched to the
earliest-free PE ("The arbiters ... forward them to the idle PEs"), so
per-PE busy/idle time, makespan, and utilisation become observable —
including the load skew caused by a few very large islands, which the
aggregate model cannot see.

Task cost model (cycles): an island task occupies a PE for its
combination MACs plus its post-pruning aggregation MACs, divided by the
PE's slice of the MAC array.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.bitmap import IslandTask
from repro.core.config import ConsumerConfig
from repro.core.preagg import scan_costs
from repro.errors import SimulationError
from repro.hw.config import HardwareConfig

__all__ = ["ScheduledTask", "PEScheduleReport", "schedule_islands"]


@dataclass(frozen=True)
class ScheduledTask:
    """One dispatched task in the schedule."""

    task_index: int
    pe: int
    start_cycle: float
    end_cycle: float

    @property
    def duration(self) -> float:
        """Busy cycles on the owning PE."""
        return self.end_cycle - self.start_cycle


@dataclass
class PEScheduleReport:
    """Outcome of scheduling one layer's island tasks on the PE array."""

    num_pes: int
    tasks: list[ScheduledTask] = field(default_factory=list)
    busy_cycles: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def makespan(self) -> float:
        """Cycles until the last PE finishes."""
        return max((t.end_cycle for t in self.tasks), default=0.0)

    @property
    def utilization(self) -> float:
        """Mean busy fraction across PEs over the makespan."""
        span = self.makespan
        if span == 0:
            return 1.0
        return float(self.busy_cycles.mean() / span)

    @property
    def load_imbalance(self) -> float:
        """max/mean busy cycles (1.0 = perfectly balanced)."""
        if len(self.busy_cycles) == 0 or self.busy_cycles.sum() == 0:
            return 1.0
        return float(self.busy_cycles.max() / self.busy_cycles.mean())

    def per_pe_tasks(self) -> list[int]:
        """Task count dispatched to each PE."""
        counts = [0] * self.num_pes
        for t in self.tasks:
            counts[t.pe] += 1
        return counts


def island_task_cycles(
    task: IslandTask,
    *,
    in_dim: int,
    out_dim: int,
    feature_density: float,
    preagg_k: int,
    macs_per_pe: float,
) -> float:
    """Cycles one island task occupies its PE.

    Combination of the task's members (hub XW rows are cached and cost
    nothing here after first appearance — charged to the first task
    conservatively would double-count, so hubs are excluded) plus the
    post-pruning aggregation of the island bitmap.
    """
    if macs_per_pe <= 0:
        raise SimulationError("macs_per_pe must be positive")
    comb = task.num_members * in_dim * feature_density * out_dim
    scan = scan_costs(task.bitmap, preagg_k, boundary=task.num_hubs)
    agg = scan.total_ops * out_dim
    return (comb + agg) / macs_per_pe


def schedule_islands(
    tasks: list[IslandTask],
    hw: HardwareConfig,
    config: ConsumerConfig,
    *,
    in_dim: int,
    out_dim: int,
    feature_density: float = 1.0,
) -> PEScheduleReport:
    """Dispatch island tasks to earliest-free PEs (event-driven).

    Tasks are dispatched in locator-emission order (the Island Collector
    forwards islands as they form), each to the PE that frees first —
    a min-heap of (free_time, pe).
    """
    num_pes = config.num_pes
    macs_per_pe = hw.num_macs * hw.compute_utilization / num_pes
    heap: list[tuple[float, int]] = [(0.0, pe) for pe in range(num_pes)]
    heapq.heapify(heap)
    busy = np.zeros(num_pes, dtype=np.float64)
    scheduled: list[ScheduledTask] = []
    for index, task in enumerate(tasks):
        free_at, pe = heapq.heappop(heap)
        cost = island_task_cycles(
            task,
            in_dim=in_dim,
            out_dim=out_dim,
            feature_density=feature_density,
            preagg_k=config.preagg_k,
            macs_per_pe=macs_per_pe,
        )
        end = free_at + cost
        busy[pe] += cost
        scheduled.append(
            ScheduledTask(task_index=index, pe=pe, start_cycle=free_at,
                          end_cycle=end)
        )
        heapq.heappush(heap, (end, pe))
    return PEScheduleReport(num_pes=num_pes, tasks=scheduled, busy_cycles=busy)
