"""Configuration of the Island Locator (Algorithm 1) and Island
Consumer (§3.3), plus the backend/pipeline execution switches.

The paper leaves the hub-threshold schedule (``TH0`` and ``Decay()``)
unspecified; the defaults here start at a high degree quantile and halve
each round, which empirically classifies the evaluation graphs within a
handful of rounds (Figure 9's "several rounds").  Both knobs are
exposed, as are the parallel factors P1/P2 and the island-size cap
``c_max`` (Algorithm 1's inputs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["LocatorConfig", "ConsumerConfig"]


@dataclass(frozen=True)
class LocatorConfig:
    """Island Locator parameters (Algorithm 1).

    Attributes
    ----------
    p1:
        Parallel FIFOs in the hub detector (used by the cycle model).
    p2:
        Parallel TP-BFS engines (work is distributed across them).
    th0:
        Initial hub threshold; ``None`` selects the ``th0_quantile`` of
        the degree distribution (clamped to at least 4).
    th0_quantile:
        Degree quantile used when ``th0`` is None.
    decay:
        Multiplicative threshold decay per round (0 < decay < 1).
    th_min:
        Smallest threshold; at ``th_min`` every remaining node with a
        degree ≥ th_min becomes a hub, which guarantees termination.
    c_max:
        Maximum members per island (TP-BFS break condition B).
    backend:
        Software implementation of the TP-BFS hot path.  ``"batched"``
        (default) runs the vectorized stamp-array kernel of
        ``repro.core.tp_bfs_batched``; ``"scalar"`` runs the original
        per-edge Python loop of ``repro.core.tp_bfs``, kept as the
        oracle the batched kernel is tested against.  Both produce the
        exact same :class:`~repro.core.types.IslandizationResult`; the
        backend is still part of the config digest so cached artifacts
        never mix backends.
    partitions:
        Number of graph shards for partitioned, out-of-core
        islandization (``repro.core.islandizer_partitioned``).  ``1``
        (default) runs the monolithic locator; values > 1 split the
        graph with ``partition_strategy``, islandize every shard in a
        worker-process fleet over memory-mapped shard files, and merge
        the shard results into one ``IslandizationResult``.  Like the
        backend switch, the value is part of the config digest so
        cached islandizations never mix partition settings.
    partition_strategy:
        How the graph is split (``repro.graph.partition``):
        ``"separator"`` (default) grows a degree-aware vertex separator
        using this config's own threshold schedule, so every
        cross-shard path runs through nodes the locator would classify
        as hubs anyway; ``"range"`` slices contiguous node ranges
        balanced by edge count and promotes the endpoints of every
        cross-range edge — the naive baseline the separator strategy is
        measured against.
    incremental:
        Record the extra per-round bookkeeping
        (``repro.core.islandizer_incremental.IncrementalState``) that
        lets a cached result be *updated* under an edge delta instead
        of re-islandized from scratch.  The result itself is identical
        with or without recording; the flag is still part of the config
        digest so stores pair every islandization with its state
        artifact unambiguously.  With ``partitions > 1`` the recording
        runs per shard and the state is a
        ``repro.core.islandizer_pincremental.PartitionedIncrementalState``
        — one per-shard state plus the partition bookkeeping that
        routes later edits to the shards they actually touch.
    """

    p1: int = 64
    p2: int = 64
    th0: int | None = None
    th0_quantile: float = 0.99
    decay: float = 0.5
    th_min: int = 1
    c_max: int = 64
    backend: str = "batched"
    partitions: int = 1
    partition_strategy: str = "separator"
    incremental: bool = False

    def __post_init__(self) -> None:
        if self.p1 < 1 or self.p2 < 1:
            raise ConfigError("parallel factors must be >= 1")
        if self.backend not in ("batched", "scalar"):
            raise ConfigError(
                f"backend must be 'batched' or 'scalar' (got {self.backend!r})"
            )
        if self.th0 is not None and self.th0 < 1:
            raise ConfigError("th0 must be >= 1")
        if not 0.0 < self.th0_quantile <= 1.0:
            raise ConfigError("th0_quantile must be in (0, 1]")
        if not 0.0 < self.decay < 1.0:
            raise ConfigError("decay must be in (0, 1)")
        if self.th_min < 1:
            raise ConfigError("th_min must be >= 1")
        if self.c_max < 1:
            raise ConfigError("c_max must be >= 1")
        if self.partitions < 1:
            raise ConfigError("partitions must be >= 1")
        if self.partition_strategy not in ("separator", "range"):
            raise ConfigError(
                f"partition_strategy must be 'separator' or 'range' "
                f"(got {self.partition_strategy!r})"
            )
        if not isinstance(self.incremental, bool):
            raise ConfigError("incremental must be a bool")

    def initial_threshold(self, degrees: np.ndarray) -> int:
        """Resolve TH0 for a given degree array."""
        if self.th0 is not None:
            return self.th0
        if len(degrees) == 0:
            return max(4, self.th_min)
        quantile = float(np.quantile(degrees, self.th0_quantile))
        return max(4, self.th_min, int(np.ceil(quantile)))

    def next_threshold(self, threshold: int) -> int:
        """Apply Decay(): geometric decay, floored at ``th_min``."""
        decayed = int(np.floor(threshold * self.decay))
        return max(self.th_min, decayed)


@dataclass(frozen=True)
class ConsumerConfig:
    """Island Consumer parameters (§3.3).

    Attributes
    ----------
    num_pes:
        Processing elements (each owns a DHUB-PRC bank and a ring stop).
    preagg_k:
        Pre-aggregation group width *k*: the scan window is 1 × k and
        combination results of every k consecutive local columns are
        pre-summed.  The paper's worked example uses k = 2 and leaves k
        customisable; k = 6 maximises average pruning on the evaluation
        graphs (see benchmarks/bench_ablation.py) and is the default.
    backend:
        Software implementation of the consumer's task assembly and
        layer execution.  ``"batched"`` (default) runs the vectorized
        multi-island kernels of ``repro.core.consumer_batched``;
        ``"scalar"`` runs the original per-island Python loop, kept as
        the oracle the batched path is tested against.  Both produce
        exactly the same counts, traffic, ring statistics and (in
        functional mode) output matrices; the backend is still part of
        the config digest so cached artifacts never mix backends.
    pipeline:
        How the consumer ingests the locator's islands (§3.1.1,
        Fig. 3).  ``"streamed"`` (default, the paper's architecture)
        consumes per-round chunks as the Island Locator produces them
        and reports end-to-end cycles from the measured per-round
        release/work schedule; ``"staged"`` runs the two phases
        strictly back-to-back and reports their sum; ``"event"`` runs
        the discrete-event refinement (``repro.core.event_sim``) —
        per-island release inside each round, PE contention, ring and
        DHUB-PRC port arbitration, hub-cache occupancy — and
        additionally reports per-island latency records with p50/p99
        summaries.  Counts, DRAM traffic, ring/cache statistics and
        functional outputs are byte-identical in all modes
        (``tests/test_pipeline_stream.py`` pins this); only the cycle
        model — ``total_cycles`` and everything derived from it —
        differs, and the event makespan is always sandwiched
        ``streamed <= event <= staged``.  Like ``backend``, the mode is
        part of the config digest, so cached reports and summary rows
        never mix pipeline modes.
    """

    num_pes: int = 8
    preagg_k: int = 6
    backend: str = "batched"
    pipeline: str = "streamed"

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigError("num_pes must be >= 1")
        if self.preagg_k < 2:
            raise ConfigError("preagg_k must be >= 2 (k=1 disables reuse)")
        if self.backend not in ("batched", "scalar"):
            raise ConfigError(
                f"backend must be 'batched' or 'scalar' (got {self.backend!r})"
            )
        if self.pipeline not in ("streamed", "staged", "event"):
            raise ConfigError(
                f"pipeline must be 'streamed', 'staged' or 'event' "
                f"(got {self.pipeline!r})"
            )
