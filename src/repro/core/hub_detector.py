"""Hub detection (Algorithm 2).

The hardware sweeps node degrees through P1 loop-back FIFOs each round;
nodes already classified are filtered out (Island Node Filter checking
the previous-round island table), the rest are compared against the
current threshold and popped to the hub buffer when they qualify.

Functionally this is one vectorised mask; the returned ``detect_items``
(degree entries swept) feeds the locator cycle model, which divides the
sweep across the P1 FIFOs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HubDetection", "detect_new_hubs"]


@dataclass(frozen=True)
class HubDetection:
    """Result of one round's hub sweep."""

    new_hubs: np.ndarray        # node ids, ascending (FIFO order)
    isolated: np.ndarray        # degree-0 leftovers -> singleton islands
    detect_items: int           # degree entries swept this round


def detect_new_hubs(
    degrees: np.ndarray,
    classified: np.ndarray,
    threshold: int,
) -> HubDetection:
    """Sweep unclassified nodes; split out hubs and isolated nodes.

    Parameters
    ----------
    degrees:
        Static structural degrees (loaded into the degree FIFOs once).
    classified:
        Boolean mask of nodes already classified (hub or islanded).
    threshold:
        Current round threshold ``TH_tmp``.

    Notes
    -----
    Degree-0 nodes can never be reached by TP-BFS (no hub will ever
    list them as a neighbour) nor pass any threshold, so the sweep
    classifies them directly as singleton islands; this is the
    termination guard discussed in DESIGN.md §6.
    """
    remaining = ~classified
    new_hubs = np.flatnonzero(remaining & (degrees >= threshold))
    isolated = np.flatnonzero(remaining & (degrees == 0))
    return HubDetection(
        new_hubs=new_hubs.astype(np.int64),
        isolated=isolated.astype(np.int64),
        detect_items=int(remaining.sum()),
    )
