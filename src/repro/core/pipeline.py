"""Locator/consumer pipeline overlap (§3.1.1, Fig. 3).

"the Processing Elements in the Island Consumer can process an island
as soon as it is formed ... I-GCN overlaps graph restructuring and
graph processing."

The consumer is modelled as a single aggregate server whose work
arrives in per-round batches.  Islands stream to the consumer *as they
form* (§3.1.1: no per-round synchronisation on the consumer side), so
round r's work becomes available from the round's *start*; only the
locator's production rate can starve the consumer.  For release times
``L_r`` (cumulative locator cycles when round r begins) and per-round
consumer work ``C_r``, the makespan of a work-conserving server is::

    makespan = max_r ( L_r + sum_{r' >= r} C_{r'} )

i.e. the last idle-wait start plus everything after it.  This collapses
to ``sum(C)`` when the locator is never the bottleneck and to
``L_last + C_last`` when it always is.  Two bounds sandwich it for any
release/work schedule (``tests/test_properties.py`` pins them)::

    max(sum(C), L_last + C_last) <= makespan <= L_last + sum(C)

The *staged* pipeline — run the locator to completion, then the
consumer — costs the locator's full cycles plus ``sum(C)``, which is
at least the streamed makespan (releases never exceed the locator
total), so overlap wins strictly whenever the locator spends any
cycles at all.

:func:`streamed_schedule` builds the measured ``(L, C)`` vectors of
one streamed inference: releases from the locator's per-round cycle
estimates, work chunks by distributing the total consumer cycles over
the rounds' *measured* aggregation work — the per-chunk MAC tallies
:meth:`IslandConsumer.run_layer_chunked
<repro.core.consumer.IslandConsumer.run_layer_chunked>` records while
executing the per-round task chunks :meth:`IslandLocator.stream
<repro.core.islandizer.IslandLocator.stream>` handed over — not by
node-count shares or any other analytic proxy.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["pipelined_makespan", "streamed_schedule"]


def pipelined_makespan(
    release_times: Sequence[float], work_chunks: Sequence[float]
) -> float:
    """Makespan of batched work with release times (see module docs).

    ``release_times`` must be non-decreasing and the same length as
    ``work_chunks``.
    """
    if len(release_times) != len(work_chunks):
        raise ValueError("release_times and work_chunks must align")
    if not release_times:
        return 0.0
    prev = 0.0
    for t in release_times:
        if t < prev:
            raise ValueError("release_times must be non-decreasing")
        prev = t
    makespan = 0.0
    remaining = float(sum(work_chunks))
    for release, work in zip(release_times, work_chunks):
        makespan = max(makespan, release + remaining)
        remaining -= work
    return makespan


def streamed_schedule(
    round_cycles: Sequence[float],
    round_work: Sequence[float],
    consumer_cycles: float,
) -> tuple[list[float], list[float]]:
    """Measured ``(release_times, work_chunks)`` of a streamed inference.

    ``round_cycles`` are the locator's per-round cycle estimates;
    round r's islands stream out while the round runs, so its chunk is
    released at the round's *start* — ``release_times[r]`` is the
    cumulative locator time before round r.  ``round_work`` is the
    measured per-round consumer work (aggregation MACs of the islands
    each round finalized, summed over layers); the total
    ``consumer_cycles`` — which also covers work that is not
    per-island, like combination and memory time — is distributed over
    rounds proportionally to it.  Rounds that finalized no islands get
    zero-work chunks; if *no* round carried measurable work (e.g. a
    hub-only graph) the distribution falls back to uniform so the
    schedule still conserves ``sum(C) == consumer_cycles``.
    """
    if len(round_cycles) != len(round_work):
        raise ValueError("round_cycles and round_work must align")
    releases: list[float] = []
    cumulative = 0.0
    for cycles in round_cycles:
        releases.append(cumulative)
        cumulative += float(cycles)
    total_work = float(sum(round_work))
    if total_work > 0.0:
        chunks = [
            float(consumer_cycles) * float(w) / total_work for w in round_work
        ]
    elif round_work:
        chunks = [float(consumer_cycles) / len(round_work)] * len(round_work)
    else:
        chunks = []
    return releases, chunks
