"""Locator/consumer pipeline overlap (§3.1.1).

"the Processing Elements in the Island Consumer can process an island
as soon as it is formed ... I-GCN overlaps graph restructuring and
graph processing."

The consumer is modelled as a single aggregate server whose work
arrives in per-round batches released when the locator finishes each
round.  For release times ``L_r`` (cumulative locator cycles through
round r) and per-round consumer work ``C_r``, the makespan of a
work-conserving server is::

    makespan = max_r ( L_r + sum_{r' >= r} C_{r'} )

i.e. the last idle-wait start plus everything after it.  This collapses
to ``sum(C)`` when the locator is never the bottleneck and to
``L_last + C_last`` when it always is.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["pipelined_makespan"]


def pipelined_makespan(
    release_times: Sequence[float], work_chunks: Sequence[float]
) -> float:
    """Makespan of batched work with release times (see module docs).

    ``release_times`` must be non-decreasing and the same length as
    ``work_chunks``.
    """
    if len(release_times) != len(work_chunks):
        raise ValueError("release_times and work_chunks must align")
    if not release_times:
        return 0.0
    prev = 0.0
    for t in release_times:
        if t < prev:
            raise ValueError("release_times must be non-decreasing")
        prev = t
    makespan = 0.0
    remaining = float(sum(work_chunks))
    for release, work in zip(release_times, work_chunks):
        makespan = max(makespan, release + remaining)
        remaining -= work
    return makespan
