"""Batched Island Consumer backend: vectorized task assembly + execution
(§3.3, Figures 6-7; chunked for the §3.1.1/Fig. 3 streamed pipeline).

The scalar consumer (``repro.core.consumer``) builds one dense bitmap
per island in a per-member Python loop and then walks islands one at a
time per layer.  After the PR-3 locator speedup that loop dominates
every simulated layer.  This module applies the same playbook to the
consumer:

* :class:`TaskBatch` — a packed multi-island task representation:
  concatenated local-node / hub arrays with offsets plus one COO list
  of bitmap entries, assembled in a *single* vectorized pass over the
  global CSR (one adjacency gather for every member row at once, one
  sorted-key join for the member→hub columns) instead of per-member
  ``searchsorted`` calls.
* :func:`run_layer_batched` — evaluates the 1×k window scan for *all*
  island tasks in bulk: per-(task, group, row) non-zero counts come
  from one ``bincount`` over the COO entries, window classification is
  a handful of elementwise ops over the whole batch
  (:func:`repro.core.preagg.classify_windows`), and the classification
  is cached on the batch so later layers skip it entirely.  Ring
  emissions, DHUB-PRC updates and HUB-XW-cache accesses are batched
  across tasks with per-call rounding parity; functional mode groups
  tasks by bitmap shape and runs the add-vs-subtract scan as stacked
  matmuls.

The contract with the scalar oracle is **exact equality** — identical
:class:`~repro.core.consumer.LayerCounts`,
:class:`~repro.core.preagg.ScanCounts`, DRAM traffic, ring statistics,
DHUB-PRC bank counters, and byte-identical functional outputs.  The
trickiest part is floating-point accumulation order: hub partial sums
receive contributions from many islands, so the fold below replays the
scalar loop's per-hub contribution order exactly (contributions are
ranked by their per-hub occurrence index and applied rank-by-rank,
which is the same left-fold the sequential loop performs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.nputil import cumsum0 as _cumsum0
from repro.core.preagg import ScanCounts, classify_windows, group_layout_batch
from repro.core.types import IslandizationResult
from repro.errors import SimulationError

__all__ = [
    "TaskBatch",
    "run_layer_batched",
    "run_island_chunk",
    "run_interhub_batched",
]

#: Bitmap-cell budget per functional shape chunk: caps the dense
#: (stack, L, L) bool stacks and their float64 matmul operands at a few
#: hundred MB regardless of how many same-shape islands a graph has.
_CHUNK_CELLS = 1 << 24

#: Element budget for one hub-fold block: bounds the dense
#: ``(active hubs, ranks + 1, channels)`` cumsum operand to ~16 MB of
#: float64 regardless of how many islands the hottest hub touches.
_FOLD_BLOCK_ELEMS = 1 << 21


def _empty() -> np.ndarray:
    return np.zeros(0, dtype=np.int64)


@dataclass
class _ScanClasses:
    """Cached per-k window classification of a whole :class:`TaskBatch`.

    Cells are laid out task-major, then group-major, then row:
    ``cell_offsets[t] + g * L[t] + r``.  ``counts`` is the merged
    :class:`ScanCounts` of every task (the scalar per-task merge is a
    plain integer sum, so one bulk total is identical).
    """

    counts: ScanCounts
    groups: np.ndarray           # (T,) windows-per-row of each task
    group_offsets: np.ndarray    # (T+1,)
    group_starts: np.ndarray     # flat per-(task, group) column starts
    group_widths: np.ndarray     # flat per-(task, group) widths
    cell_offsets: np.ndarray     # (T+1,) into the flat cell arrays
    full: np.ndarray             # flat bool per (task, group, row)
    subtract: np.ndarray
    direct: np.ndarray
    sub_tasks: np.ndarray        # (T,) any subtract-class window
    dir_tasks: np.ndarray        # (T,) any direct-class window


@dataclass
class TaskBatch:
    """All island tasks of one islandization, packed for bulk execution.

    ``local_nodes`` concatenates every task's ``[hubs..., members...]``
    local order; ``entry_task/row/col`` is the COO of every task's
    bitmap (deduplicated, sorted task-major then row-major), from which
    both the window scan and — when functional mode needs them — dense
    per-shape bitmap stacks are derived.  ``nnz`` is precomputed once
    per task (the scalar :class:`~repro.core.bitmap.IslandTask`
    recomputed it per access until it grew a cache).
    """

    num_hubs: np.ndarray         # (T,)
    num_locals: np.ndarray       # (T,)
    local_nodes: np.ndarray      # flat global ids, [hubs..., members...]
    local_offsets: np.ndarray    # (T+1,)
    hub_nodes: np.ndarray        # flat attached-hub ids per task
    hub_offsets: np.ndarray      # (T+1,)
    entry_task: np.ndarray       # COO bitmap entries (local coordinates)
    entry_row: np.ndarray
    entry_col: np.ndarray
    entry_offsets: np.ndarray    # (T+1,) per-task COO slices
    nnz: np.ndarray              # (T,) directed entries per task
    _scan_cache: dict[int, _ScanClasses] = field(
        default_factory=dict, repr=False
    )

    @property
    def num_tasks(self) -> int:
        """Number of island tasks in the batch."""
        return len(self.num_hubs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls, result: IslandizationResult, *, add_self_loops: bool
    ) -> "TaskBatch":
        """Assemble every island's task in one vectorized CSR pass.

        Produces exactly the bitmap content of
        :func:`repro.core.consumer.prepare_tasks`: member rows from the
        members' adjacency, hub rows mirrored from the member→hub
        entries (the L-shape), the member diagonal when the model adds
        self-loops, and neighbours outside the task's local set dropped.
        """
        return cls.from_islands(
            result.graph, result.islands, add_self_loops=add_self_loops
        )

    @classmethod
    def from_islands(
        cls, graph, islands, *, add_self_loops: bool, scratch: dict | None = None
    ) -> "TaskBatch":
        """Pack an explicit island sequence against ``graph``'s CSR.

        ``islands`` may be any subset of an islandization — in the
        streamed pipeline it is one round's chunk from a
        :class:`~repro.core.types.RoundOutput`, assembled while the
        locator is still producing later rounds.  Task packing is
        island-local, so a per-round slice holds exactly the entries
        those tasks have in the monolithic full-result batch.

        ``scratch`` (optional) is a dict the caller keeps across calls
        to reuse the two O(num_nodes) member-lookup maps instead of
        allocating them per call — the streamed pipeline passes one
        per inference, so per-round assembly costs O(chunk) rather
        than O(num_nodes) per round.  The maps are restored to their
        clean state (written positions reset) before returning, which
        keeps reuse exact for any island subset.
        """
        islands = list(islands)
        num_tasks = len(islands)
        n = graph.num_nodes
        num_hubs = np.fromiter(
            (i.num_hubs for i in islands), dtype=np.int64, count=num_tasks
        )
        num_members = np.fromiter(
            (i.num_members for i in islands), dtype=np.int64, count=num_tasks
        )
        num_locals = num_hubs + num_members
        local_offsets = _cumsum0(num_locals)
        hub_offsets = _cumsum0(num_hubs)
        member_offsets = _cumsum0(num_members)
        total_hubs = int(hub_offsets[-1])
        total_members = int(member_offsets[-1])
        if num_tasks:
            hubs_flat = np.concatenate(
                [i.hubs for i in islands]
            ).astype(np.int64, copy=False)
            members_flat = np.concatenate(
                [i.members for i in islands]
            ).astype(np.int64, copy=False)
        else:
            hubs_flat, members_flat = _empty(), _empty()

        # Interleave into the per-task [hubs..., members...] local order.
        local_nodes = np.empty(int(local_offsets[-1]), dtype=np.int64)
        hub_rank = (
            np.arange(total_hubs, dtype=np.int64)
            - np.repeat(hub_offsets[:-1], num_hubs)
        )
        local_nodes[np.repeat(local_offsets[:-1], num_hubs) + hub_rank] = (
            hubs_flat
        )
        mem_rank = (
            np.arange(total_members, dtype=np.int64)
            - np.repeat(member_offsets[:-1], num_members)
        )
        local_nodes[
            np.repeat(local_offsets[:-1] + num_hubs, num_members) + mem_rank
        ] = members_flat

        # Members belong to exactly one island: global row maps
        # (allocated fresh, or reused from the caller's scratch dict —
        # kept clean between calls by the reset below).
        if scratch is not None and len(scratch.get("member_task", ())) == n:
            member_task = scratch["member_task"]
            member_local = scratch["member_local"]
        else:
            member_task = np.full(n, -1, dtype=np.int64)
            member_local = np.full(n, -1, dtype=np.int64)
            if scratch is not None:
                scratch["member_task"] = member_task
                scratch["member_local"] = member_local
        member_task[members_flat] = np.repeat(
            np.arange(num_tasks, dtype=np.int64), num_members
        )
        member_local[members_flat] = np.repeat(num_hubs, num_members) + mem_rank

        # Hubs attach to many islands: a sorted (task, hub) → local
        # column table answers every member→hub edge in one join.
        span = max(n, 1)
        pair_keys = (
            np.repeat(np.arange(num_tasks, dtype=np.int64), num_hubs) * span
            + hubs_flat
        )
        key_order = np.argsort(pair_keys)
        sorted_keys = pair_keys[key_order]
        sorted_local = hub_rank[key_order]

        # One adjacency gather over every member row of every task.
        indptr = graph.indptr.astype(np.int64, copy=False)
        deg = indptr[members_flat + 1] - indptr[members_flat]
        num_edges = int(deg.sum())
        edge_off = _cumsum0(deg)
        flat = (
            np.arange(num_edges, dtype=np.int64)
            - np.repeat(edge_off[:-1], deg)
            + np.repeat(indptr[members_flat], deg)
        )
        neigh = graph.indices[flat].astype(np.int64, copy=False)
        src_task = np.repeat(member_task[members_flat], deg)
        src_row = np.repeat(member_local[members_flat], deg)

        same = member_task[neigh] == src_task
        parts_task = [src_task[same]]
        parts_row = [src_row[same]]
        parts_col = [member_local[neigh[same]]]
        rest = ~same
        if rest.any() and len(sorted_keys):
            query = src_task[rest] * span + neigh[rest]
            pos = np.searchsorted(sorted_keys, query)
            pos = np.minimum(pos, len(sorted_keys) - 1)
            # Neighbours that are neither members of this island nor
            # attached hubs are dropped, as the scalar builder drops
            # them (a valid islandization produces none).
            hit = sorted_keys[pos] == query
            hub_task = src_task[rest][hit]
            hub_row = src_row[rest][hit]
            hub_col = sorted_local[pos[hit]]
            parts_task += [hub_task, hub_task]
            parts_row += [hub_row, hub_col]     # mirrored L-shape rows
            parts_col += [hub_col, hub_row]
        if add_self_loops and total_members:
            diag_task = member_task[members_flat]
            diag_row = member_local[members_flat]
            parts_task.append(diag_task)
            parts_row.append(diag_row)
            parts_col.append(diag_row)
        entry_task = np.concatenate(parts_task)
        entry_row = np.concatenate(parts_row)
        entry_col = np.concatenate(parts_col)
        if scratch is not None:
            # Restore the clean all(-1) state so the next call starts
            # from scratch regardless of which islands this one held.
            member_task[members_flat] = -1
            member_local[members_flat] = -1
        return cls._from_entries(
            num_hubs, num_locals, local_nodes, local_offsets,
            hubs_flat, hub_offsets, entry_task, entry_row, entry_col,
        )

    @classmethod
    def from_tasks(cls, tasks) -> "TaskBatch":
        """Pack already-built :class:`IslandTask` bitmaps (compat path)."""
        num_tasks = len(tasks)
        num_hubs = np.fromiter(
            (t.num_hubs for t in tasks), dtype=np.int64, count=num_tasks
        )
        num_locals = np.fromiter(
            (t.num_locals for t in tasks), dtype=np.int64, count=num_tasks
        )
        local_offsets = _cumsum0(num_locals)
        hub_offsets = _cumsum0(num_hubs)
        if num_tasks:
            local_nodes = np.concatenate(
                [t.local_nodes for t in tasks]
            ).astype(np.int64, copy=False)
            hub_nodes = np.concatenate(
                [t.hub_nodes for t in tasks]
            ).astype(np.int64, copy=False)
        else:
            local_nodes, hub_nodes = _empty(), _empty()
        parts_task, parts_row, parts_col = [_empty()], [_empty()], [_empty()]
        for i, task in enumerate(tasks):
            rows, cols = np.nonzero(task.bitmap)
            parts_task.append(np.full(len(rows), i, dtype=np.int64))
            parts_row.append(rows.astype(np.int64, copy=False))
            parts_col.append(cols.astype(np.int64, copy=False))
        return cls._from_entries(
            num_hubs, num_locals, local_nodes, local_offsets,
            hub_nodes, hub_offsets,
            np.concatenate(parts_task), np.concatenate(parts_row),
            np.concatenate(parts_col),
        )

    @classmethod
    def _from_entries(
        cls, num_hubs, num_locals, local_nodes, local_offsets,
        hub_nodes, hub_offsets, entry_task, entry_row, entry_col,
    ) -> "TaskBatch":
        """Canonicalise COO entries (dedup + task/row-major sort)."""
        cell_base = _cumsum0(num_locals * num_locals)
        cell = (
            cell_base[entry_task]
            + entry_row * num_locals[entry_task]
            + entry_col
        )
        # Sorted-unique by hand: np.unique's hash path is several times
        # slower than sort+diff on these multi-million-entry arrays.
        cell.sort()
        if len(cell):
            keep = np.empty(len(cell), dtype=bool)
            keep[0] = True
            np.not_equal(cell[1:], cell[:-1], out=keep[1:])
            cell = cell[keep]
        entry_task = np.searchsorted(cell_base, cell, side="right") - 1
        remainder = cell - cell_base[entry_task]
        entry_row = remainder // num_locals[entry_task]
        entry_col = remainder % num_locals[entry_task]
        nnz = np.bincount(entry_task, minlength=len(num_locals)).astype(
            np.int64, copy=False
        )
        return cls(
            num_hubs=num_hubs, num_locals=num_locals,
            local_nodes=local_nodes, local_offsets=local_offsets,
            hub_nodes=hub_nodes, hub_offsets=hub_offsets,
            entry_task=entry_task, entry_row=entry_row, entry_col=entry_col,
            entry_offsets=_cumsum0(nnz), nnz=nnz,
        )

    # ------------------------------------------------------------------
    # Window classification (shared across layers)
    # ------------------------------------------------------------------
    def scan_classes(self, k: int) -> _ScanClasses:
        """Classify every task's 1×k windows in bulk (cached per ``k``).

        The bitmap and ``k`` fully determine the scan, so every layer
        of an inference reuses one classification — the scalar oracle
        recomputes it per layer and must produce the same counts.
        """
        cached = self._scan_cache.get(k)
        if cached is not None:
            return cached
        num_tasks = self.num_tasks
        groups, group_offsets, group_starts, group_widths = group_layout_batch(
            self.num_hubs, self.num_locals, k
        )
        cells_per_task = groups * self.num_locals
        cell_offsets = _cumsum0(cells_per_task)
        total_cells = int(cell_offsets[-1])

        # Per-window non-zero counts from the COO entries: each entry
        # lands in its column's group; empty windows stay zero.
        task = self.entry_task
        hub_group_count = (self.num_hubs + k - 1) // k
        in_hub = self.entry_col < self.num_hubs[task]
        group_of = np.where(
            in_hub,
            self.entry_col // k,
            hub_group_count[task] + (self.entry_col - self.num_hubs[task]) // k,
        )
        cell = (
            cell_offsets[task] + group_of * self.num_locals[task]
            + self.entry_row
        )
        z = np.bincount(cell, minlength=total_cells).astype(np.int64, copy=False)
        group_task = np.repeat(np.arange(num_tasks, dtype=np.int64), groups)
        cell_widths = np.repeat(group_widths, self.num_locals[group_task])
        full, subtract, direct, cost = classify_windows(z, cell_widths)

        counts = ScanCounts(
            baseline_ops=int(z.sum()),
            scan_ops=int(cost.sum()),
            preagg_build_ops=int(np.maximum(group_widths - 1, 0).sum()),
            windows_full=int(full.sum()),
            windows_subtract=int(subtract.sum()),
            windows_direct=int(direct.sum()),
            windows_skipped=int((z == 0).sum()),
        )
        cell_task = np.repeat(np.arange(num_tasks, dtype=np.int64),
                              cells_per_task)
        sub_tasks = np.bincount(cell_task[subtract], minlength=num_tasks) > 0
        dir_tasks = np.bincount(cell_task[direct], minlength=num_tasks) > 0
        classes = _ScanClasses(
            counts=counts, groups=groups, group_offsets=group_offsets,
            group_starts=group_starts, group_widths=group_widths,
            cell_offsets=cell_offsets, full=full, subtract=subtract,
            direct=direct, sub_tasks=sub_tasks, dir_tasks=dir_tasks,
        )
        self._scan_cache[k] = classes
        return classes


# ----------------------------------------------------------------------
# Layer execution
# ----------------------------------------------------------------------
def run_layer_batched(consumer, state, batch: TaskBatch, interhub, meter):
    """Island + inter-hub phase of one layer, batched across all tasks.

    ``consumer`` is the owning ``IslandConsumer`` (ring + config),
    ``state`` the backend-shared ``_LayerState`` the prologue built.
    Counter/traffic/output-identical to ``IslandConsumer._run_scalar``.

    The staged execution is one island chunk covering everything;
    the streamed pipeline calls :func:`run_island_chunk` once per
    locator round and :func:`run_interhub_batched` once at the end —
    every counter is additive and every float accumulation keeps its
    per-hub order, so the two decompositions are byte-identical.
    """
    run_island_chunk(consumer, state, batch, meter, task_offset=0)
    run_interhub_batched(state, interhub, meter)


def run_island_chunk(
    consumer, state, batch: TaskBatch, meter, *, task_offset: int = 0
) -> None:
    """Island phase over one :class:`TaskBatch` (full batch or slice).

    ``task_offset`` is the global index of the batch's first task, so a
    per-round slice lands on the same PEs (ring sources, DHUB-PRC
    banks) the monolithic batch assigns.  Per-task accounting is
    batched: every counter is additive, so one bulk call per structure
    reproduces the scalar loop's totals, and the cache helpers round
    spills per call — a sequence of chunk calls therefore charges the
    meter byte-identically to one whole-batch call.
    """
    config = consumer.config
    classes = batch.scan_classes(config.preagg_k)
    state.counts.scan.merge(classes.counts)

    state.xw_cache.access_batch(batch.num_hubs, meter)
    if batch.num_tasks:
        pes = (
            task_offset + np.arange(batch.num_tasks, dtype=np.int64)
        ) % config.num_pes
        consumer.ring.send_batches(pes, batch.hub_nodes, batch.hub_offsets)
        state.prc.update_many(batch.hub_nodes, meter)

    if state.functional:
        total_pairs = len(batch.hub_nodes)
        if total_pairs:
            pair_pos = state.hub_pos[batch.hub_nodes]
            if pair_pos.min() < 0:
                raise SimulationError(
                    f"island task references unknown hub "
                    f"{int(batch.hub_nodes[int(pair_pos.argmin())])}"
                )
        else:
            pair_pos = _empty()
        contrib = np.empty(
            (total_pairs, state.xw_scaled.shape[1]), dtype=np.float64
        )
        _island_scans(state, batch, classes, contrib)
        _ordered_hub_fold(state, pair_pos, contrib)


def run_interhub_batched(state, interhub, meter) -> None:
    """Inter-hub phase of one layer (runs once, after all island chunks).

    Inter-hub validation runs in both modes (the scalar loop's
    functional-only check was a bug: counts mode silently accounted
    ops for plans referencing non-hub targets).  The functional
    contribution order — inter-hub edges, then hub self-loops, after
    every island task — is exactly the scalar loop's sequence.
    """
    counts = state.counts
    counts.interhub_ops = interhub.num_ops
    interhub.validate_targets(state.hub_pos)

    num_edges = len(interhub.directed_edges)
    if num_edges:
        state.xw_cache.access_repeat(num_edges, meter)
        state.prc.update_many(interhub.directed_edges[:, 0], meter)
    num_self = len(interhub.self_loop_hubs)
    if num_self:
        state.prc.update_many(interhub.self_loop_hubs, meter)

    if state.functional and num_edges + num_self:
        xw_scaled = state.xw_scaled
        contrib = np.empty(
            (num_edges + num_self, xw_scaled.shape[1]), dtype=np.float64
        )
        positions = np.empty(num_edges + num_self, dtype=np.int64)
        if num_edges:
            positions[:num_edges] = state.hub_pos[interhub.directed_edges[:, 0]]
            contrib[:num_edges] = xw_scaled[interhub.directed_edges[:, 1]]
        if num_self:
            positions[num_edges:] = state.hub_pos[interhub.self_loop_hubs]
            contrib[num_edges:] = xw_scaled[interhub.self_loop_hubs]
        _ordered_hub_fold(state, positions, contrib)


def _island_scans(state, batch: TaskBatch, classes: _ScanClasses,
                  contrib: np.ndarray) -> None:
    """Stacked add-vs-subtract scans, grouped by bitmap shape.

    Tasks sharing (locals, hubs) have identical group layouts, so each
    shape runs as three stacked matmuls — the same three products the
    scalar ``scan_aggregate`` performs per island, whose per-slice
    results NumPy's stacked ``matmul`` reproduces bitwise.  Member rows
    scatter straight into ``out``; hub rows land in ``contrib`` at
    their task's slot for the ordered fold.
    """
    num_tasks = batch.num_tasks
    if num_tasks == 0:
        return
    xw_scaled = state.xw_scaled
    out = state.out
    shape_key = (
        batch.num_locals * (int(batch.num_hubs.max()) + 1) + batch.num_hubs
    )
    # Group same-shape tasks in one sort instead of rescanning the key
    # array per distinct shape; the stable sort keeps each group's task
    # ids ascending, and group order is irrelevant (chunks only scatter
    # to disjoint rows).
    order = np.argsort(shape_key, kind="stable")
    bounds = np.concatenate((
        [0],
        np.flatnonzero(np.diff(shape_key[order])) + 1,
        [num_tasks],
    ))
    for lo_group, hi_group in zip(bounds[:-1], bounds[1:]):
        shape_tids = order[lo_group:hi_group]
        first = int(shape_tids[0])
        locals_n = int(batch.num_locals[first])
        hubs_n = int(batch.num_hubs[first])
        group_n = int(classes.groups[first])
        # Bound the dense temporaries (bitmap stacks and the float64
        # matmul operands scale with stack_n × L²): chunks are
        # per-task-independent, so splitting changes nothing bitwise
        # while the scalar oracle's peak stays the reference point.
        chunk = max(1, _CHUNK_CELLS // (locals_n * locals_n))
        for lo in range(0, len(shape_tids), chunk):
            _scan_shape_chunk(
                batch, classes, xw_scaled, out, contrib,
                shape_tids[lo:lo + chunk], locals_n, hubs_n, group_n,
            )


def _scan_shape_chunk(batch, classes, xw_scaled, out, contrib,
                      tids, locals_n, hubs_n, group_n):
    """Stacked scan of one bounded chunk of same-shape tasks."""
    first = int(tids[0])
    stack_n = len(tids)
    g0 = int(classes.group_offsets[first])
    starts_shape = classes.group_starts[g0:g0 + group_n]
    widths_shape = classes.group_widths[g0:g0 + group_n]

    locs = batch.local_nodes[
        batch.local_offsets[tids][:, None]
        + np.arange(locals_n, dtype=np.int64)
    ]
    xw_stack = xw_scaled[locs]                      # (S, L, C)
    big_starts = (
        (np.arange(stack_n, dtype=np.int64) * locals_n)[:, None]
        + starts_shape
    ).ravel()
    group_sums = np.add.reduceat(
        xw_stack.reshape(stack_n * locals_n, -1), big_starts, axis=0
    ).reshape(stack_n, group_n, -1)

    cell_idx = (
        classes.cell_offsets[tids][:, None]
        + np.arange(group_n * locals_n, dtype=np.int64)
    )
    full_gl = classes.full[cell_idx].reshape(stack_n, group_n, locals_n)
    sub_gl = classes.subtract[cell_idx].reshape(stack_n, group_n, locals_n)
    acc = np.zeros((stack_n, locals_n, xw_stack.shape[2]))
    acc += np.matmul(
        (full_gl | sub_gl).transpose(0, 2, 1).astype(np.float64),
        group_sums,
    )

    need_sub = np.flatnonzero(classes.sub_tasks[tids])
    need_dir = np.flatnonzero(classes.dir_tasks[tids])
    if len(need_sub) or len(need_dir):
        bitmap = np.zeros((stack_n, locals_n, locals_n), dtype=bool)
        per_task = batch.nnz[tids]
        entries = int(per_task.sum())
        if entries:
            inner = _cumsum0(per_task)
            flat_entries = (
                np.repeat(batch.entry_offsets[tids], per_task)
                + np.arange(entries, dtype=np.int64)
                - np.repeat(inner[:-1], per_task)
            )
            slot = np.repeat(
                np.arange(stack_n, dtype=np.int64), per_task
            )
            bitmap[
                slot,
                batch.entry_row[flat_entries],
                batch.entry_col[flat_entries],
            ] = True
        col_group = np.repeat(
            np.arange(group_n, dtype=np.int64), widths_shape
        )
        # Per-task guards mirror the scalar `if sub_cols.any()`:
        # a subtract window always has a missing column and a
        # direct window a present one, so window-class presence is
        # exactly column-mask non-emptiness.
        if len(need_sub):
            sub_cols = (
                sub_gl[need_sub].transpose(0, 2, 1)[:, :, col_group]
                & ~bitmap[need_sub]
            )
            acc[need_sub] -= np.matmul(
                sub_cols.astype(np.float64), xw_stack[need_sub]
            )
        if len(need_dir):
            dir_gl = classes.direct[cell_idx].reshape(
                stack_n, group_n, locals_n
            )
            dir_cols = (
                dir_gl[need_dir].transpose(0, 2, 1)[:, :, col_group]
                & bitmap[need_dir]
            )
            acc[need_dir] += np.matmul(
                dir_cols.astype(np.float64), xw_stack[need_dir]
            )

    out[locs[:, hubs_n:].ravel()] = acc[:, hubs_n:, :].reshape(
        -1, acc.shape[2]
    )
    if hubs_n:
        pair_idx = (
            batch.hub_offsets[tids][:, None]
            + np.arange(hubs_n, dtype=np.int64)
        )
        contrib[pair_idx.ravel()] = acc[:, :hubs_n, :].reshape(
            -1, acc.shape[2]
        )


def _ordered_hub_fold(state, positions: np.ndarray,
                      contrib: np.ndarray) -> None:
    """Accumulate contributions per hub in exact sequential order.

    Additions to *different* hubs commute; within one hub the float
    left-fold order matters.  Contributions are segmented per hub (the
    stable sort keeps each segment in arrival order) and folded a block
    of ranks at a time: the running accumulator seeds row 0 of a dense
    per-hub block and ``cumsum`` — a strict sequential ``accumulate``,
    unlike pairwise ``reduce`` — replays the scalar loop's addition
    sequence bit for bit.  Python-level iterations scale with
    ``max ranks / block width`` instead of ``max ranks``, so a single
    hot hub touching thousands of islands no longer degenerates into
    thousands of one-row scatters.
    """
    total = len(positions)
    if total == 0:
        return
    order = np.argsort(positions, kind="stable")
    counts_all = np.bincount(positions, minlength=len(state.hub_ids))
    hubs = np.flatnonzero(counts_all)
    seg_starts = _cumsum0(counts_all)[hubs]
    remaining = counts_all[hubs]
    done = np.zeros(len(hubs), dtype=np.int64)
    active = np.arange(len(hubs), dtype=np.int64)
    hub_acc = state.hub_acc
    channels = contrib.shape[1]
    while len(active):
        n_act = len(active)
        width = int(min(
            int(remaining[active].max()),
            max(1, _FOLD_BLOCK_ELEMS // (n_act * max(1, channels)) - 1),
        ))
        take = np.minimum(remaining[active], width)
        taken = int(take.sum())
        flat_rows = np.repeat(np.arange(n_act, dtype=np.int64), take)
        inner = (
            np.arange(taken, dtype=np.int64)
            - np.repeat(_cumsum0(take)[:-1], take)
        )
        src = order[
            np.repeat(seg_starts[active] + done[active], take) + inner
        ]
        if width == 1:
            # One rank per hub: a plain scatter-add is the fold.
            hub_acc[hubs[active]] += contrib[src]
        else:
            # Seed row 0 with the running accumulator and cumsum along
            # the rank axis: ``accumulate`` is a strict left fold, so
            # row ``take`` holds exactly the scalar addition sequence.
            # Zero padding sits past each hub's last rank, never read.
            block = np.zeros((n_act, width + 1, channels), dtype=np.float64)
            block[:, 0, :] = hub_acc[hubs[active]]
            block[flat_rows, inner + 1, :] = contrib[src]
            np.cumsum(block, axis=1, out=block)
            hub_acc[hubs[active]] = block[
                np.arange(n_act, dtype=np.int64), take, :
            ]
        done[active] += take
        remaining[active] -= take
        active = active[remaining[active] > 0]
