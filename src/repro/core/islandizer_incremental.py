"""Incremental islandization: delta-driven island maintenance.

The paper's case against offline reordering (Rubik, GraphACT) is that
real graphs evolve, so restructuring cost is paid on every update.
I-GCN's online islandization makes the restructuring *maintainable*:
an edge delta touches a bounded neighbourhood of the graph, and this
module re-runs the Island Locator only there.

Given a cached :class:`~repro.core.types.IslandizationResult`, the
:class:`IncrementalState` recorded alongside it, and a
:class:`~repro.graph.csr.GraphDelta`, :func:`update_islandization`
produces the result an Algorithm-1 run from scratch on the mutated
graph would produce — **exactly** (``IslandizationResult.equals``
holds, per-engine work distribution included) — while touching only
the *dirty region*.

Why a dirty region exists at all
--------------------------------
Round 1 detects hubs by the static predicate ``degree >= TH0`` and the
threshold schedule after that is deterministic, so two facts hold for
every run:

* a node's hub status and detection round depend only on its *global*
  degree, the schedule, and whether it is still unclassified — and all
  classification dynamics decompose per connected component of the
  round-1 active subgraph (the graph minus TH0 hubs): TP-BFS walks are
  bounded by hubs, components only shrink in later rounds, and later
  hubs emerge inside their own component;
* a component whose member degrees and adjacency are untouched by the
  delta therefore replays its old dynamics verbatim, provided every
  hub it interacts with behaved identically — and its adjacent hubs
  are TH0 hubs whose degree/adjacency the delta did not touch.

The dirty region is the closure of the delta endpoints under those
rules (see :func:`_dirty_region`); everything outside is spliced from
the cached result.

Folding the counters without re-running the old graph
-----------------------------------------------------
Every per-round counter folds as ``new = cached − old_dirty +
new_dirty``.  ``new_dirty`` comes from one locator *sub-run* on the
dirty region extracted from the mutated graph.  ``old_dirty`` needs no
run at all: the recorded state carries a full per-task log (hub, seed,
scans, fetches, bytes, outcome — in task order) plus each node's
classification round, so the old run's restriction to the dirty
region is a vectorized filter:

* a task belongs to the dirty side iff its generating hub or its seed
  is dirty (a nonzero-scan task's walk is confined to its seed's
  component, and a dirty hub's seeds are all dirty or boundary hubs);
* detection-side counters are per-node sums over classification
  rounds; island counters come from the per-island metadata; an
  inter-hub edge is always found in round
  ``max(class_round[u], class_round[v])`` (the later endpoint's task
  generation scans the earlier, already-classified hub).

The only global state that resists splicing is the greedy TP-BFS
engine dispatch (``LocatorWork.per_engine_scans``): it is a heap over
the full task sequence, so the cleaned cached log is merged with the
sub-run's log and the nonzero-scan entries are replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO

import heapq

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.hub_detector import detect_new_hubs
from repro.core.islandizer import _NO_HUBS, IslandLocator
from repro.core.nputil import cumsum0
from repro.core.tp_bfs import BFSRoundState, TaskOutcome, run_bfs_task
from repro.core.tp_bfs_batched import (
    TASK_CMAX,
    TASK_OUTCOME_CODES,
    TASK_SEED_HUB,
    TASK_VISITED,
    _component_labels,
    execute_round_batched,
)
from repro.core.types import (
    ROUND_FIELDS,
    Island,
    IslandizationResult,
    LocatorWork,
    RoundStats,
)
from repro.errors import IslandizationError
from repro.graph.csr import CSRGraph, GraphDelta
from repro.serialize import read_npz, write_npz

__all__ = [
    "IncrementalState",
    "IncrementalUpdate",
    "record_islandization",
    "update_islandization",
]

#: RoundStats fields that fold additively across the clean/dirty split
#: (everything except the two schedule-determined columns).
_ADDITIVE_FIELDS: tuple[str, ...] = tuple(
    f for f in ROUND_FIELDS if f not in ("round_id", "threshold")
)

_EMPTY = np.zeros(0, dtype=np.int64)
_EMPTY8 = np.zeros(0, dtype=np.int8)


@dataclass(frozen=True)
class IncrementalState:
    """Recorded bookkeeping that makes a cached result updatable.

    Everything here is either free to capture during a full run (the
    task log comes straight from the per-round tap arrays) or one
    extra O(E) pass (the round-1 component labels), and all of it is
    refreshed incrementally by :func:`update_islandization` — an
    evolving graph pays the recording cost once.

    Attributes
    ----------
    th0:
        The resolved initial threshold of the recorded run.  A delta
        that moves the degree-quantile TH0 invalidates the component
        decomposition and forces a full rebuild.
    comp_labels:
        Per-node label of the round-1 active component (the graph
        minus TH0 hubs); ``-1`` on TH0 hubs.  Labels are arbitrary
        distinct integers — splicing keeps clean labels and assigns a
        fresh range to the re-run region.
    class_round:
        Per-node round of classification: an island member's island
        round, a hub's detection round.  Detection-side counters of
        the dirty region fold from this without re-running it.
    island_round, island_seed, island_size, winner_hubs:
        Per island, aligned with the result's island list: the round,
        first member (``members[0]``), member count, and the hub of
        the task that won the island (``-1`` for singletons).
        ``(winner_hub, members[0])`` is each island's winning-task
        key, which orders islands within a round — the merge key for
        splicing clean islands against re-run ones.
    log_hubs, log_seeds, log_scans, log_fetches, log_bytes, log_outcomes:
        The full task log: per round, in task order, one entry per
        Th2-generated task with its TP-BFS scan count, adjacency
        fetches/bytes and outcome code
        (``tp_bfs_batched.TASK_*``).  Replaying the nonzero-scan
        entries through the greedy dispatch reproduces
        ``per_engine_scans``; filtering by dirty hub/seed reproduces
        the dirty region's share of every per-task counter.
    log_offsets:
        Round r (1-based) owns log slice
        ``log_offsets[r-1]:log_offsets[r]``.
    """

    th0: int
    comp_labels: np.ndarray
    class_round: np.ndarray
    island_round: np.ndarray
    island_seed: np.ndarray
    island_size: np.ndarray
    winner_hubs: np.ndarray
    log_hubs: np.ndarray
    log_seeds: np.ndarray
    log_scans: np.ndarray
    log_fetches: np.ndarray
    log_bytes: np.ndarray
    log_outcomes: np.ndarray
    log_offsets: np.ndarray

    @property
    def num_rounds(self) -> int:
        """Rounds covered by the task log."""
        return len(self.log_offsets) - 1

    def round_slice(self, round_id: int) -> tuple[int, int]:
        """The task-log span of one 1-based round."""
        if round_id > self.num_rounds:
            return 0, 0
        return int(self.log_offsets[round_id - 1]), int(self.log_offsets[round_id])

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize (byte-identical round-trip via :meth:`from_npz`)."""
        write_npz(
            file,
            {
                "comp_labels": self.comp_labels,
                "class_round": self.class_round,
                "island_round": self.island_round,
                "island_seed": self.island_seed,
                "island_size": self.island_size,
                "winner_hubs": self.winner_hubs,
                "log_hubs": self.log_hubs,
                "log_seeds": self.log_seeds,
                "log_scans": self.log_scans,
                "log_fetches": self.log_fetches,
                "log_bytes": self.log_bytes,
                "log_outcomes": self.log_outcomes,
                "log_offsets": self.log_offsets,
            },
            {"format": 1, "th0": int(self.th0)},
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "IncrementalState":
        """Restore a state written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        return cls._from_arrays(arrays, meta)

    @classmethod
    def _from_arrays(cls, arrays: dict, meta: dict) -> "IncrementalState":
        """Build from already-parsed npz payload (format-dispatch hook)."""
        return cls(th0=int(meta["th0"]), **arrays)


@dataclass(frozen=True)
class IncrementalUpdate:
    """What one delta application produced.

    ``result``/``state`` are always for the mutated graph, whether the
    incremental path ran or the update fell back to a full (recording)
    rebuild; ``fallback_reason`` says why when it did.
    """

    result: IslandizationResult
    state: IncrementalState
    fallback: bool
    fallback_reason: str | None
    dirty_nodes: int
    region_nodes: int


# ----------------------------------------------------------------------
# Recording runs
# ----------------------------------------------------------------------
def _chunk_metadata(
    islands: tuple[Island, ...] | list[Island],
    task_hubs: np.ndarray,
    task_seeds: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]:
    """Winner hubs + (seed, size) metadata of one round's islands.

    An island's winning task is the first task (in task order) whose
    seed equals ``members[0]``: any earlier task in the same component
    would have won and re-seeded the island, and an earlier same-seed
    task either won (same task) or poisoned the component.  Winners
    are ``-1`` for isolated-node singletons.
    """
    k = len(islands)
    seed0 = np.empty(k, dtype=np.int64)
    sizes = np.empty(k, dtype=np.int64)
    winners = np.full(k, -1, dtype=np.int64)
    member_arrays: list[np.ndarray] = []
    tp_pos: list[int] = []
    for i, isl in enumerate(islands):
        members = isl.members
        seed0[i] = members[0]
        sizes[i] = len(members)
        member_arrays.append(members)
        if len(isl.hubs):
            tp_pos.append(i)
    if tp_pos:
        order = np.argsort(task_seeds, kind="stable")
        sorted_seeds = task_seeds[order]
        tp = np.asarray(tp_pos, dtype=np.int64)
        pos = np.searchsorted(sorted_seeds, seed0[tp])
        if np.any(sorted_seeds[pos] != seed0[tp]):
            raise IslandizationError("incremental: island seed missing from queue")
        winners[tp] = task_hubs[order[pos]]
    return winners, seed0, sizes, member_arrays


def _round1_labels(graph: CSRGraph, th0: int) -> np.ndarray:
    """Component labels of the graph minus its TH0 hubs (-1 on hubs)."""
    degrees = graph.degrees.astype(np.int64)
    rows = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), degrees)
    labels, _, _ = _component_labels(graph, rows, degrees < th0)
    return labels


def record_islandization(
    graph: CSRGraph, config: LocatorConfig | None = None
) -> tuple[IslandizationResult, IncrementalState]:
    """Run the Island Locator, capturing the incremental bookkeeping.

    The result is identical to a plain ``islandize(graph, config)``;
    the returned :class:`IncrementalState` is what
    :func:`update_islandization` needs to maintain it under deltas.
    """
    config = config or LocatorConfig()
    if config.partitions > 1:
        from repro.core.islandizer_pincremental import (
            record_islandization_partitioned,
        )

        return record_islandization_partitioned(graph, config)
    rounds_log: list[tuple[np.ndarray, ...]] = []

    def tap(round_id: int, hubs: np.ndarray, seeds: np.ndarray,
            scans: np.ndarray, fetches: np.ndarray, nbytes: np.ndarray,
            outcomes: np.ndarray) -> None:
        rounds_log.append((hubs, seeds, scans, fetches, nbytes, outcomes))

    n = graph.num_nodes
    class_round = np.full(n, -1, dtype=np.int64)
    winner_parts: list[np.ndarray] = []
    seed_parts: list[np.ndarray] = []
    size_parts: list[np.ndarray] = []
    round_parts: list[np.ndarray] = []
    stream = IslandLocator(config).stream(graph, tap=tap)
    while True:
        try:
            chunk = next(stream)
        except StopIteration as stop:
            result = stop.value
            break
        hubs, seeds = rounds_log[-1][0], rounds_log[-1][1]
        winners, seed0, sizes, member_arrays = _chunk_metadata(
            chunk.islands, hubs, seeds
        )
        winner_parts.append(winners)
        seed_parts.append(seed0)
        size_parts.append(sizes)
        round_parts.append(
            np.full(len(chunk.islands), chunk.round_id, dtype=np.int64)
        )
        if member_arrays:
            class_round[np.concatenate(member_arrays)] = chunk.round_id
        class_round[chunk.new_hub_ids] = chunk.round_id

    def _cat(idx: int, empty: np.ndarray = _EMPTY) -> np.ndarray:
        parts = [entry[idx] for entry in rounds_log]
        return np.concatenate(parts) if parts else empty

    th0 = config.initial_threshold(graph.degrees.astype(np.int64))
    state = IncrementalState(
        th0=int(th0),
        comp_labels=_round1_labels(graph, th0),
        class_round=class_round,
        island_round=np.concatenate(round_parts) if round_parts else _EMPTY,
        island_seed=np.concatenate(seed_parts) if seed_parts else _EMPTY,
        island_size=np.concatenate(size_parts) if size_parts else _EMPTY,
        winner_hubs=np.concatenate(winner_parts) if winner_parts else _EMPTY,
        log_hubs=_cat(0),
        log_seeds=_cat(1),
        log_scans=_cat(2),
        log_fetches=_cat(3),
        log_bytes=_cat(4),
        log_outcomes=_cat(5, _EMPTY8),
        log_offsets=cumsum0(
            np.asarray([len(entry[0]) for entry in rounds_log], dtype=np.int64)
        ),
    )
    return result, state


# ----------------------------------------------------------------------
# Dirty-region closure
# ----------------------------------------------------------------------
def _neighbor_mask(graph: CSRGraph, nodes: np.ndarray) -> np.ndarray:
    """Boolean mask of every neighbour of ``nodes`` (one CSR gather)."""
    mask = np.zeros(graph.num_nodes, dtype=bool)
    if len(nodes) == 0:
        return mask
    starts = graph.indptr[nodes]
    counts = graph.indptr[nodes + 1] - starts
    total = int(counts.sum())
    prefix = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - prefix, counts)
    mask[graph.indices[flat]] = True
    return mask


def _dirty_region(
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    state: IncrementalState,
    ins_keys: np.ndarray,
    del_keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compute the dirty closure of an effective edge delta.

    Returns ``(dirty mask, boundary-hub mask, region ids,
    inserted hub–hub pairs, deleted hub–hub pairs)``.

    Seeds are the endpoints of effectively changed edges.  Only
    **flip** seeds — nodes whose TH0-hub status differs between the
    old and new graph — poison their surroundings: a flip changes
    which round the node classifies in and what its tasks are, so
    every round-1 component it old-touches is dirty (its new
    neighbours are old neighbours plus changed counterparts, which are
    seeds themselves).  A seed that is a TH0 hub in *both* graphs
    stays clean: its detection round is unchanged and its unchanged
    per-edge tasks replay identically component by component — its
    changed edges either target the dirty set (imported into the
    sub-run per graph) or another stays-hub, in which case the whole
    effect of the edge is two zero-scan seed-is-hub tasks and one
    inter-hub edge in round 1, folded in closed form from the returned
    hub–hub pairs.

    The dirty node set ``DN`` is the union of dirty components (those
    holding a non-hub seed or old-touched by a flip) and the flips;
    its old/new neighbourhood beyond ``DN`` (the boundary ``B``) must
    consist of both-graph TH0 hubs — detected round 1 on the clean
    side in both runs — or the closure is wrong.
    """
    n = old_graph.num_nodes
    th0 = state.th0
    labels = state.comp_labels
    h1_old = old_graph.degrees >= th0
    h1_new = new_graph.degrees >= th0

    changed_keys = np.concatenate([ins_keys, del_keys])
    seeds = np.unique(
        np.concatenate([changed_keys // n, changed_keys % n])
    )
    seed_stays = h1_old[seeds] & h1_new[seeds]
    seed_hub = h1_old[seeds] | h1_new[seeds]
    flip_seeds = seeds[seed_hub & ~seed_stays]
    nonhub_seeds = seeds[~seed_hub]

    # Components old-touched by a flip: one gather over the flips' old
    # rows (deleted neighbours included — they are old rows).
    flip_nbrs = _neighbor_mask(old_graph, flip_seeds)
    flip_nbr_ids = np.flatnonzero(flip_nbrs & ~h1_old)
    dirty_labels = np.unique(
        np.concatenate([labels[nonhub_seeds], labels[flip_nbr_ids]])
    )
    dirty_labels = dirty_labels[dirty_labels >= 0]

    dn_mask = np.isin(labels, dirty_labels)
    dn_mask[flip_seeds] = True
    dn_ids = np.flatnonzero(dn_mask)

    boundary = (
        (_neighbor_mask(old_graph, dn_ids) | _neighbor_mask(new_graph, dn_ids))
        & ~dn_mask
    )
    if not bool(np.all(h1_old[boundary] & h1_new[boundary])):
        raise IslandizationError(
            "incremental: dirty-region boundary is not clean TH0 hubs"
        )
    region = np.flatnonzero(dn_mask | boundary)

    def hub_hub_pairs(keys: np.ndarray) -> np.ndarray:
        u, v = keys // n, keys % n
        sel = (u < v) & ~dn_mask[u] & ~dn_mask[v]
        u, v = u[sel], v[sel]
        if len(u) and not bool(np.all(
            h1_old[u] & h1_new[u] & h1_old[v] & h1_new[v]
        )):
            raise IslandizationError(
                "incremental: clean changed edge between non-hubs"
            )
        return np.stack([u, v], axis=1) if len(u) else np.zeros((0, 2), np.int64)

    return dn_mask, boundary, region, hub_hub_pairs(ins_keys), hub_hub_pairs(del_keys)


def _extract_region(
    graph: CSRGraph, region: np.ndarray, reg_mask: np.ndarray
) -> CSRGraph:
    """Induced subgraph on ``region`` with order-preserving relabels.

    Region ids are sorted, so local ids are monotone in global ids:
    sorted adjacency, lexicographic task order and BFS discovery order
    all transfer between the sub-run and the full run unchanged.
    """
    m = len(region)
    relabel = np.full(graph.num_nodes, -1, dtype=np.int64)
    relabel[region] = np.arange(m, dtype=np.int64)
    starts = graph.indptr[region]
    counts = graph.indptr[region + 1] - starts
    total = int(counts.sum())
    prefix = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - prefix, counts)
    cols = graph.indices[flat]
    keep = reg_mask[cols]
    row_ids = np.repeat(np.arange(m, dtype=np.int64), counts)[keep]
    sub_cols = relabel[cols[keep]]
    indptr = cumsum0(np.bincount(row_ids, minlength=m).astype(np.int64))
    return CSRGraph(indptr=indptr, indices=sub_cols, name=f"{graph.name}-dirty")


# ----------------------------------------------------------------------
# Sub-run on the extracted region
# ----------------------------------------------------------------------
@dataclass
class _SubRound:
    """One sub-run round, reported in global node ids."""

    threshold: int
    singles: np.ndarray                                   # ascending
    islands: list[tuple[np.ndarray, np.ndarray]]          # (members, hubs)
    isl_seed: np.ndarray                                  # members[0] per island
    isl_size: np.ndarray
    isl_winner: np.ndarray                                # winning-task hub
    islanded: np.ndarray                                  # all members, concat
    new_hubs: np.ndarray                                  # ascending
    stats: dict[str, int]                                 # _ADDITIVE_FIELDS
    interhub: np.ndarray                                  # (k, 2) new this round
    log_hubs: np.ndarray                                  # full task log,
    log_seeds: np.ndarray                                 # global ids,
    log_scans: np.ndarray                                 # task order
    log_fetches: np.ndarray
    log_bytes: np.ndarray
    log_outcomes: np.ndarray
    scans_total: int


_MAX_SUB_ROUNDS = 1000


def _run_sub(
    sub: CSRGraph,
    gids: np.ndarray,
    deg_global: np.ndarray,
    boundary_local: np.ndarray,
    imported_hubs: np.ndarray,
    imported_seeds: np.ndarray,
    config: LocatorConfig,
    th0: int,
) -> list[_SubRound]:
    """Replay the locator's round loop on the extracted dirty region.

    Mirrors ``IslandLocator.stream`` with three differences that keep
    it exact against the full run's restriction to the region:

    * boundary hubs start classified/hub (their detection belongs to
      the clean side) and all threshold tests use **global** degrees
      (``deg_global``, local-indexed), so a boundary hub whose local
      row is truncated still reads as a hub to scalar BFS contact
      tests;
    * the round-1 task queue merges the imported tasks — clean
      boundary hubs' Th2 tasks that target dirty nodes — into the
      region-generated queue in global ``(hub, seed)`` order, which is
      the full run's relative task order; imported tasks contribute
      their 4-byte queue entries but not their hub's adjacency fetch
      (that belongs to the clean side);
    * inter-hub dedup is local to the sub-run: every edge it can find
      has a dirty endpoint, disjoint from the cached clean-clean set.

    ``th0`` is the full run's resolved TH0 (the region alone cannot
    reproduce the degree-quantile default).
    """
    batched = config.backend == "batched"
    m = sub.num_nodes
    classified = boundary_local.copy()
    is_hub = boundary_local.copy()
    num_classified = int(classified.sum())
    visited_round = None if batched else np.zeros(m, dtype=np.int64)
    csr_rows = (
        np.repeat(np.arange(m, dtype=np.int64), sub.degrees) if batched else None
    )
    csr_lists: dict = {}
    interhub_keys = _EMPTY
    interhub_seen: set[tuple[int, int]] = set()

    out: list[_SubRound] = []
    threshold = th0
    round_id = 1
    while num_classified < m:
        if round_id > _MAX_SUB_ROUNDS:
            raise IslandizationError(
                f"incremental sub-run failed to converge after "
                f"{_MAX_SUB_ROUNDS} rounds"
            )
        detection = detect_new_hubs(deg_global, classified, threshold)
        new_hubs = detection.new_hubs
        classified[new_hubs] = True
        is_hub[new_hubs] = True
        num_classified += len(new_hubs)
        isolated = detection.isolated
        classified[isolated] = True
        num_classified += len(isolated)

        starts = sub.indptr[new_hubs]
        counts = sub.indptr[new_hubs + 1] - starts
        total_gen = int(counts.sum())
        prefix = np.cumsum(counts) - counts
        flat = np.arange(total_gen, dtype=np.int64) + np.repeat(
            starts - prefix, counts
        )
        task_hubs = np.repeat(new_hubs, counts)
        task_seeds = sub.indices[flat]
        if round_id == 1 and len(imported_hubs):
            task_hubs = np.concatenate([task_hubs, imported_hubs])
            task_seeds = np.concatenate([task_seeds, imported_seeds])
            order = np.lexsort((task_seeds, task_hubs))
            task_hubs = task_hubs[order]
            task_seeds = task_seeds[order]
        total_tasks = len(task_hubs)
        taskgen_fetches = len(new_hubs)
        taskgen_bytes = total_tasks * 4

        islands_local: list[tuple[np.ndarray, np.ndarray]] = []
        task_scans = np.zeros(total_tasks, dtype=np.int64)
        task_fetches = np.zeros(total_tasks, dtype=np.int64)
        task_bytes = np.zeros(total_tasks, dtype=np.int64)
        task_outcomes = np.full(total_tasks, TASK_VISITED, dtype=np.int8)
        new_pairs: list[tuple[int, int]] = []
        dropped_classified = dropped_visited = dropped_cmax = 0
        scans = fetches = nbytes = 0
        if batched:
            outcome = execute_round_batched(
                sub, csr_rows, is_hub, classified, config.c_max,
                task_hubs, task_seeds, interhub_keys, csr_lists,
            )
            islands_local = outcome.islands
            if outcome.islands:
                members_all = np.concatenate(
                    [mem for mem, _ in outcome.islands]
                )
                classified[members_all] = True
                num_classified += len(members_all)
            if len(outcome.new_interhub_keys):
                interhub_keys = np.sort(
                    np.concatenate([interhub_keys, outcome.new_interhub_keys]),
                    kind="stable",
                )
                u = outcome.new_interhub_keys // m
                v = outcome.new_interhub_keys % m
                new_pairs = list(zip(u.tolist(), v.tolist()))
            task_scans = outcome.task_scans
            task_fetches = outcome.task_fetches
            task_bytes = outcome.task_bytes
            task_outcomes = outcome.task_outcomes
            dropped_classified = outcome.dropped_classified
            dropped_visited = outcome.dropped_visited
            dropped_cmax = outcome.dropped_cmax
            scans = outcome.scans
            fetches = outcome.fetches
            nbytes = outcome.adjacency_bytes
        else:
            state = BFSRoundState.create(
                sub, deg_global, threshold, config.c_max, round_id,
                visited_round,
            )
            for pos, (hub, a0) in enumerate(
                zip(task_hubs.tolist(), task_seeds.tolist())
            ):
                bytes_before = state.adjacency_bytes
                result = run_bfs_task(state, hub, a0)
                task_scans[pos] = result.scans
                task_fetches[pos] = result.fetches
                task_bytes[pos] = state.adjacency_bytes - bytes_before
                task_outcomes[pos] = TASK_OUTCOME_CODES[result.outcome]
                if result.outcome is TaskOutcome.ISLAND:
                    members = np.asarray(result.members, dtype=np.int64)
                    hubs_arr = np.asarray(result.hubs, dtype=np.int64)
                    islands_local.append((members, hubs_arr))
                    classified[members] = True
                    num_classified += len(members)
                elif result.outcome is TaskOutcome.SEED_IS_HUB:
                    edge = (min(hub, a0), max(hub, a0))
                    if edge not in interhub_seen:
                        interhub_seen.add(edge)
                        new_pairs.append(edge)
                    dropped_classified += 1
                elif result.outcome is TaskOutcome.ALREADY_VISITED:
                    dropped_visited += 1
                else:
                    dropped_cmax += 1
            scans = state.scans
            fetches = state.adjacency_fetches
            nbytes = state.adjacency_bytes

        # Winner hubs + island metadata: first task (in task order)
        # whose seed is the island's first member wins it.
        k = len(islands_local)
        isl_seed = np.empty(k, dtype=np.int64)
        isl_size = np.empty(k, dtype=np.int64)
        for i, (mem, _) in enumerate(islands_local):
            isl_seed[i] = mem[0]
            isl_size[i] = len(mem)
        isl_winner = _EMPTY
        if k:
            order = np.argsort(task_seeds, kind="stable")
            sorted_seeds = task_seeds[order]
            pos = np.searchsorted(sorted_seeds, isl_seed)
            if np.any(sorted_seeds[pos] != isl_seed):
                raise IslandizationError(
                    "incremental: sub-run island seed missing from queue"
                )
            isl_winner = task_hubs[order[pos]]

        stats = {
            "nodes_remaining": int(detection.detect_items),
            "hubs_found": len(new_hubs),
            "islands_found": k,
            "nodes_islanded": int(isl_size.sum()) if k else 0,
            "tasks_generated": total_tasks,
            "tasks_dropped_classified": dropped_classified,
            "tasks_dropped_visited": dropped_visited,
            "tasks_dropped_cmax": dropped_cmax,
            "interhub_edges_found": len(new_pairs),
            "adjacency_fetches": fetches + taskgen_fetches,
            "adjacency_bytes": nbytes + taskgen_bytes,
            "detect_items": int(detection.detect_items),
        }
        islanded = (
            np.concatenate([mem for mem, _ in islands_local])
            if islands_local else _EMPTY
        )
        out.append(
            _SubRound(
                threshold=threshold,
                singles=gids[isolated],
                islands=[
                    (gids[mem], gids[hubs_arr])
                    for mem, hubs_arr in islands_local
                ],
                isl_seed=gids[isl_seed] if k else _EMPTY,
                isl_size=isl_size,
                isl_winner=gids[isl_winner] if k else _EMPTY,
                islanded=gids[islanded] if len(islanded) else _EMPTY,
                new_hubs=gids[new_hubs],
                stats=stats,
                interhub=(
                    gids[np.asarray(new_pairs, dtype=np.int64)]
                    if new_pairs
                    else np.zeros((0, 2), dtype=np.int64)
                ),
                log_hubs=gids[task_hubs],
                log_seeds=gids[task_seeds],
                log_scans=task_scans,
                log_fetches=task_fetches,
                log_bytes=task_bytes,
                log_outcomes=task_outcomes,
                scans_total=scans,
            )
        )
        threshold = config.next_threshold(threshold)
        round_id += 1
    return out


# ----------------------------------------------------------------------
# Reconciliation: splice the clean side with the sub-run
# ----------------------------------------------------------------------
def _check(cond: bool, what: str) -> None:
    """Internal consistency gate; failures indicate an exactness bug."""
    if not cond:
        raise IslandizationError(f"incremental reconciliation: {what}")


def _sorted_ih_member(keys: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Mask of ``keys`` entries present in the (unsorted) ``needles``."""
    needles = np.sort(needles)
    pos = np.clip(np.searchsorted(needles, keys), 0, len(needles) - 1)
    return needles[pos] == keys


def _old_dirty_stats(
    cached: IslandizationResult,
    state: IncrementalState,
    dn_mask: np.ndarray,
    dirty_tasks: np.ndarray,
    ent_round: np.ndarray,
) -> dict[str, np.ndarray]:
    """The old run's per-round counters restricted to the dirty region.

    Pure array folds over the recorded state — no re-run of the old
    graph.  ``dirty_tasks`` is the per-log-entry dirty mask
    (``dn_mask[hub] | dn_mask[seed]``: region hubs generate only
    dirty-or-boundary seeds, and a clean hub's dirty-seed tasks are
    the sub-run's imports).  Detection counters fold from per-node
    classification rounds, island counters from the per-island
    metadata, and an inter-hub edge's discovery round is
    ``max(class_round[u], class_round[v])`` — the later endpoint's
    task generation scans the earlier, already-classified hub.
    """
    r_cached = len(cached.rounds)
    _check(state.num_rounds == r_cached, "task log does not cover the cached rounds")
    minlength = r_cached + 1
    pr = ent_round[dirty_tasks]

    def count(mask: np.ndarray | None = None) -> np.ndarray:
        rounds = pr if mask is None else pr[mask]
        return np.bincount(rounds, minlength=minlength)[1:].astype(np.int64)

    def total(values: np.ndarray) -> np.ndarray:
        return np.bincount(
            pr, weights=values[dirty_tasks].astype(np.float64),
            minlength=minlength,
        )[1:].astype(np.int64)

    outcomes = state.log_outcomes[dirty_tasks]
    tasks = count()
    fetches_bfs = total(state.log_fetches)
    bytes_bfs = total(state.log_bytes)

    dn_ids = np.flatnonzero(dn_mask)
    class_round = state.class_round
    old_hub = np.zeros(len(dn_mask), dtype=bool)
    old_hub[cached.hub_ids] = True
    hub_rounds = class_round[dn_ids[old_hub[dn_ids]]]
    hubs_found = np.bincount(hub_rounds, minlength=minlength)[1:].astype(np.int64)

    cr_dn = class_round[dn_ids]
    _check(bool(np.all(cr_dn >= 1)), "dirty node with unrecorded class round")
    per_round = np.bincount(cr_dn, minlength=minlength + 1)
    remaining = np.cumsum(per_round[::-1])[::-1][1:minlength].astype(np.int64)

    # islands_found / nodes_islanded count TP-BFS islands only —
    # isolated-node singletons (winner -1) are excluded by the locator.
    dirty_tp = dn_mask[state.island_seed] & (state.winner_hubs >= 0)
    islands_found = np.bincount(
        state.island_round[dirty_tp], minlength=minlength
    )[1:].astype(np.int64)
    nodes_islanded = np.bincount(
        state.island_round[dirty_tp],
        weights=state.island_size[dirty_tp].astype(np.float64),
        minlength=minlength,
    )[1:].astype(np.int64)

    ih = cached.interhub_edges
    if len(ih):
        dirty_edge = dn_mask[ih[:, 0]] | dn_mask[ih[:, 1]]
        found_round = np.maximum(
            class_round[ih[dirty_edge, 0]], class_round[ih[dirty_edge, 1]]
        )
        interhub_found = np.bincount(
            found_round, minlength=minlength
        )[1:].astype(np.int64)
    else:
        interhub_found = np.zeros(r_cached, dtype=np.int64)

    return {
        "nodes_remaining": remaining,
        "hubs_found": hubs_found,
        "islands_found": islands_found,
        "nodes_islanded": nodes_islanded,
        "tasks_generated": tasks,
        "tasks_dropped_classified": count(outcomes == TASK_SEED_HUB),
        "tasks_dropped_visited": count(outcomes == TASK_VISITED),
        "tasks_dropped_cmax": count(outcomes == TASK_CMAX),
        "interhub_edges_found": interhub_found,
        "adjacency_fetches": fetches_bfs + hubs_found,
        "adjacency_bytes": bytes_bfs + 4 * tasks,
        "detect_items": remaining,
        "bfs_scans": total(state.log_scans),
    }


def _fold_rounds(
    cached: IslandizationResult,
    old_dirty: dict[str, np.ndarray],
    new_rounds: list[_SubRound],
    config: LocatorConfig,
    th0: int,
    round1_adjust: dict[str, int],
) -> list[RoundStats]:
    """Per-round counter fold: ``new = cached − old_dirty + new_sub``.

    Every :class:`~repro.core.types.RoundStats` field except the
    schedule columns is a sum over per-node or per-task events, and
    each event is attributable to the clean side (identical in both
    full runs), the dirty region (subtracted analytically, re-added by
    the sub-run), or a clean hub–hub changed edge (``round1_adjust``,
    the closed-form delta of round 1's task counters), so the fold is
    exact field by field.  The new round count is the last round
    either side still has work: clean nodes remaining or a sub-run
    round.
    """
    r_cached = len(cached.rounds)

    def cget(r: int, f: str) -> int:
        return getattr(cached.rounds[r - 1], f) if r <= r_cached else 0

    def oget(r: int, f: str) -> int:
        return int(old_dirty[f][r - 1]) if r <= r_cached else 0

    def sget(r: int, f: str) -> int:
        return new_rounds[r - 1].stats[f] if r <= len(new_rounds) else 0

    clean_remaining = (
        np.asarray([r.nodes_remaining for r in cached.rounds], dtype=np.int64)
        - old_dirty["nodes_remaining"]
    )
    _check(
        bool(np.all(clean_remaining >= 0)), "negative clean nodes_remaining"
    )
    nz = np.flatnonzero(clean_remaining > 0)
    r_clean = int(nz[-1]) + 1 if len(nz) else 0
    r_new = max(r_clean, len(new_rounds), 1)

    folded: list[RoundStats] = []
    threshold = th0
    for r in range(1, max(r_new, r_cached) + 1):
        if r <= r_cached:
            _check(
                cached.rounds[r - 1].threshold == threshold,
                "cached threshold schedule mismatch",
            )
        if r <= len(new_rounds):
            _check(
                new_rounds[r - 1].threshold == threshold,
                "new sub-run threshold schedule mismatch",
            )
        values = {
            f: cget(r, f) - oget(r, f) + sget(r, f)
            for f in _ADDITIVE_FIELDS
        }
        if r == 1:
            for f, adj in round1_adjust.items():
                values[f] += adj
        if r > r_new:
            _check(
                all(v == 0 for v in values.values()),
                "cached run has residual work beyond the folded round count",
            )
        else:
            _check(
                all(v >= 0 for v in values.values()),
                "negative folded round counter",
            )
            folded.append(
                RoundStats(round_id=r, threshold=threshold, **values)
            )
        threshold = config.next_threshold(threshold)
    return folded


def _splice_islands(
    cached: IslandizationResult,
    state: IncrementalState,
    dn_mask: np.ndarray,
    new_rounds: list[_SubRound],
    n: int,
    r_new: int,
) -> tuple[list[Island], np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge clean islands with the sub-run's, in full-run order.

    The full run emits isolated-node singletons first (ascending node
    id — the detector's order), then TP-BFS islands in winning-task
    order; within a round the task queue is lexicographic in
    ``(hub, seed)``, an island's winning task is ``(winner_hub,
    members[0])``, and clean/dirty winner keys never tie (a task's hub
    and seed are adjacent, so a shared key would make a clean task
    dirty).  Sorting the union by ``(round, is_tp, key)`` therefore
    reproduces the full run's island order exactly.  Returns the new
    island list plus its (round, seed, size, winner) metadata arrays.
    """
    clean_idx = np.flatnonzero(~dn_mask[state.island_seed])
    c_round = state.island_round[clean_idx]
    _check(
        bool(np.all(c_round <= r_new)),
        "clean island beyond the folded round count",
    )
    c_seed = state.island_seed[clean_idx]
    c_size = state.island_size[clean_idx]
    c_winner = state.winner_hubs[clean_idx]

    s_tp_round = [np.full(len(sr.islands), r, dtype=np.int64)
                  for r, sr in enumerate(new_rounds, 1)]
    s_single_round = [np.full(len(sr.singles), r, dtype=np.int64)
                      for r, sr in enumerate(new_rounds, 1)]
    singles_flat = (
        np.concatenate([sr.singles for sr in new_rounds])
        if new_rounds else _EMPTY
    )
    pool: list[tuple[np.ndarray, np.ndarray]] = [
        pair for sr in new_rounds for pair in sr.islands
    ]

    def scat(parts: list[np.ndarray], attr: str | None = None) -> np.ndarray:
        if attr is not None:
            parts = [getattr(sr, attr) for sr in new_rounds]
        return np.concatenate(parts) if parts else _EMPTY

    s_tp_seed = scat([], "isl_seed")
    s_tp_size = scat([], "isl_size")
    s_tp_winner = scat([], "isl_winner")

    rounds_all = np.concatenate(
        [c_round, scat(s_tp_round), scat(s_single_round)]
    )
    seeds_all = np.concatenate([c_seed, s_tp_seed, singles_flat])
    sizes_all = np.concatenate(
        [c_size, s_tp_size, np.ones(len(singles_flat), dtype=np.int64)]
    )
    winners_all = np.concatenate(
        [c_winner, s_tp_winner,
         np.full(len(singles_flat), -1, dtype=np.int64)]
    )
    kinds_all = np.concatenate([
        np.zeros(len(clean_idx), dtype=np.int8),
        np.ones(len(s_tp_seed), dtype=np.int8),
        np.full(len(singles_flat), 2, dtype=np.int8),
    ])
    refs_all = np.concatenate([
        clean_idx,
        np.arange(len(s_tp_seed), dtype=np.int64),
        np.arange(len(singles_flat), dtype=np.int64),
    ])

    is_tp = winners_all >= 0
    _check(
        bool(np.all(is_tp | (sizes_all == 1))),
        "clean island lost its winner key",
    )
    key = np.where(is_tp, winners_all * np.int64(n) + seeds_all, seeds_all)
    order = np.lexsort((key, is_tp, rounds_all))

    kinds = kinds_all[order]
    refs = refs_all[order]
    rounds_s = rounds_all[order]

    # Island ids are positional, so clean islands are reused by
    # reference — only islands of the re-run region are constructed.
    # Consecutive clean cached islands form runs (the sub-run's islands
    # interleave at ~one spot per dirty component), so the reuse path
    # extends whole list slices instead of appending one at a time.
    num = len(kinds)
    brk = np.ones(num, dtype=bool)
    if num > 1:
        brk[1:] = (
            (kinds[1:] != 0) | (kinds[:-1] != 0)
            | (refs[1:] != refs[:-1] + 1)
        )
    starts = np.flatnonzero(brk)
    lengths = np.diff(np.append(starts, num))
    islands_out: list[Island] = []
    append = islands_out.append
    extend = islands_out.extend
    cached_islands = cached.islands
    obj_new = object.__new__
    set_attr = object.__setattr__
    for kind, ref, rnd, seg in zip(
        kinds[starts].tolist(), refs[starts].tolist(),
        rounds_s[starts].tolist(), lengths.tolist(),
    ):
        if kind == 0:
            extend(cached_islands[ref:ref + seg])
            continue
        if kind == 1:
            members, hubs = pool[ref]
        else:
            members = singles_flat[ref:ref + 1]
            hubs = _NO_HUBS
        obj = obj_new(Island)
        set_attr(obj, "round_id", rnd)
        set_attr(obj, "members", members)
        set_attr(obj, "hubs", hubs)
        append(obj)
    return islands_out, rounds_s, seeds_all[order], sizes_all[order], winners_all[order]


def _full_rebuild(
    new_graph: CSRGraph,
    config: LocatorConfig,
    reason: str,
    dirty_nodes: int,
    region_nodes: int,
) -> IncrementalUpdate:
    result, state = record_islandization(new_graph, config)
    return IncrementalUpdate(
        result=result,
        state=state,
        fallback=True,
        fallback_reason=reason,
        dirty_nodes=dirty_nodes,
        region_nodes=region_nodes,
    )


def update_islandization(
    old_graph: CSRGraph,
    cached: IslandizationResult,
    state: IncrementalState,
    delta: GraphDelta,
    config: LocatorConfig | None = None,
    *,
    max_dirty_fraction: float = 0.5,
    applied: tuple[CSRGraph, np.ndarray, np.ndarray] | None = None,
) -> IncrementalUpdate:
    """Maintain an islandization under an edge delta.

    ``cached``/``state`` must be the recorded run of ``old_graph``
    under the same ``config`` (both Th3 backends supported).  The
    returned result satisfies ``IslandizationResult.equals`` against a
    from-scratch run on the mutated graph, and the returned state is
    ready for the next delta.

    ``applied`` (optional) is the ``(new_graph, effective insertions,
    effective deletions)`` triple of a prior
    ``old_graph.apply_delta(delta, with_changes=True)`` call, for
    callers that already materialized the mutated graph (a delta
    pipeline needs it downstream regardless of how the islandization
    is maintained); when omitted the delta is applied here.

    Falls back to a full recording rebuild when the delta moves the
    degree-quantile TH0 (the round-1 decomposition no longer matches)
    or when the dirty region exceeds ``max_dirty_fraction`` of the
    graph (re-running most of it incrementally would only add splice
    overhead).  There is deliberately no small-graph fallback: tiny
    test graphs exercise the same incremental machinery as large ones.
    """
    config = config or LocatorConfig()
    if config.partitions > 1:
        from repro.core.islandizer_pincremental import (
            update_islandization_partitioned,
        )

        return update_islandization_partitioned(
            old_graph, cached, state, delta, config,
            max_dirty_fraction=max_dirty_fraction, applied=applied,
        )
    if applied is None:
        new_graph, ins_eff, del_eff = old_graph.apply_delta(
            delta, with_changes=True
        )
    else:
        new_graph, ins_eff, del_eff = applied
    if len(ins_eff) == 0 and len(del_eff) == 0:
        result = IslandizationResult(
            graph=new_graph,
            islands=cached.islands,
            hub_ids=cached.hub_ids,
            hub_round=cached.hub_round,
            interhub_edges=cached.interhub_edges,
            rounds=cached.rounds,
            work=cached.work,
        )
        return IncrementalUpdate(
            result=result, state=state, fallback=False,
            fallback_reason=None, dirty_nodes=0, region_nodes=0,
        )

    n = old_graph.num_nodes
    deg_new = new_graph.degrees.astype(np.int64)
    th0 = config.initial_threshold(deg_new)
    if th0 != state.th0:
        return _full_rebuild(
            new_graph, config,
            f"initial threshold moved ({state.th0} -> {th0})", 0, 0,
        )

    dn_mask, boundary, region, ins_hh, del_hh = _dirty_region(
        old_graph, new_graph, state, ins_eff, del_eff
    )
    dirty_nodes = int(dn_mask.sum())
    if len(region) > max_dirty_fraction * n:
        return _full_rebuild(
            new_graph, config,
            f"dirty region covers {len(region)}/{n} nodes",
            dirty_nodes, len(region),
        )

    # --- extraction + sub-run on the mutated graph ---------------------
    reg_mask = np.zeros(n, dtype=bool)
    reg_mask[region] = True
    m = len(region)
    if m:
        relabel = np.full(n, -1, dtype=np.int64)
        relabel[region] = np.arange(m, dtype=np.int64)
        b_ids = np.flatnonzero(boundary)
        # Boundary hubs' round-1 tasks into the dirty set, from the
        # mutated graph's rows: a boundary hub's changed edges all
        # target DN (or another clean hub, folded in closed form).
        starts = new_graph.indptr[b_ids]
        counts = new_graph.indptr[b_ids + 1] - starts
        total_imp = int(counts.sum())
        prefix = np.cumsum(counts) - counts
        flat = np.arange(total_imp, dtype=np.int64) + np.repeat(
            starts - prefix, counts
        )
        imp_seeds = new_graph.indices[flat]
        imp_hubs = np.repeat(b_ids, counts)
        keep = dn_mask[imp_seeds]
        sub_new = _extract_region(new_graph, region, reg_mask)
        new_rounds = _run_sub(
            sub_new, region, deg_new[region], boundary[region],
            relabel[imp_hubs[keep]], relabel[imp_seeds[keep]], config, th0,
        )
    else:
        sub_new = None
        new_rounds = []

    # --- counters ------------------------------------------------------
    # Clean hub–hub changed edges: both endpoints stay round-1 hubs, so
    # each edge is exactly two zero-scan seed-is-hub tasks and one
    # inter-hub (dis)appearance in round 1 — folded in closed form.
    hh_delta = len(ins_hh) - len(del_hh)
    round1_adjust = {
        "tasks_generated": 2 * hh_delta,
        "adjacency_bytes": 8 * hh_delta,
        "tasks_dropped_classified": 2 * hh_delta,
        "interhub_edges_found": hh_delta,
    }
    dirty_tasks = dn_mask[state.log_hubs] | dn_mask[state.log_seeds]
    ent_round = np.repeat(
        np.arange(1, state.num_rounds + 1, dtype=np.int64),
        np.diff(state.log_offsets),
    )
    old_dirty = _old_dirty_stats(
        cached, state, dn_mask, dirty_tasks, ent_round
    )
    folded = _fold_rounds(
        cached, old_dirty, new_rounds, config, th0, round1_adjust
    )
    r_new = len(folded)
    n64 = np.int64(n)

    # --- islands -------------------------------------------------------
    _check(
        len(state.winner_hubs) == len(cached.islands),
        "island metadata does not cover the cached islands",
    )
    islands_out, isl_round, isl_seed, isl_size, isl_winner = _splice_islands(
        cached, state, dn_mask, new_rounds, n, r_new
    )
    _check(
        int((isl_winner >= 0).sum()) == sum(r.islands_found for r in folded),
        "island splice count disagrees with the folded counters",
    )

    # --- hubs ----------------------------------------------------------
    clean_hub_mask = ~dn_mask[cached.hub_ids]
    hub_ids_parts: list[np.ndarray] = []
    hub_round_parts: list[np.ndarray] = []
    for r in range(1, r_new + 1):
        clean_r = cached.hub_ids[clean_hub_mask & (cached.hub_round == r)]
        sub_r = (
            new_rounds[r - 1].new_hubs if r <= len(new_rounds) else _EMPTY
        )
        merged = np.sort(np.concatenate([clean_r, sub_r]))
        hub_ids_parts.append(merged)
        hub_round_parts.append(np.full(len(merged), r, dtype=np.int64))
    hub_ids = np.concatenate(hub_ids_parts) if hub_ids_parts else _EMPTY
    hub_round = np.concatenate(hub_round_parts) if hub_round_parts else _EMPTY
    _check(
        len(hub_ids)
        == int(clean_hub_mask.sum()) + sum(len(sr.new_hubs) for sr in new_rounds),
        "hub splice dropped or duplicated hubs",
    )

    # --- inter-hub edges ----------------------------------------------
    ih = cached.interhub_edges
    if len(ih):
        clean_ih = ih[~(dn_mask[ih[:, 0]] | dn_mask[ih[:, 1]])]
    else:
        clean_ih = np.zeros((0, 2), dtype=np.int64)
    if len(del_hh):
        # A deleted clean hub–hub edge was necessarily found round 1 of
        # the cached run: drop it from the clean set.
        keys = clean_ih[:, 0] * n64 + clean_ih[:, 1]
        gone = _sorted_ih_member(keys, del_hh[:, 0] * n64 + del_hh[:, 1])
        _check(
            int(gone.sum()) == len(del_hh),
            "deleted clean hub-hub edge missing from the cached set",
        )
        clean_ih = clean_ih[~gone]
    sub_ih_parts = [sr.interhub for sr in new_rounds if len(sr.interhub)]
    if len(ins_hh):
        sub_ih_parts.append(ins_hh)
    all_ih = np.concatenate(
        [clean_ih] + sub_ih_parts if sub_ih_parts else [clean_ih]
    )
    if len(all_ih):
        order = np.argsort(all_ih[:, 0] * n64 + all_ih[:, 1])
        all_ih = all_ih[order]
    _check(
        len(all_ih) == sum(r.interhub_edges_found for r in folded),
        "inter-hub splice count disagrees with the folded counters",
    )

    # --- task-log splice + engine-dispatch replay ----------------------
    # Clean log = cached log minus dirty tasks (minus deleted clean
    # hub–hub tasks); sub log = the sub-run's tasks plus the inserted
    # clean hub–hub tasks.  Both sides are (hub, seed)-sorted within a
    # round — the full run's task order — so the merge is a single
    # global ``np.insert``: per-round searchsorted positions, offset by
    # each round's clean start, are nondecreasing across rounds, which
    # is exactly the column order one insert-per-round would produce.
    # The clean side of the merge is every cached entry that is neither
    # dirty nor a deleted clean hub–hub task; both removals fold into
    # one keep mask, so the merged log is built with a single
    # gather-scatter per column — no staging copy of the clean side.
    keep_clean = ~dirty_tasks
    r_cached = state.num_rounds
    if len(del_hh):
        lo, hi = state.round_slice(1)
        k1 = state.log_hubs[lo:hi] * n64 + state.log_seeds[lo:hi]
        dk = np.concatenate([
            del_hh[:, 0] * n64 + del_hh[:, 1],
            del_hh[:, 1] * n64 + del_hh[:, 0],
        ])
        kill = _sorted_ih_member(k1, dk)
        _check(
            int((kill & keep_clean[lo:hi]).sum()) == len(dk),
            "deleted clean hub-hub task missing from the log",
        )
        keep_clean = keep_clean.copy()
        keep_clean[lo:hi] &= ~kill
    clean_offsets = cumsum0(
        np.bincount(ent_round[keep_clean], minlength=r_cached + 1)[1:]
    )
    clean_total = int(clean_offsets[-1])
    clean_keys = (state.log_hubs * n64 + state.log_seeds)[keep_clean]
    sub_mats: list[np.ndarray] = []
    at_parts: list[np.ndarray] = []
    round_counts = np.zeros(r_new, dtype=np.int64)
    for r in range(1, r_new + 1):
        if r <= r_cached:
            clean_lo = int(clean_offsets[r - 1])
            clean_hi = int(clean_offsets[r])
        else:
            clean_lo = clean_hi = clean_total
        if r <= len(new_rounds):
            sr = new_rounds[r - 1]
            sm = np.empty((6, len(sr.log_hubs)), dtype=np.int64)
            sm[0] = sr.log_hubs
            sm[1] = sr.log_seeds
            sm[2] = sr.log_scans
            sm[3] = sr.log_fetches
            sm[4] = sr.log_bytes
            sm[5] = sr.log_outcomes
        else:
            sm = np.empty((6, 0), dtype=np.int64)
        if r == 1 and len(ins_hh):
            # Two zero-work seed-is-hub tasks per inserted clean
            # hub–hub edge, one in each direction.
            hh = np.zeros((6, 2 * len(ins_hh)), dtype=np.int64)
            hh[0] = np.concatenate([ins_hh[:, 0], ins_hh[:, 1]])
            hh[1] = np.concatenate([ins_hh[:, 1], ins_hh[:, 0]])
            hh[5] = int(TASK_SEED_HUB)
            sm = np.concatenate([sm, hh], axis=1)
            sm = sm[:, np.argsort(sm[0] * n64 + sm[1])]
        if sm.shape[1]:
            at = np.searchsorted(
                clean_keys[clean_lo:clean_hi], sm[0] * n64 + sm[1]
            )
            sub_mats.append(sm)
            at_parts.append(at + clean_lo)
        round_counts[r - 1] = clean_hi - clean_lo + sm.shape[1]
        _check(
            round_counts[r - 1] == folded[r - 1].tasks_generated,
            "task-log splice disagrees with the folded task count",
        )
    # Manual column splice (same semantics as one global ``np.insert``
    # but one gather-scatter per row, no masking machinery): sub column
    # j lands at its clean insertion point plus the number of sub
    # columns already placed before it.
    if sub_mats:
        sub_all = np.concatenate(sub_mats, axis=1)
        at_all = np.concatenate(at_parts)
        sub_pos = at_all + np.arange(len(at_all), dtype=np.int64)
    else:
        sub_all = np.empty((6, 0), dtype=np.int64)
        sub_pos = _EMPTY
    total = clean_total + sub_all.shape[1]
    full_log = np.empty((6, total), dtype=np.int64)
    clean_pos = np.ones(total, dtype=bool)
    clean_pos[sub_pos] = False
    full_log[0][clean_pos] = state.log_hubs[keep_clean]
    full_log[1][clean_pos] = state.log_seeds[keep_clean]
    full_log[2][clean_pos] = state.log_scans[keep_clean]
    full_log[3][clean_pos] = state.log_fetches[keep_clean]
    full_log[4][clean_pos] = state.log_bytes[keep_clean]
    full_log[5][clean_pos] = state.log_outcomes[keep_clean]
    full_log[:, sub_pos] = sub_all
    # Greedy-dispatch replay over the merged task order.  Heap entries
    # are ``load * p2 + engine`` — a single int compares exactly like
    # the (load, engine) tuple (engine < p2) but sifts much faster, and
    # adding ``scans * p2`` re-pushes the least-loaded engine in place.
    p2 = config.p2
    heap = list(range(p2))
    heapreplace = heapq.heapreplace
    mc = full_log[2]
    for scaled in (mc[mc > 0] * p2).tolist():
        heapreplace(heap, heap[0] + scaled)

    per_engine = np.zeros(p2, dtype=np.int64)
    for entry in heap:
        per_engine[entry % p2] = entry // p2
    work = LocatorWork(
        total_adjacency_fetches=sum(r.adjacency_fetches for r in folded),
        total_adjacency_bytes=sum(r.adjacency_bytes for r in folded),
        total_detect_items=sum(r.detect_items for r in folded),
        total_bfs_scans=(
            cached.work.total_bfs_scans
            - int(old_dirty["bfs_scans"].sum())
            + sum(sr.scans_total for sr in new_rounds)
        ),
        per_engine_scans=per_engine,
    )
    _check(
        work.total_bfs_scans == int(full_log[2].sum()),
        "task-log replay disagrees with the folded scan total",
    )

    result = IslandizationResult(
        graph=new_graph,
        islands=islands_out,
        hub_ids=hub_ids,
        hub_round=hub_round,
        interhub_edges=all_ih,
        rounds=folded,
        work=work,
    )

    # --- refreshed state ----------------------------------------------
    new_labels = state.comp_labels.copy()
    new_class_round = state.class_round.copy()
    if m:
        offset = int(new_labels.max()) + 1
        new_labels[dn_mask] = -1
        sub_rows = np.repeat(np.arange(m, dtype=np.int64), sub_new.degrees)
        sub_labels, _, _ = _component_labels(
            sub_new, sub_rows, deg_new[region] < th0
        )
        sel = sub_labels >= 0
        new_labels[region[sel]] = sub_labels[sel] + offset
        for r, sr in enumerate(new_rounds, 1):
            if len(sr.islanded):
                new_class_round[sr.islanded] = r
            if len(sr.singles):
                new_class_round[sr.singles] = r
            if len(sr.new_hubs):
                new_class_round[sr.new_hubs] = r
    new_state = IncrementalState(
        th0=th0,
        comp_labels=new_labels,
        class_round=new_class_round,
        island_round=isl_round,
        island_seed=isl_seed,
        island_size=isl_size,
        winner_hubs=isl_winner,
        log_hubs=full_log[0],
        log_seeds=full_log[1],
        log_scans=full_log[2],
        log_fetches=full_log[3],
        log_bytes=full_log[4],
        log_outcomes=full_log[5].astype(np.int8),
        log_offsets=cumsum0(round_counts),
    )
    return IncrementalUpdate(
        result=result,
        state=new_state,
        fallback=False,
        fallback_reason=None,
        dirty_nodes=dirty_nodes,
        region_nodes=m,
    )
