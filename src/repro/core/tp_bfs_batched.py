"""Batched TP-BFS: the vectorized Island Locator hot path.

This module re-implements one round of Algorithm 1's Th3 phase (the
TP-BFS task queue of :mod:`repro.core.tp_bfs`) as stamp-array NumPy
kernels.  The one-round granularity is deliberate: each
:func:`execute_round_batched` call returns a complete
:class:`BatchedRoundOutcome`, which is exactly the unit
:meth:`IslandLocator.stream <repro.core.islandizer.IslandLocator.stream>`
hands to the Island Consumer as a
:class:`~repro.core.types.RoundOutput` — the §3.1.1/Fig. 3 streamed
pipeline needs no extra synchronisation inside this module.  The
contract is **exact result-equivalence** with the scalar
per-edge loop — identical islands (members in BFS discovery order,
hubs in first-contact order), identical inter-hub edges, identical
``RoundStats`` and ``LocatorWork`` counters — at array speed instead of
Python-interpreter speed (see ``benchmarks/bench_locator_scale.py``).

The key observation making batching *exact* is that, within one round,
the task queue's sequential dynamics decompose per connected component
of the **active subgraph** (unclassified non-hub nodes):

* a TP-BFS walk can never leave its seed's component (hubs bound it,
  and previously classified nodes are unreachable — a closed island's
  neighbourhood was fully classified when it closed);
* the round starts with an empty ``v_global``, so every component is
  untouched until its first task runs.

Hence, per round:

1. **Seed-is-hub tasks** are classified in bulk against the hub mask;
   their canonical inter-hub edges dedup through one sorted key array.
2. **Small components** (``size <= c_max``): the first task whose seed
   lands in the component wins and islands the *entire* component —
   no collision or cap abort is reachable — and every later task in
   the same component dies on the seed-visited check with zero work.
   Winners are found with one scatter; all winning BFS walks then run
   together as one **multi-source level-synchronous expansion**
   (vectorized CSR gathers; per-task member order equals each task's
   solo BFS order because components are disjoint).
3. **Large components** (``size > c_max``): tasks can abort mid-edge
   on the cap or on a collision with a previous partial walk, so they
   run sequentially through :func:`run_task_levelwise` — still
   level-vectorized, with the exact abort position recovered from
   per-level cumulative counts.

Classification uses one ``int8`` state array per round instead of the
scalar path's three stamp arrays, so each BFS level costs a single
gather:

====================  =====================================
state value            meaning
====================  =====================================
``STATE_FREE``    0    unclassified non-hub, not yet visited
``STATE_HUB``     1    hub (this round's threshold or older)
``STATE_VISITED`` 2    in ``v_global`` (some finished task)
``STATE_OWN``     3    in the *running* task's ``v_local``
``STATE_OWN_HUB`` 4    hub already recorded by the running task
====================  =====================================

Codes 3/4 are task-local and are folded back to 2/1 when the task
ends, so the next task sees only global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.core.nputil import cumsum0
from repro.core.tp_bfs import TaskOutcome
from repro.errors import IslandizationError
from repro.graph.csr import CSRGraph

__all__ = [
    "STATE_FREE",
    "STATE_HUB",
    "STATE_VISITED",
    "STATE_OWN",
    "STATE_OWN_HUB",
    "TASK_ISLAND",
    "TASK_SEED_HUB",
    "TASK_VISITED",
    "TASK_CMAX",
    "TASK_OUTCOME_CODES",
    "BatchedRoundOutcome",
    "run_task_levelwise",
    "execute_round_batched",
]

STATE_FREE = np.int8(0)
STATE_HUB = np.int8(1)
STATE_VISITED = np.int8(2)
STATE_OWN = np.int8(3)
STATE_OWN_HUB = np.int8(4)

#: Per-task outcome codes of ``BatchedRoundOutcome.task_outcomes``
#: (compact int8 encoding of :class:`~repro.core.tp_bfs.TaskOutcome`).
TASK_ISLAND = np.int8(0)
TASK_SEED_HUB = np.int8(1)
TASK_VISITED = np.int8(2)
TASK_CMAX = np.int8(3)

TASK_OUTCOME_CODES: dict[TaskOutcome, np.int8] = {
    TaskOutcome.ISLAND: TASK_ISLAND,
    TaskOutcome.SEED_IS_HUB: TASK_SEED_HUB,
    TaskOutcome.ALREADY_VISITED: TASK_VISITED,
    TaskOutcome.CMAX_EXCEEDED: TASK_CMAX,
}

_EMPTY = np.zeros(0, dtype=np.int64)

#: Island-size cap above which over-c_max walks use the level-wise
#: kernel; below it, carving walks are short enough that the per-edge
#: walker's lower constant wins.
_LEVELWISE_CMAX = 512


@dataclass
class BatchedRoundOutcome:
    """Everything one batched Th3 round hands back to the locator.

    ``islands`` are (members, hubs) pairs in the scalar path's append
    order (winning-task order); ``task_scans``, ``task_fetches``,
    ``task_bytes`` and ``task_outcomes`` hold each task's scan count,
    adjacency fetches/bytes and outcome code *in task order* — the
    scans drive the engine-dispatch replay, and the full per-task
    attribution is what lets incremental islandization subtract a
    dirty region's contribution from cached counters without
    re-running the old graph.
    """

    islands: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    new_interhub_keys: np.ndarray = field(default_factory=lambda: _EMPTY)
    dropped_classified: int = 0
    dropped_visited: int = 0
    dropped_cmax: int = 0
    scans: int = 0
    fetches: int = 0
    adjacency_bytes: int = 0
    task_scans: np.ndarray = field(default_factory=lambda: _EMPTY)
    task_fetches: np.ndarray = field(default_factory=lambda: _EMPTY)
    task_bytes: np.ndarray = field(default_factory=lambda: _EMPTY)
    task_outcomes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int8)
    )

    @property
    def islands_found(self) -> int:
        """Number of islands this round located."""
        return len(self.islands)

    @property
    def nodes_islanded(self) -> int:
        """Members across this round's islands."""
        return sum(len(members) for members, _ in self.islands)


def _first_occurrence(nbrs: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Mask of first occurrences in ``nbrs`` (order preserved).

    ``scratch`` is an int64 work array indexed by node id.  The
    reversed scatter makes each node's *earliest* flat index the one
    that survives, so a gather-compare marks exactly the first
    occurrence of every node — no sort, unlike ``np.unique``.  Stale
    scratch entries are harmless: only nodes written this call are
    read back.
    """
    idx = np.arange(len(nbrs), dtype=np.int64)
    scratch[nbrs[::-1]] = idx[::-1]
    return scratch[nbrs] == idx


def _flat_gather(
    indptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """CSR row gather positions for a frontier.

    Returns ``(flat, row_counts, total)`` where ``indices[flat]`` lists
    every neighbour entry of ``frontier`` in row-major (task scan)
    order — the same ``np.repeat``/``np.cumsum`` slicing trick the
    locator's Th2 task generation uses.
    """
    starts = indptr[frontier]
    row_counts = indptr[frontier + 1] - starts
    total = int(row_counts.sum())
    prefix = np.cumsum(row_counts) - row_counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - prefix, row_counts)
    return flat, row_counts, total


def run_task_levelwise(
    indptr: np.ndarray,
    indices: np.ndarray,
    state: np.ndarray,
    scratch: np.ndarray,
    c_max: int,
    seed_hub: int,
    a0: int,
) -> tuple[TaskOutcome, np.ndarray | None, np.ndarray | None, int, int, int]:
    """Execute one TP-BFS task with level-vectorized frontier expansion.

    Exact counterpart of :func:`repro.core.tp_bfs.run_bfs_task` for a
    seed that already passed the hub/visited checks: the frontier
    expands level by level with one CSR gather + one state gather, and
    the three break conditions are detected per level.  On an abort the
    scalar path's mid-scan position is recovered exactly — ``scans``
    counts entries up to and including the aborting one, fetches/bytes
    cover the rows popped up to that entry, and the cap-tripping member
    is still stamped into ``v_global`` (the scalar loop stamps before
    it checks the cap).

    Returns ``(outcome, members, hubs, scans, fetches, bytes)``;
    members/hubs are ``None`` unless the outcome is ``ISLAND``.
    """
    state[a0] = STATE_OWN
    state[seed_hub] = STATE_OWN_HUB
    member_chunks: list[np.ndarray] = [np.asarray([a0], dtype=np.int64)]
    hub_chunks: list[np.ndarray] = [np.asarray([seed_hub], dtype=np.int64)]
    count = 1
    scans = 0
    fetches = 0
    nbytes = 0
    frontier = member_chunks[0]
    aborted: TaskOutcome | None = None

    while frontier.size and aborted is None:
        if frontier.size == 1:
            # Single-node frontier (every task's first level, and every
            # level of chain-like walks): the row is a direct CSR slice
            # with unique sorted entries — no flat gather, no dedup.
            node = frontier[0]
            start, end = indptr[node], indptr[node + 1]
            nbrs = indices[start:end]
            total = int(end - start)
            row_counts = None
        else:
            flat, row_counts, total = _flat_gather(indptr, frontier)
            nbrs = indices[flat]
        s = state[nbrs]
        free = s == STATE_FREE
        collision = s == STATE_VISITED
        if row_counts is None:
            first = None             # single CSR row: entries are unique
            new_mask = free
        else:
            first = _first_occurrence(nbrs, scratch)
            new_mask = free & first
        new_count = int(np.count_nonzero(new_mask))
        collided = bool(collision.any())

        if collided or count + new_count > c_max:
            # First flat position where the member count would exceed
            # c_max: the new-member cumsum is non-decreasing, so
            # searchsorted finds it.
            if count + new_count > c_max:
                first_cmax = int(
                    np.searchsorted(np.cumsum(new_mask), c_max - count + 1)
                )
            else:
                first_cmax = total
            first_coll = int(np.argmax(collision)) if collided else total
            if first_coll < first_cmax:
                pos, aborted = first_coll, TaskOutcome.ALREADY_VISITED
                stamp_end = pos          # the colliding entry is not stamped
            else:
                pos, aborted = first_cmax, TaskOutcome.CMAX_EXCEEDED
                stamp_end = pos + 1      # the cap-tripping member is stamped
            stamped = nbrs[:stamp_end][new_mask[:stamp_end]]
            state[stamped] = STATE_VISITED
            if row_counts is None:
                row_end = total
                row = 0
            else:
                row_ends = np.cumsum(row_counts)
                row = int(np.searchsorted(row_ends, pos, side="right"))
                row_end = int(row_ends[row])
            scans += pos + 1
            fetches += row + 1
            nbytes += row_end * 4
            break

        scans += total
        fetches += len(frontier)
        nbytes += total * 4
        hub_contact = s == STATE_HUB
        if hub_contact.any():
            if first is not None:
                hub_contact &= first
            new_hubs = nbrs[hub_contact]
            state[new_hubs] = STATE_OWN_HUB
            hub_chunks.append(new_hubs)
        new_nodes = nbrs[new_mask]
        state[new_nodes] = STATE_OWN
        count += len(new_nodes)
        member_chunks.append(new_nodes)
        frontier = new_nodes

    members = np.concatenate(member_chunks)
    hubs = np.concatenate(hub_chunks)
    # Fold task-local codes back to global state: every touched member
    # stays in v_global (the paper keeps stamps on aborts so sibling
    # engines skip the region), recorded hubs go back to plain hubs.
    state[members] = STATE_VISITED
    state[hubs] = STATE_HUB
    if aborted is not None:
        return aborted, None, None, scans, fetches, nbytes
    return TaskOutcome.ISLAND, members, hubs, scans, fetches, nbytes


def _run_walk_edgewise(
    indptr: list[int],
    indices: list[int],
    state: bytearray,
    c_max: int,
    seed_hub: int,
    a0: int,
) -> tuple[TaskOutcome, np.ndarray | None, np.ndarray | None, int, int, int]:
    """Per-edge TP-BFS walk on a bytearray state (short-walk fast path).

    Same contract and semantics as :func:`run_task_levelwise`, mirroring
    the oracle loop of :func:`repro.core.tp_bfs.run_bfs_task` (the state
    codes are mutually exclusive, so the branch order is immaterial).
    Collision walks into partially stamped regions die after a handful
    of edge scans on typical graphs, where even per-level array dispatch
    costs more than it saves — so this walker runs on plain-Python data
    structures (list CSR, bytearray state) with ~40 ns per touch.
    :func:`execute_round_batched` picks the level-wise kernel instead
    when ``c_max`` is large enough for carving walks to amortise
    vectorization.
    """
    state[a0] = 3          # STATE_OWN
    state[seed_hub] = 4    # STATE_OWN_HUB
    members = [a0]
    hubs = [seed_hub]
    count = 1
    query = 0
    scans = 0
    fetches = 0
    nbytes = 0
    aborted: TaskOutcome | None = None
    while query != count and aborted is None:
        node = members[query]
        start, end = indptr[node], indptr[node + 1]
        fetches += 1
        nbytes += (end - start) * 4
        for nb in indices[start:end]:
            scans += 1
            s = state[nb]
            if s == 0:                 # STATE_FREE: new member
                count += 1
                members.append(nb)
                state[nb] = 3
                if count > c_max:
                    aborted = TaskOutcome.CMAX_EXCEEDED
                    break
            elif s == 2:               # STATE_VISITED: collision
                aborted = TaskOutcome.ALREADY_VISITED
                break
            elif s == 1:               # STATE_HUB: first contact
                hubs.append(nb)
                state[nb] = 4
            # 3 / 4: already this task's member or hub — skip.
        query += 1
    # Fold task-local codes back to global state (stamps persist).
    for node in members:
        state[node] = 2
    for node in hubs:
        state[node] = 1
    if aborted is not None:
        return aborted, None, None, scans, fetches, nbytes
    return (
        TaskOutcome.ISLAND,
        np.asarray(members, dtype=np.int64),
        np.asarray(hubs, dtype=np.int64),
        scans,
        fetches,
        nbytes,
    )


def _component_labels(
    graph: CSRGraph, rows: np.ndarray, active: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Connected components of the active (unclassified non-hub) subgraph.

    Returns ``(node_to_comp, comp_sizes, active_ids)`` where
    ``node_to_comp[u]`` is a component label for active ``u`` and -1
    elsewhere.  ``rows`` is the precomputed per-entry source array of
    the CSR (``repeat(arange(n), degrees)``), shared across rounds.
    """
    n = graph.num_nodes
    active_ids = np.flatnonzero(active)
    node_to_comp = np.full(n, -1, dtype=np.int64)
    if len(active_ids) == 0:
        return node_to_comp, _EMPTY, active_ids
    relabel = np.full(n, -1, dtype=np.int64)
    relabel[active_ids] = np.arange(len(active_ids), dtype=np.int64)
    # Induced-subgraph CSR built directly (the source CSR is already
    # row-major, so masking preserves order — no coo sort needed).
    keep = active[rows] & active[graph.indices]
    sub_cols = relabel[graph.indices[keep]]
    per_row = np.bincount(rows[keep], minlength=n)[active_ids]
    sub_indptr = cumsum0(per_row)
    sub = csr_matrix(
        (np.ones(len(sub_cols), dtype=np.int8), sub_cols, sub_indptr),
        shape=(len(active_ids), len(active_ids)),
    )
    # The adjacency is symmetric, so strong components of the directed
    # view equal undirected components; Tarjan runs straight off the
    # CSR, skipping the G + G^T transpose both other modes build.
    _, labels = connected_components(sub, directed=True, connection="strong")
    node_to_comp[active_ids] = labels
    comp_sizes = np.bincount(labels).astype(np.int64)
    return node_to_comp, comp_sizes, active_ids


def _multi_source_bfs(
    graph: CSRGraph,
    state: np.ndarray,
    scratch: np.ndarray,
    seeds: np.ndarray,
    seed_hubs: np.ndarray,
) -> tuple[list[tuple[np.ndarray, np.ndarray]], np.ndarray, np.ndarray, np.ndarray]:
    """Run every winning task's island BFS in one level-synchronous batch.

    All seeds lie in distinct untouched components, so the walks cannot
    interact: expanding them together level by level and regrouping by
    owner afterwards reproduces each task's solo BFS member order and
    hub first-contact order exactly.

    Returns ``(islands, scans, fetches, bytes)`` with per-owner arrays
    aligned to ``seeds``.
    """
    indptr, indices = graph.indptr, graph.indices
    num = len(seeds)
    member_nodes: list[np.ndarray] = [seeds]
    member_owner: list[np.ndarray] = [np.arange(num, dtype=np.int64)]
    # Hub-contact stream in global scan order; the pseudo level -1 seeds
    # each task's own hub first, matching the scalar append order.
    hub_stream_owner: list[np.ndarray] = [np.arange(num, dtype=np.int64)]
    hub_stream_hub: list[np.ndarray] = [seed_hubs.astype(np.int64)]
    state[seeds] = STATE_VISITED

    frontier = seeds
    owner = member_owner[0]
    while frontier.size:
        flat, row_counts, total = _flat_gather(indptr, frontier)
        if total == 0:
            break
        nbrs = indices[flat]
        nbr_owner = np.repeat(owner, row_counts)
        s = state[nbrs]
        first = _first_occurrence(nbrs, scratch)
        new_mask = (s == STATE_FREE) & first
        hub_mask = s == STATE_HUB
        if hub_mask.any():
            hub_stream_owner.append(nbr_owner[hub_mask])
            hub_stream_hub.append(nbrs[hub_mask])
        frontier = nbrs[new_mask]
        owner = nbr_owner[new_mask]
        state[frontier] = STATE_VISITED
        member_nodes.append(frontier)
        member_owner.append(owner)

    all_nodes = np.concatenate(member_nodes)
    owners = np.concatenate(member_owner)
    # Stable grouping by owner preserves each task's (level, scan-order)
    # sequence — exactly the scalar queue's append order.
    order = np.argsort(owners, kind="stable")
    nodes = all_nodes[order]
    counts = np.bincount(owners, minlength=num)
    offsets = cumsum0(counts)

    degrees = indptr[1:] - indptr[:-1]
    scans = np.bincount(owners, weights=degrees[all_nodes],
                        minlength=num).astype(np.int64)
    fetches = counts.astype(np.int64)
    nbytes = scans * 4

    # Hub first-contact dedup per (owner, hub), keeping stream order.
    so = np.concatenate(hub_stream_owner)
    sh = np.concatenate(hub_stream_hub)
    keys = so * np.int64(graph.num_nodes + 1) + sh
    _, first_idx = np.unique(keys, return_index=True)
    first_idx = np.sort(first_idx)
    ho, hh = so[first_idx], sh[first_idx]
    h_order = np.argsort(ho, kind="stable")
    hh = hh[h_order]
    h_counts = np.bincount(ho, minlength=num)
    h_offsets = cumsum0(h_counts)

    islands = [
        (
            nodes[offsets[i]:offsets[i + 1]],
            hh[h_offsets[i]:h_offsets[i + 1]],
        )
        for i in range(num)
    ]
    return islands, scans, fetches, nbytes


def execute_round_batched(
    graph: CSRGraph,
    rows: np.ndarray,
    is_hub: np.ndarray,
    classified: np.ndarray,
    c_max: int,
    task_hubs: np.ndarray,
    task_seeds: np.ndarray,
    interhub_keys: np.ndarray,
    csr_lists: dict,
) -> BatchedRoundOutcome:
    """Execute one round's TP-BFS task queue, batched.

    Parameters mirror the scalar loop's per-round inputs: ``is_hub``
    and ``classified`` reflect the state *after* this round's hub
    detection, ``task_hubs``/``task_seeds`` are the Th2-generated queue
    in task order, and ``interhub_keys`` is the sorted canonical key
    array (``min * n + max``) of all inter-hub edges found in earlier
    rounds.  ``csr_lists`` is a per-run cache dict the round fills with
    list-typed CSR copies the first time a round needs the plain-Python
    walker.  The outcome's per-task scans let the caller replay the
    greedy engine dispatch in task order.
    """
    n = graph.num_nodes
    num_tasks = len(task_seeds)
    out = BatchedRoundOutcome()
    if num_tasks == 0:
        return out
    task_scans = np.zeros(num_tasks, dtype=np.int64)
    task_fetches = np.zeros(num_tasks, dtype=np.int64)
    task_bytes = np.zeros(num_tasks, dtype=np.int64)
    # Default VISITED: the only zero-work outcome a BFS task can have
    # (losers of a component race and instant deaths); every other
    # path overwrites its own entries.
    task_outcomes = np.full(num_tasks, TASK_VISITED, dtype=np.int8)

    # --- seed-is-hub tasks: bulk inter-hub edge collection ------------
    seed_hub_mask = is_hub[task_seeds]
    out.dropped_classified = int(seed_hub_mask.sum())
    if out.dropped_classified:
        task_outcomes[seed_hub_mask] = TASK_SEED_HUB
        hu = task_hubs[seed_hub_mask]
        hv = task_seeds[seed_hub_mask]
        keys = np.minimum(hu, hv) * np.int64(n) + np.maximum(hu, hv)
        keys = np.sort(keys)
        if len(keys) > 1:
            distinct = np.ones(len(keys), dtype=bool)
            np.not_equal(keys[1:], keys[:-1], out=distinct[1:])
            keys = keys[distinct]
        if len(interhub_keys):
            keys = keys[
                interhub_keys[
                    np.clip(np.searchsorted(interhub_keys, keys), 0,
                            len(interhub_keys) - 1)
                ] != keys
            ]
        out.new_interhub_keys = keys

    bfs_idx = np.flatnonzero(~seed_hub_mask)
    if len(bfs_idx) == 0:
        out.task_scans = task_scans
        out.task_fetches = task_fetches
        out.task_bytes = task_bytes
        out.task_outcomes = task_outcomes
        return out
    bfs_seeds = task_seeds[bfs_idx]

    # --- component routing --------------------------------------------
    active = ~classified & ~is_hub
    node_to_comp, comp_sizes, _ = _component_labels(graph, rows, active)
    seed_comp = node_to_comp[bfs_seeds]
    if len(seed_comp) and int(seed_comp.min()) < 0:
        raise IslandizationError(
            "internal: TP-BFS task seed is already classified"
        )

    # First task per component wins; the reversed scatter keeps the
    # lowest task index.  Only small components can produce islands.
    first_task = np.full(len(comp_sizes), -1, dtype=np.int64)
    first_task[seed_comp[::-1]] = bfs_idx[::-1]
    small = comp_sizes[seed_comp] <= c_max
    winner = small & (first_task[seed_comp] == bfs_idx)
    out.dropped_visited += int(np.count_nonzero(small & ~winner))

    state = np.zeros(n, dtype=np.int8)
    state[is_hub] = STATE_HUB
    scratch = np.zeros(n, dtype=np.int64)

    # --- small components: one multi-source BFS for all winners -------
    win_pos = np.flatnonzero(winner)
    if len(win_pos):
        win_idx = bfs_idx[win_pos]
        islands, scans, fetches, nbytes = _multi_source_bfs(
            graph, state, scratch, bfs_seeds[win_pos], task_hubs[win_idx]
        )
        out.islands.extend(islands)
        task_scans[win_idx] = scans
        task_fetches[win_idx] = fetches
        task_bytes[win_idx] = nbytes
        task_outcomes[win_idx] = TASK_ISLAND
        out.scans += int(scans.sum())
        out.fetches += int(fetches.sum())
        out.adjacency_bytes += int(nbytes.sum())

    # --- large components: exact sequential walks ---------------------
    # The first walk into a fresh over-c_max region carves up to c_max
    # members; later walks collide with the stamped zone after a few
    # edge scans.  Level-vectorized expansion only pays off when the
    # carve is long, so small caps use the per-edge bytearray walker.
    big_pos = np.flatnonzero(~small)
    if len(big_pos):
        levelwise = c_max >= _LEVELWISE_CMAX
        if not levelwise:
            # Snapshot the numpy state for plain-Python walking.  The
            # walk phase is the round's last consumer of the state, so
            # the snapshot never needs to be written back.
            if "indptr" not in csr_lists:
                csr_lists["indptr"] = graph.indptr.tolist()
                csr_lists["indices"] = graph.indices.tolist()
            indptr_l, indices_l = csr_lists["indptr"], csr_lists["indices"]
            wstate = bytearray(state)
        walk_seeds = bfs_seeds[big_pos].tolist()
        walk_idx = bfs_idx[big_pos]
        walk_hubs = task_hubs[walk_idx].tolist()
        for pos, a0, seed_hub in zip(walk_idx.tolist(), walk_seeds, walk_hubs):
            if levelwise:
                if int(state[a0]) == 2:  # STATE_VISITED: instant death
                    out.dropped_visited += 1
                    continue
                outcome, members, hubs, scans, fetches, nbytes = (
                    run_task_levelwise(
                        graph.indptr, graph.indices, state, scratch,
                        c_max, seed_hub, a0,
                    )
                )
            else:
                if wstate[a0] == 2:      # STATE_VISITED: instant death
                    out.dropped_visited += 1
                    continue
                outcome, members, hubs, scans, fetches, nbytes = (
                    _run_walk_edgewise(
                        indptr_l, indices_l, wstate, c_max, seed_hub, a0
                    )
                )
            task_scans[pos] = scans
            task_fetches[pos] = fetches
            task_bytes[pos] = nbytes
            task_outcomes[pos] = TASK_OUTCOME_CODES[outcome]
            out.scans += scans
            out.fetches += fetches
            out.adjacency_bytes += nbytes
            if outcome is TaskOutcome.ISLAND:
                # Unreachable for components larger than c_max, but the
                # kernels are general; keep the result rather than assume.
                out.islands.append((members, hubs))
            elif outcome is TaskOutcome.ALREADY_VISITED:
                out.dropped_visited += 1
            else:
                out.dropped_cmax += 1

    out.task_scans = task_scans
    out.task_fetches = task_fetches
    out.task_bytes = task_bytes
    out.task_outcomes = task_outcomes
    return out
