"""Small shared NumPy idioms used across the batched kernels.

No paper section of its own: these are the offset/slicing primitives
the vectorized implementations of Algorithm 1's TP-BFS
(:mod:`repro.core.tp_bfs_batched`) and the Island Consumer's task
batch (§3.3, :mod:`repro.core.consumer_batched`) are built from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cumsum0"]


def cumsum0(values) -> np.ndarray:
    """Exclusive-prefix-sum with a leading zero (CSR-style offsets).

    ``cumsum0(counts)[t] .. cumsum0(counts)[t + 1]`` is element ``t``'s
    slice of a flat array partitioned by ``counts`` — the offsets idiom
    every batched kernel (locator, consumer, pre-aggregation layout)
    leans on.
    """
    values = np.asarray(values)
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out
