"""Small shared NumPy idioms used across the batched kernels."""

from __future__ import annotations

import numpy as np

__all__ = ["cumsum0"]


def cumsum0(values) -> np.ndarray:
    """Exclusive-prefix-sum with a leading zero (CSR-style offsets).

    ``cumsum0(counts)[t] .. cumsum0(counts)[t + 1]`` is element ``t``'s
    slice of a flat array partitioned by ``counts`` — the offsets idiom
    every batched kernel (locator, consumer, pre-aggregation layout)
    leans on.
    """
    values = np.asarray(values)
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out
