"""Pre-aggregation and the 1×k window scan (§3.3.1, Figure 7).

During combination the PE pre-sums the combination results of every
``k`` consecutive local columns (one *group*).  Aggregation then slides
a 1×k window along each bitmap row; for a window with ``z`` non-zeros
out of width ``w`` the PE picks the cheapest of:

* **direct**   — add the ``z`` connected vectors: ``z`` ops;
* **reuse**    — add the group's pre-sum and subtract the ``w - z``
  missing vectors: ``1 + (w - z)`` ops (a full window costs one op).

Every op is a vector add/sub of the feature width, so op counts
translate to MACs by multiplying with ``out_dim``.  The *baseline* (no
islandization) cost of the same row is ``z`` per window — the per-edge
accumulation every other dataflow performs — which is what Figure 10's
pruning rate is measured against.

Segmentation: the island task stores the hub vectors and the island
matrix as separate structures (Figure 3(A)), so pre-aggregation groups
do not straddle the hub/member boundary; ``boundary`` restarts the
group tiling at that column.  This keeps the dense member blocks
aligned with the windows, which is where the reuse lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.nputil import cumsum0

__all__ = [
    "ScanCounts",
    "scan_costs",
    "scan_aggregate",
    "group_layout",
    "group_layout_batch",
    "classify_windows",
]


@dataclass
class ScanCounts:
    """Vector-op accounting for one or more island scans."""

    baseline_ops: int = 0        # per-edge adds without reuse (= bitmap nnz)
    scan_ops: int = 0            # adds/subs actually performed
    preagg_build_ops: int = 0    # group pre-sum construction
    windows_full: int = 0        # served by one group add
    windows_subtract: int = 0    # group add + few subtractions
    windows_direct: int = 0      # cheaper to add directly
    windows_skipped: int = 0     # all-zero windows (pipeline-bubble skip)

    @property
    def total_ops(self) -> int:
        """All vector ops including pre-sum construction."""
        return self.scan_ops + self.preagg_build_ops

    @property
    def pruned_ops(self) -> int:
        """Vector ops avoided relative to the per-edge baseline."""
        return self.baseline_ops - self.total_ops

    @property
    def pruning_rate(self) -> float:
        """Fraction of baseline aggregation ops eliminated (Fig 10)."""
        if self.baseline_ops == 0:
            return 0.0
        return self.pruned_ops / self.baseline_ops

    def merge(self, other: "ScanCounts") -> None:
        """Accumulate another scan's counts."""
        self.baseline_ops += other.baseline_ops
        self.scan_ops += other.scan_ops
        self.preagg_build_ops += other.preagg_build_ops
        self.windows_full += other.windows_full
        self.windows_subtract += other.windows_subtract
        self.windows_direct += other.windows_direct
        self.windows_skipped += other.windows_skipped


def group_layout(
    num_cols: int, k: int, *, boundary: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Group (start, width) tiling of the columns.

    Groups tile ``[0, boundary)`` and ``[boundary, num_cols)``
    independently so no window straddles the hub/member split.
    """
    starts: list[int] = []
    widths: list[int] = []
    for lo, hi in ((0, boundary), (boundary, num_cols)):
        pos = lo
        while pos < hi:
            width = min(k, hi - pos)
            starts.append(pos)
            widths.append(width)
            pos += width
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(widths, dtype=np.int64),
    )


def group_layout_batch(
    boundaries: np.ndarray, num_cols: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`group_layout` over many bitmaps at once.

    Returns ``(groups_per_task, group_offsets, starts_flat,
    widths_flat)``: task ``t``'s groups occupy
    ``starts_flat[group_offsets[t]:group_offsets[t + 1]]`` and hold
    exactly the values ``group_layout(num_cols[t], k,
    boundary=boundaries[t])`` would produce.
    """
    bound = np.asarray(boundaries, dtype=np.int64)
    cols = np.asarray(num_cols, dtype=np.int64)
    hub_groups = (bound + k - 1) // k
    groups = hub_groups + (cols - bound + k - 1) // k
    offsets = cumsum0(groups)
    total = int(offsets[-1])
    gtask = np.repeat(np.arange(len(bound), dtype=np.int64), groups)
    grank = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], groups)
    in_hub = grank < hub_groups[gtask]
    starts = np.where(
        in_hub, grank * k, bound[gtask] + (grank - hub_groups[gtask]) * k
    )
    ends = np.where(in_hub, bound[gtask], cols[gtask])
    widths = np.minimum(k, ends - starts)
    return groups, offsets, starts, widths


def classify_windows(
    z: np.ndarray, widths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Elementwise add-vs-subtract window classification.

    ``z`` holds per-window non-zero counts, ``widths`` the window
    widths (any mutually broadcastable shapes).  Returns ``(full,
    subtract, direct, cost)``: the three masks partition the non-empty
    windows and ``cost`` is each window's op count.  Shared by the
    per-bitmap scans below and the batched multi-island consumer so
    every path classifies identically.
    """
    direct = z
    reuse = 1 + (widths - z)
    single = widths == 1
    cost = np.where(z == 0, 0, np.minimum(direct, reuse))
    cost = np.where(single, direct, cost)

    nonzero = z > 0
    full = nonzero & (z == widths) & ~single
    subtract = nonzero & ~full & (reuse < direct) & ~single
    direct_mask = nonzero & ~full & ~subtract
    return full, subtract, direct_mask, cost


def _window_classes(
    bitmap: np.ndarray, starts: np.ndarray, widths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-(row, group) non-zero counts and add/subtract class masks.

    Shared by the counting and functional scans so their
    :class:`ScanCounts` agree op-for-op.  Returns ``(z, full,
    subtract, direct, cost)`` where the three masks partition the
    non-empty windows and ``cost`` is each window's op count.
    """
    rows, cols = bitmap.shape
    prefix = np.zeros((rows, cols + 1), dtype=np.int64)
    np.cumsum(bitmap, axis=1, out=prefix[:, 1:])
    ends = starts + widths
    z = prefix[:, ends] - prefix[:, starts]
    full, subtract, direct_mask, cost = classify_windows(z, widths[None, :])
    return z, full, subtract, direct_mask, cost


def scan_costs(bitmap: np.ndarray, k: int, *, boundary: int = 0) -> ScanCounts:
    """Count-only window scan of one island bitmap (performance mode)."""
    if bitmap.size == 0:
        return ScanCounts()
    starts, widths = group_layout(bitmap.shape[1], k, boundary=boundary)
    z, full, subtract, direct_mask, cost = _window_classes(bitmap, starts, widths)
    # Pre-sums are built for every multi-column group during combination
    # (width - 1 adds each), as the paper constructs them unconditionally.
    build = int(np.maximum(widths - 1, 0).sum())
    return ScanCounts(
        baseline_ops=int(z.sum()),
        scan_ops=int(cost.sum()),
        preagg_build_ops=build,
        windows_full=int(full.sum()),
        windows_subtract=int(subtract.sum()),
        windows_direct=int(direct_mask.sum()),
        windows_skipped=int((z == 0).sum()),
    )


def scan_aggregate(
    bitmap: np.ndarray,
    k: int,
    xw_local: np.ndarray,
    *,
    boundary: int = 0,
) -> tuple[np.ndarray, ScanCounts]:
    """Functional window scan: returns (row accumulators, op counts).

    ``xw_local`` holds the pre-scaled combination results of the local
    columns, shape (L, C).  The result row ``t`` is exactly
    ``sum_s bitmap[t, s] * xw_local[s]`` — computed through the group
    reuse path so tests can prove the redundancy removal is lossless.
    """
    rows, cols = bitmap.shape
    feat = xw_local.shape[1]
    acc = np.zeros((rows, feat), dtype=np.float64)
    if bitmap.size == 0:
        return acc, ScanCounts()

    bmap = bitmap.astype(bool, copy=False)
    starts, widths = group_layout(cols, k, boundary=boundary)
    # Pre-aggregation: group sums built once per island.
    group_sums = np.add.reduceat(np.asarray(xw_local, dtype=np.float64),
                                 starts, axis=0)
    z, full, subtract, direct_mask, cost = _window_classes(bmap, starts, widths)
    counts = ScanCounts(
        baseline_ops=int(z.sum()),
        scan_ops=int(cost.sum()),
        preagg_build_ops=int(np.maximum(widths - 1, 0).sum()),
        windows_full=int(full.sum()),
        windows_subtract=int(subtract.sum()),
        windows_direct=int(direct_mask.sum()),
        windows_skipped=int((z == 0).sum()),
    )
    # Row t accumulates: one group pre-sum per full/subtract window,
    # minus the absent columns of subtract windows, plus the present
    # columns of direct windows — three dense products instead of the
    # former per-row × per-group Python loop (the bitmaps are small and
    # dense, so sparse kernels would not pay off).
    acc += (full | subtract).astype(np.float64) @ group_sums
    col_group = np.repeat(np.arange(len(starts)), widths)
    sub_cols = subtract[:, col_group] & ~bmap
    if sub_cols.any():
        acc -= sub_cols.astype(np.float64) @ xw_local
    dir_cols = direct_mask[:, col_group] & bmap
    if dir_cols.any():
        acc += dir_cols.astype(np.float64) @ xw_local
    return acc, counts
