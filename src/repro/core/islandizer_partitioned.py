"""Partition-parallel, out-of-core islandization.

Scales the Island Locator past whole-graph-in-memory: the graph is
split by ``repro.graph.partition`` into ``P`` vertex-separator shards,
each shard is persisted as an uncompressed ``.npz`` through the disk
artifact store and islandized by a ``ProcessPoolExecutor`` worker that
**memory-maps** its shard (``GraphShard.from_npz_mmap``) — no worker
ever materialises the full graph.  A reconciliation pass then merges
the per-shard results into one :class:`IslandizationResult`:

* **boundary hubs** — every separator node becomes a global hub in a
  synthetic round 0 (the partitioner found them with the same decaying
  degree schedule the locator's early rounds use);
* **island stitching** — shard islands keep their member/hub order,
  get renumbered round-major across shards, and boundary hubs adjacent
  to their members are attached so the member→hub edge-coverage
  contract holds;
* **inter-hub stitching** — every boundary-incident edge whose other
  endpoint is a hub (boundary or shard-local) becomes a canonical
  inter-hub pair; shard-local pairs map through the monotone
  local→global node map unchanged.

The merged result passes ``IslandizationResult.validate()`` — every
node classified exactly once, exact directed-edge coverage — and with
``partitions == 1`` (one shard = the whole graph, empty boundary) the
round-trip through the shard store and worker fleet is **exactly
equal** (``IslandizationResult.equals``) to the monolithic locator:
that is the oracle contract every kernel PR in this repo ships.

For ``partitions > 1`` the result is *not* bit-identical to the
monolithic run — separator promotion trades islandization quality for
memory-bounded, shard-local work.  The delta is quantified, not
hidden: :func:`quality_metrics` reports islands found, hub coverage
and the classified-edge ratio, and the partition benchmark records
them per tier.
"""

from __future__ import annotations

import io
import os
import resource
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.islandizer import IslandLocator
from repro.core.types import (
    ROUND_FIELDS,
    Island,
    IslandizationResult,
    LocatorWork,
    RoundStats,
)
from repro.errors import IslandizationError
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphShard, partition_graph
from repro.serialize import config_digest

__all__ = [
    "ShardRun",
    "islandize_partitioned",
    "quality_metrics",
    "shard_store_key",
]

#: Bytes of one directed adjacency entry (int64 column index) — the
#: unit the locator's own adjacency_bytes accounting uses.
_ENTRY_BYTES = 8


@dataclass(frozen=True)
class ShardRun:
    """One worker's report: which shard, its result, its peak RSS."""

    part_id: int
    result: IslandizationResult
    max_rss_kb: int


def shard_store_key(graph: CSRGraph, config: LocatorConfig, part_id: int) -> str:
    """Stable store key of one shard file (kind ``"shard"``)."""
    return f"{graph.fingerprint()}|loc={config_digest(config)}|shard={part_id}"


def islandize_partitioned(
    graph: CSRGraph,
    config: LocatorConfig | None = None,
    *,
    store=None,
    max_workers: int | None = None,
) -> IslandizationResult:
    """Partition ``graph``, islandize every shard out-of-core, merge.

    ``store`` may be a :class:`~repro.runtime.store.DiskStore` (or a
    tiered store containing one): shards are persisted through it and
    re-used across runs.  Without one, shards live in a temporary
    directory for the duration of the call.  ``max_workers`` caps the
    worker fleet (default: one worker per shard, bounded by the CPU
    count).
    """
    config = config or LocatorConfig()
    if graph.has_self_loops():
        raise IslandizationError(
            "partitioned islandization expects a graph without self-loops"
        )
    partition = partition_graph(
        graph,
        config.partitions,
        strategy=config.partition_strategy,
        threshold=config.initial_threshold(graph.degrees),
        decay=config.decay,
        th_min=config.th_min,
    )
    runs = _run_shards(graph, config, partition, store, max_workers)
    if config.partitions == 1:
        # Single shard == whole graph: the worker's result IS the
        # monolithic result (the npz round-trip is byte-identical);
        # re-point it at the caller's graph object and hand it back.
        result = runs[0].result
        result.graph = graph
        return result
    return _merge(
        graph, config,
        boundary=partition.boundary_nodes,
        maps=[shard.global_nodes for shard in partition.shards],
        stats=partition.stats,
        shard_results=[run.result for run in runs],
    )


def _run_shards(graph, config, partition, store, max_workers):
    """Persist shards through the store, run the worker fleet."""
    shard_config = replace(config, partitions=1)
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as scratch:
        paths = _persist_shards(graph, config, partition, store, scratch)
        workers = max_workers or min(
            len(paths), max(1, os.cpu_count() or 1)
        )
        workers = max(1, min(workers, len(paths)))
        jobs = [(path, shard_config) for path in paths]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(_shard_worker, jobs))
    runs = sorted(
        (ShardRun(part_id, IslandizationResult.from_npz(io.BytesIO(blob)),
                  rss)
         for part_id, blob, rss in raw),
        key=lambda run: run.part_id,
    )
    if [run.part_id for run in runs] != list(range(partition.num_parts)):
        raise IslandizationError("worker fleet lost a shard result")
    return runs


def _persist_shards(graph, config, partition, store, scratch) -> list[str]:
    """Write every shard as an npz; return its on-disk paths in order."""
    disk = _disk_tier(store)
    paths: list[str] = []
    for shard in partition.shards:
        if disk is None:
            path = os.path.join(scratch, f"shard{shard.part_id}.npz")
            shard.to_npz(path)
        else:
            key = shard_store_key(graph, config, shard.part_id)
            # Unconditional (re)write: put() is atomic, and a cheap
            # rewrite beats a stale-shard debugging session.
            disk.put("shard", key, shard)
            path = str(disk.path_for("shard", key))
        paths.append(path)
    return paths


def _disk_tier(store):
    """The DiskStore inside ``store`` (tiered stacks welcome), if any."""
    if store is None:
        return None
    if hasattr(store, "path_for"):
        return store
    for tier in getattr(store, "tiers", ()):  # TieredStore
        if hasattr(tier, "path_for"):
            return tier
    return None


def _shard_worker(job):
    """Fleet entry point: mmap one shard, islandize, ship npz bytes.

    The result travels home as serialized bytes rather than a pickled
    object: the round-trip is byte-identical (pinned by the store
    tests) and it keeps memory-mapped shard arrays out of the pickle
    stream.
    """
    path, shard_config = job
    shard = GraphShard.from_npz_mmap(path)
    result = IslandLocator(shard_config).run(shard.graph)
    buf = io.BytesIO()
    result.to_npz(buf)
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return shard.part_id, buf.getvalue(), int(rss)


# ----------------------------------------------------------------------
# Reconciliation
# ----------------------------------------------------------------------
def _merge(
    graph: CSRGraph,
    config: LocatorConfig,
    *,
    boundary: np.ndarray,
    maps: list[np.ndarray],
    stats,
    shard_results: list[IslandizationResult],
) -> IslandizationResult:
    """Merge per-shard results into one valid global result.

    Takes the partition as loose pieces (separator, per-shard global
    node maps, the frozen :class:`~repro.graph.partition.PartitionStats`)
    rather than a :class:`GraphPartition`: the incremental router
    re-reconciles from cached per-shard results long after the shard
    objects are gone, and the merge never needs the shard graphs.
    """
    n = graph.num_nodes

    # Global hub set: boundary (round 0) + every shard hub (its round).
    hub_ids = [boundary]
    hub_round = [np.zeros(len(boundary), dtype=np.int64)]
    for local_map, res in zip(maps, shard_results):
        hub_ids.append(local_map[res.hub_ids])
        hub_round.append(np.asarray(res.hub_round, dtype=np.int64))
    hub_ids = np.concatenate(hub_ids)
    hub_round = np.concatenate(hub_round)

    # Renumber islands round-major across shards so island round_ids
    # stay non-decreasing (iter_rounds' replay contract), mapping
    # members/hubs to global IDs (monotone maps keep their order
    # meaningful).  Everything runs on per-part flat arrays — islands
    # are only materialised as objects in one final pass.
    max_rounds = max((res.num_rounds for res in shard_results), default=0)
    flat = [_flatten_islands(res, local_map)
            for res, local_map in zip(shard_results, maps)]
    round_all = np.concatenate(
        [f["round_ids"] for f in flat]
        or [np.zeros(0, dtype=np.int64)]
    )
    # Stable sort by round keeps part order, then shard-local order,
    # within each round — the round-major global numbering.
    perm = np.argsort(round_all, kind="stable")
    num_islands = len(perm)
    part_of_isl = np.concatenate(
        [np.full(len(f["round_ids"]), part, dtype=np.int64)
         for part, f in enumerate(flat)]
        or [np.zeros(0, dtype=np.int64)]
    )[perm]
    local_of_isl = np.concatenate(
        [np.arange(len(f["round_ids"]), dtype=np.int64) for f in flat]
        or [np.zeros(0, dtype=np.int64)]
    )[perm]
    round_of_isl = round_all[perm]

    # Classify every boundary-incident directed edge: hub endpoint →
    # canonical inter-hub pair; member endpoint → that member's island
    # must attach the boundary hub.
    island_of = np.full(n, -1, dtype=np.int64)
    for part, f in enumerate(flat):
        # New id of shard island `j` = its position in the permuted
        # global order; scatter it over the island's members.
        sel = part_of_isl == part
        new_id_of_part = np.empty(len(f["round_ids"]), dtype=np.int64)
        new_id_of_part[local_of_isl[sel]] = np.flatnonzero(sel)
        island_of[f["members"]] = np.repeat(new_id_of_part, f["m_counts"])
    # Boundary-incident edges are most of a hub-heavy graph, so this
    # section runs in int32 (node ids fit comfortably) with one fused
    # uint8 node-class gather — the passes here are memory-bound and
    # element width is the cost.
    cls = np.zeros(n, dtype=np.uint8)          # 0 member, 1 shard hub,
    cls[hub_ids] = 1                           # 2 boundary
    cls[boundary] = 2
    indices32 = graph.indices.astype(np.int32)
    boundary32 = boundary.astype(np.int32)
    b_counts = (
        graph.indptr[boundary + 1] - graph.indptr[boundary]
    ).astype(np.int32)
    total = int(b_counts.sum())
    starts = graph.indptr[boundary].astype(np.int32)
    inner = np.arange(total, dtype=np.int32) - np.repeat(
        (np.cumsum(b_counts, dtype=np.int64) - b_counts).astype(np.int32),
        b_counts,
    )
    src = np.repeat(boundary32, b_counts)
    dst = indices32[np.repeat(starts, b_counts) + inner]
    c = cls[dst]
    # Stitched pairs are unique BY CONSTRUCTION — no dedup sort needed:
    # a boundary→shard-hub undirected edge shows up in exactly one
    # boundary row, and a boundary↔boundary edge in exactly two, of
    # which we keep only the src < dst direction.  Each kept directed
    # edge therefore maps to a distinct canonical (min, max) pair.
    keep_pair = (c == 1) | ((c == 2) & (src < dst))
    pair_src = src[keep_pair]
    pair_dst = dst[keep_pair]
    stitched = np.empty((len(pair_src), 2), dtype=np.int64)
    stitched[:, 0] = np.minimum(pair_src, pair_dst)
    stitched[:, 1] = np.maximum(pair_src, pair_dst)
    member_mask = c == 0
    member_dst = dst[member_mask]
    member_isl = island_of[member_dst]
    if len(member_isl) and (member_isl < 0).any():
        bad = int(member_dst[int(np.argmin(member_isl))])
        raise IslandizationError(
            f"boundary edge reaches unclassified node {bad}"
        )
    # (island, hub) attachments DO repeat (one boundary hub, many edges
    # into the same island): sort + neighbour-diff dedup — same result
    # as np.unique, several times cheaper than its hash path here.
    span = np.int64(max(n, 1))
    attach_keys = np.sort(member_isl * span + src[member_mask])
    if len(attach_keys):
        first = np.empty(len(attach_keys), dtype=bool)
        first[0] = True
        np.not_equal(attach_keys[1:], attach_keys[:-1], out=first[1:])
        attach_keys = attach_keys[first]
    attach_isl = attach_keys // span
    attach_hub = attach_keys % span
    # Per island, its adjacent boundary hubs (ascending — the key sort
    # groups by island, then hub) are appended after the shard-local
    # first-contact hubs.
    extra_counts = np.bincount(attach_isl, minlength=num_islands)
    extra_offsets = np.zeros(num_islands + 1, dtype=np.int64)
    np.cumsum(extra_counts, out=extra_offsets[1:])

    islands: list[Island] = []
    for new_id in range(num_islands):
        f = flat[part_of_isl[new_id]]
        j = local_of_isl[new_id]
        hubs = f["hubs"][f["h_offsets"][j]:f["h_offsets"][j + 1]]
        lo, hi = extra_offsets[new_id], extra_offsets[new_id + 1]
        if hi > lo:
            hubs = np.concatenate([hubs, attach_hub[lo:hi]])
        islands.append(Island.from_trusted_arrays(
            round_id=int(round_of_isl[new_id]),
            members=f["members"][
                f["m_offsets"][j]:f["m_offsets"][j + 1]
            ],
            hubs=hubs,
        ))

    # Inter-hub map: stitched boundary pairs first (boundary-row
    # traversal order), then every shard's local pairs mapped to global
    # IDs, in part order.  The two sets are disjoint: stitched pairs
    # always touch a boundary node, shard-local pairs never do.
    interhub_parts = [stitched.astype(np.int64)]
    for local_map, res in zip(maps, shard_results):
        if len(res.interhub_edges):
            interhub_parts.append(local_map[res.interhub_edges])
    interhub_edges = (
        np.concatenate(interhub_parts)
        if any(len(p) for p in interhub_parts)
        else np.zeros((0, 2), dtype=np.int64)
    )

    rounds = _merge_rounds(
        graph, config, stats, shard_results,
        boundary_hubs=len(boundary),
        stitched_pairs=len(stitched),
        max_rounds=max_rounds,
    )
    work = _merge_work(shard_results, rounds)
    result = IslandizationResult(
        graph=graph,
        islands=islands,
        hub_ids=hub_ids,
        hub_round=hub_round,
        interhub_edges=interhub_edges,
        rounds=rounds,
        work=work,
    )
    return result


def _flatten_islands(res: IslandizationResult, local_map: np.ndarray) -> dict:
    """One shard's islands as flat global-mapped arrays + offsets."""
    num = len(res.islands)
    m_counts = np.fromiter(
        (isl.num_members for isl in res.islands), dtype=np.int64, count=num
    )
    h_counts = np.fromiter(
        (isl.num_hubs for isl in res.islands), dtype=np.int64, count=num
    )
    m_offsets = np.zeros(num + 1, dtype=np.int64)
    np.cumsum(m_counts, out=m_offsets[1:])
    h_offsets = np.zeros(num + 1, dtype=np.int64)
    np.cumsum(h_counts, out=h_offsets[1:])
    empty = np.zeros(0, dtype=np.int64)
    members = local_map[
        np.concatenate([isl.members for isl in res.islands])
        if num else empty
    ]
    hubs = local_map[
        np.concatenate([isl.hubs for isl in res.islands])
        if num else empty
    ]
    round_ids = np.fromiter(
        (isl.round_id for isl in res.islands), dtype=np.int64, count=num
    )
    return {
        "round_ids": round_ids,
        "m_counts": m_counts,
        "m_offsets": m_offsets,
        "h_offsets": h_offsets,
        "members": members,
        "hubs": hubs,
    }


def _merge_rounds(graph, config, stats, shard_results, *,
                  boundary_hubs, stitched_pairs, max_rounds):
    """Synthetic round 0 (partitioning) + per-round sums across shards.

    Additive counters sum; ``threshold`` takes the per-round maximum
    (shards resolve their own quantile TH0, so thresholds differ — the
    maximum is the most conservative single number) and
    ``nodes_remaining`` sums shard populations.
    """
    round0 = RoundStats(
        round_id=0,
        threshold=int(config.initial_threshold(graph.degrees)),
        nodes_remaining=graph.num_nodes,
        hubs_found=int(boundary_hubs),
        islands_found=0,
        nodes_islanded=0,
        tasks_generated=0,
        tasks_dropped_classified=0,
        tasks_dropped_visited=0,
        tasks_dropped_cmax=0,
        interhub_edges_found=int(stitched_pairs),
        adjacency_fetches=int(stats.edges_scanned),
        adjacency_bytes=int(stats.edges_scanned) * _ENTRY_BYTES,
        detect_items=int(stats.detect_items),
    )
    rounds = [round0]
    for round_id in range(1, max_rounds + 1):
        merged = {name: 0 for name in ROUND_FIELDS}
        merged["round_id"] = round_id
        threshold = 0
        for res in shard_results:
            if round_id > len(res.rounds):
                continue
            row = res.rounds[round_id - 1]
            if row.round_id != round_id:
                raise IslandizationError(
                    "shard rounds are not contiguous from 1"
                )
            threshold = max(threshold, row.threshold)
            for name in ROUND_FIELDS:
                if name in ("round_id", "threshold"):
                    continue
                merged[name] += int(getattr(row, name))
        merged["threshold"] = threshold
        rounds.append(RoundStats(**merged))
    return rounds


def _merge_work(shard_results, rounds) -> LocatorWork:
    """Work totals consistent with the merged round table."""
    per_engine = None
    bfs_scans = 0
    for res in shard_results:
        bfs_scans += int(res.work.total_bfs_scans)
        scans = np.asarray(res.work.per_engine_scans, dtype=np.int64)
        per_engine = scans if per_engine is None else per_engine + scans
    if per_engine is None:
        per_engine = np.zeros(0, dtype=np.int64)
    return LocatorWork(
        total_adjacency_fetches=sum(r.adjacency_fetches for r in rounds),
        total_adjacency_bytes=sum(r.adjacency_bytes for r in rounds),
        total_detect_items=sum(r.detect_items for r in rounds),
        total_bfs_scans=bfs_scans,
        per_engine_scans=per_engine,
    )


# ----------------------------------------------------------------------
# Quality accounting
# ----------------------------------------------------------------------
def quality_metrics(result: IslandizationResult) -> dict[str, float | int]:
    """Quantified islandization quality of one result.

    ``classified_edge_ratio`` is the fraction of directed edges covered
    by island tasks (member-member + member-hub) rather than the
    inter-hub map — the locator's whole point is pushing this up, so it
    is the headline quality number partitioning may degrade.
    """
    num_edges = result.graph.num_edges
    pairs = result.interhub_edges
    if len(pairs):
        interhub_directed = int(
            np.where(pairs[:, 0] == pairs[:, 1], 1, 2).sum()
        )
    else:
        interhub_directed = 0
    islanded_nodes = int(sum(isl.num_members for isl in result.islands))
    return {
        "islands": int(result.num_islands),
        "islanded_nodes": islanded_nodes,
        "hubs": int(result.num_hubs),
        "hub_fraction": float(result.hub_fraction),
        "classified_edge_ratio": (
            float((num_edges - interhub_directed) / num_edges)
            if num_edges else 1.0
        ),
    }
