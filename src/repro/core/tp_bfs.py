"""TP-BFS: threshold-based parallel breadth-first island search (Alg 4).

One :func:`run_bfs_task` call executes a single engine task: starting
from a hub's neighbour, expand through non-hub nodes until the frontier
closes (``query == count`` — an island), the island-size cap trips, or
the search collides with a region another engine already visited this
round.

This module is the *scalar oracle*: the batched production backend
(:mod:`repro.core.tp_bfs_batched`) must reproduce its results — islands,
counters, stamps — exactly, and is property-tested against it.

Shared per-round state lives in :class:`BFSRoundState`; stamp arrays
make membership tests O(1) without reallocating sets every task:

* ``visited_round[u] == round_id``  ⇔  u ∈ v_global this round;
* ``local_task[u] == task_id``      ⇔  u ∈ v_local of the running task;
* ``hub_task[u] == task_id``        ⇔  u already recorded in h_local.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["BFSRoundState", "TaskOutcome", "BFSTaskResult", "run_bfs_task"]


class TaskOutcome(Enum):
    """Why a TP-BFS task ended (Figure 5's break conditions + success)."""

    ISLAND = "island"              # query == count: island found (Fig 5 C)
    SEED_IS_HUB = "seed-is-hub"    # task carries an inter-hub edge
    ALREADY_VISITED = "visited"    # region explored by another engine (Fig 5 A)
    CMAX_EXCEEDED = "cmax"         # island-size cap tripped (Fig 5 B)


@dataclass
class BFSRoundState:
    """State shared by all TP-BFS engines within one round."""

    graph: CSRGraph
    degrees: np.ndarray
    threshold: int
    c_max: int
    round_id: int
    visited_round: np.ndarray   # int32, stamped with round_id (v_global)
    local_task: np.ndarray      # int64, stamped with task id (v_local)
    hub_task: np.ndarray        # int64, stamped with task id (h_local dedup)
    next_task_id: int = 1
    adjacency_fetches: int = 0
    adjacency_bytes: int = 0
    scans: int = 0

    @staticmethod
    def create(graph: CSRGraph, degrees: np.ndarray, threshold: int,
               c_max: int, round_id: int,
               visited_round: np.ndarray) -> "BFSRoundState":
        """Fresh per-round state reusing the persistent v_global stamps."""
        n = graph.num_nodes
        return BFSRoundState(
            graph=graph,
            degrees=degrees,
            threshold=threshold,
            c_max=c_max,
            round_id=round_id,
            visited_round=visited_round,
            local_task=np.zeros(n, dtype=np.int64),
            hub_task=np.zeros(n, dtype=np.int64),
        )


@dataclass
class BFSTaskResult:
    """Outcome of one task."""

    outcome: TaskOutcome
    members: list[int] = field(default_factory=list)
    hubs: list[int] = field(default_factory=list)
    scans: int = 0               # neighbour entries examined (engine cycles)
    fetches: int = 0             # adjacency-list reads issued


def run_bfs_task(state: BFSRoundState, seed_hub: int, a0: int) -> BFSTaskResult:
    """Execute Algorithm 4 for one (hub, neighbour) task.

    Returns the task outcome; on ``ISLAND`` the result carries the
    member list (BFS discovery order) and the attached hubs
    (first-contact order, seed hub first).
    """
    graph = state.graph
    degrees = state.degrees
    threshold = state.threshold
    round_id = state.round_id
    task_id = state.next_task_id
    state.next_task_id += 1

    # The seed itself crossing the threshold means this task encodes an
    # inter-hub connection, which the Island Collector records.
    if degrees[a0] >= threshold:
        return BFSTaskResult(outcome=TaskOutcome.SEED_IS_HUB)
    if state.visited_round[a0] == round_id:
        return BFSTaskResult(outcome=TaskOutcome.ALREADY_VISITED)

    members: list[int] = [a0]
    hubs: list[int] = [seed_hub]
    state.hub_task[seed_hub] = task_id
    state.local_task[a0] = task_id
    state.visited_round[a0] = round_id
    query = 0
    count = 1
    scans = 0
    fetches = 0
    indptr = graph.indptr
    indices = graph.indices
    visited_round = state.visited_round
    local_task = state.local_task
    hub_task = state.hub_task

    aborted: TaskOutcome | None = None
    while query != count and aborted is None:
        node = members[query]
        start, end = indptr[node], indptr[node + 1]
        fetches += 1
        state.adjacency_bytes += int(end - start) * 4
        for n in indices[start:end].tolist():
            scans += 1
            if degrees[n] >= threshold:
                # Hub neighbour: record the island-hub attachment.
                if hub_task[n] != task_id:
                    hub_task[n] = task_id
                    hubs.append(n)
                continue
            if local_task[n] == task_id:
                continue  # already in v_local
            if visited_round[n] == round_id:
                # Region already claimed this round.  Algorithm 4 line 19
                # retracts v_local from v_global so a *concurrent* engine
                # racing on the same island can win cleanly; in this
                # sequential model the collision partner is always a
                # finished exploration — a completed island cannot border
                # unexplored nodes (closure), so the stamped region is a
                # c_max-poisoned zone and our partial walk belongs to the
                # same doomed closure.  Keeping our stamps is therefore
                # outcome-equivalent and avoids re-walking the zone once
                # per remaining task (the hardware gets the same effect
                # from its engines exploring concurrently).
                aborted = TaskOutcome.ALREADY_VISITED
                break
            count += 1
            members.append(n)
            local_task[n] = task_id
            visited_round[n] = round_id
            if count > state.c_max:
                # Cap exceeded: drop the task but *leave* the v_global
                # stamps (paper keeps them so sibling engines skip the
                # oversized region for the rest of the round).
                aborted = TaskOutcome.CMAX_EXCEEDED
                break
        query += 1

    state.scans += scans
    state.adjacency_fetches += fetches
    if aborted is not None:
        return BFSTaskResult(outcome=aborted, scans=scans, fetches=fetches)
    return BFSTaskResult(
        outcome=TaskOutcome.ISLAND,
        members=members,
        hubs=hubs,
        scans=scans,
        fetches=fetches,
    )
