"""Island task construction: the local adjacency bitmap.

An island evaluation task (§3.3.1) carries the island's node ids, the
attached hub ids, and a small dense *bitmap* of the local connectivity.
Layout (matching Figure 7, where the hub column leads):

* local order = ``[hubs..., members...]``;
* ``bitmap[t, s]`` = 1 iff the edge (local t ← local s) is aggregated in
  this task: rows are aggregation targets, columns are sources;
* the hub×hub block is *zero* — inter-hub connections are handled by
  dedicated push tasks, never inside islands (this keeps the space
  between L-shapes blank, §3.1.1);
* when the model's normalisation adds self-loops (GCN/GraphSage), the
  member diagonal is set; hub self-loops belong to the inter-hub plan.

Hub rows are derived from member adjacency by symmetry instead of
scanning the hubs' (long) neighbour lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.types import Island
from repro.graph.csr import CSRGraph

__all__ = ["IslandTask", "build_island_task"]


@dataclass(frozen=True)
class IslandTask:
    """One island evaluation task for a PE."""

    island: Island
    local_nodes: np.ndarray   # global ids, [hubs..., members...]
    num_hubs: int
    bitmap: np.ndarray        # (L, L) bool

    @property
    def num_locals(self) -> int:
        """Total rows/columns of the bitmap."""
        return len(self.local_nodes)

    @property
    def num_members(self) -> int:
        """Island nodes in this task."""
        return self.num_locals - self.num_hubs

    @property
    def member_nodes(self) -> np.ndarray:
        """Global ids of the members (local order)."""
        return self.local_nodes[self.num_hubs:]

    @property
    def hub_nodes(self) -> np.ndarray:
        """Global ids of the attached hubs (local order)."""
        return self.local_nodes[: self.num_hubs]

    @cached_property
    def nnz(self) -> int:
        """Directed entries this task aggregates (computed once).

        Read repeatedly per layer by the schedule and cost models; the
        bitmap is immutable after construction, so the popcount is
        memoized on first access (``cached_property`` writes straight
        into ``__dict__``, which frozen dataclasses permit).
        """
        return int(self.bitmap.sum())


def build_island_task(
    graph: CSRGraph,
    island: Island,
    *,
    add_self_loops: bool,
) -> IslandTask:
    """Assemble the local bitmap for ``island`` from the global CSR.

    ``graph`` must be the self-loop-free graph the locator ran on; the
    diagonal is synthesised from ``add_self_loops``.
    """
    local_nodes = island.local_order
    num_hubs = island.num_hubs
    size = len(local_nodes)
    bitmap = np.zeros((size, size), dtype=bool)

    # Sorted view for O(log L) membership mapping of neighbour ids.
    sort_idx = np.argsort(local_nodes)
    sorted_ids = local_nodes[sort_idx]

    for local_t in range(num_hubs, size):
        node = int(local_nodes[local_t])
        neigh = graph.neighbors(node)
        pos = np.searchsorted(sorted_ids, neigh)
        pos = np.clip(pos, 0, size - 1)
        hit = sorted_ids[pos] == neigh
        local_sources = sort_idx[pos[hit]]
        bitmap[local_t, local_sources] = True
        # Mirror the member->hub entries into the hub rows (L-shape).
        hub_sources = local_sources[local_sources < num_hubs]
        bitmap[hub_sources, local_t] = True

    if add_self_loops and size > num_hubs:
        member_range = np.arange(num_hubs, size)
        bitmap[member_range, member_range] = True
    return IslandTask(
        island=island,
        local_nodes=local_nodes,
        num_hubs=num_hubs,
        bitmap=bitmap,
    )
