"""Data model of islandization: islands, rounds, and the full result.

Terminology follows the paper (§3.1):

* **hub** — a node whose degree crosses the (decaying) round threshold;
  hubs are the contact points between islands and show up as L-shapes
  in the reordered adjacency matrix.
* **island** — a maximal group of non-hub nodes with internal
  connections only (their external links all go to hubs); islands are
  the anti-diagonal blocks.
* **round** — one iteration of Algorithm 1: hub detection at the
  current threshold, BFS task generation, and TP-BFS island search, all
  synchronised at the round boundary, after which the threshold decays.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import IO

import numpy as np

from repro.errors import IslandizationError
from repro.graph.csr import CSRGraph
from repro.serialize import read_npz, write_npz

__all__ = [
    "Island",
    "RoundStats",
    "LocatorWork",
    "RoundOutput",
    "IslandizationResult",
    "ROUND_FIELDS",
]


@dataclass(frozen=True, slots=True)
class Island:
    """One located island.

    ``members`` are in BFS discovery order — the order the Island
    Consumer uses as the local column layout (so pre-aggregation groups
    are formed over discovery-adjacent nodes).  ``hubs`` are the hub
    nodes attached to this island (the L-shape), in first-contact order.

    An island's *id* is its position in ``IslandizationResult.islands``
    — it is not stored on the object.  Storing it would be redundant
    (the locator always assigns ids as a running list position) and
    would force delta maintenance to rebuild every clean island whose
    position shifts; with positional ids, unchanged islands are reused
    by reference across incremental updates.

    ``slots=True`` matters too: locator and maintenance paths construct
    one ``Island`` per located island (millions at the large benchmark
    tiers), and slotted instances skip the per-object ``__dict__``
    allocation that otherwise dominates bulk construction.
    """

    round_id: int
    members: np.ndarray
    hubs: np.ndarray

    def __post_init__(self) -> None:
        members = np.asarray(self.members, dtype=np.int64)
        hubs = np.asarray(self.hubs, dtype=np.int64)
        object.__setattr__(self, "members", members)
        object.__setattr__(self, "hubs", hubs)
        if len(members) == 0:
            raise IslandizationError("an island must have at least one member")
        if len(np.intersect1d(members, hubs)) != 0:
            raise IslandizationError("a node cannot be both member and hub")

    @classmethod
    def from_trusted_arrays(
        cls,
        round_id: int,
        members: np.ndarray,
        hubs: np.ndarray,
    ) -> "Island":
        """Construct without re-validating (locator-internal fast path).

        The Island Locator produces members/hubs as disjoint ``int64``
        arrays by construction (stamp arrays make overlap impossible),
        so batch island construction skips the ``__post_init__``
        coercion and intersection check.  External callers should use
        the regular constructor.
        """
        island = object.__new__(cls)
        object.__setattr__(island, "round_id", round_id)
        object.__setattr__(island, "members", members)
        object.__setattr__(island, "hubs", hubs)
        return island

    @property
    def num_members(self) -> int:
        """Number of island nodes."""
        return len(self.members)

    @property
    def num_hubs(self) -> int:
        """Number of attached hubs."""
        return len(self.hubs)

    @property
    def local_order(self) -> np.ndarray:
        """Column/row layout of the island task: hubs first, then members.

        Matches Figure 7, where the hub column leads the bitmap.
        """
        return np.concatenate([self.hubs, self.members])

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize one island (round as metadata, arrays verbatim)."""
        write_npz(
            file,
            {"members": self.members, "hubs": self.hubs},
            {"format": 2, "round_id": int(self.round_id)},
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "Island":
        """Restore an island written by :meth:`to_npz`.

        Accepts both the current archive layout and format-1 archives,
        which carried the (positional, hence redundant) island id as
        extra metadata.
        """
        arrays, meta = read_npz(file)
        return cls(
            round_id=int(meta["round_id"]),
            members=arrays["members"],
            hubs=arrays["hubs"],
        )


@dataclass(frozen=True)
class RoundStats:
    """Per-round locator statistics (drives Figure 9 and the cycle model)."""

    round_id: int
    threshold: int
    nodes_remaining: int       # |N| at round start
    hubs_found: int
    islands_found: int
    nodes_islanded: int
    tasks_generated: int
    tasks_dropped_classified: int  # seed already hub/islanded (inter-hub source)
    tasks_dropped_visited: int     # seed/region already visited this round
    tasks_dropped_cmax: int        # island-size cap exceeded
    interhub_edges_found: int
    adjacency_fetches: int         # neighbour-list reads from global memory
    adjacency_bytes: int
    detect_items: int              # degree entries swept by the hub detector

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the per-round counters (all-integer metadata)."""
        write_npz(file, {}, {"format": 1, "fields": self.as_row()})

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "RoundStats":
        """Restore round statistics written by :meth:`to_npz`."""
        _, meta = read_npz(file)
        return cls(**{name: int(value) for name, value in meta["fields"].items()})

    def as_row(self) -> dict[str, int]:
        """Field-name → int mapping in declaration order."""
        return {name: int(getattr(self, name)) for name in ROUND_FIELDS}


#: RoundStats field names in declaration order — the column layout used
#: when rounds are packed into one integer matrix for serialization.
ROUND_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(RoundStats)
)


@dataclass(frozen=True)
class LocatorWork:
    """Aggregate locator work, used by the hardware cycle model."""

    total_adjacency_fetches: int
    total_adjacency_bytes: int
    total_detect_items: int
    total_bfs_scans: int          # neighbour entries scanned by TP-BFS engines
    per_engine_scans: np.ndarray  # work distribution across the P2 engines

    def _totals(self) -> dict[str, int]:
        return {
            "total_adjacency_fetches": int(self.total_adjacency_fetches),
            "total_adjacency_bytes": int(self.total_adjacency_bytes),
            "total_detect_items": int(self.total_detect_items),
            "total_bfs_scans": int(self.total_bfs_scans),
        }

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the totals + the per-engine work distribution."""
        write_npz(
            file,
            {"per_engine_scans": self.per_engine_scans},
            {"format": 1, "totals": self._totals()},
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "LocatorWork":
        """Restore aggregate work written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        totals = {name: int(value) for name, value in meta["totals"].items()}
        return cls(per_engine_scans=arrays["per_engine_scans"], **totals)


@dataclass(frozen=True)
class RoundOutput:
    """One round's hand-off from the Island Locator to its consumer.

    The paper's Fig. 3 pipeline ("the Island Consumer can process an
    island as soon as it is formed", §3.1.1) needs a per-round unit of
    production: :meth:`IslandLocator.stream` yields one ``RoundOutput``
    at each round boundary, carrying exactly the islands finalized that
    round plus the round's :class:`RoundStats` (the counters the cycle
    model turns into release times).  ``islands`` are the same objects
    that end up in the final :class:`IslandizationResult`, in the same
    order, so a consumer that processes chunks as they arrive sees the
    identical task sequence a staged consumer sees after the fact.
    """

    stats: RoundStats
    islands: tuple[Island, ...]   # islands finalized this round, id order
    new_hub_ids: np.ndarray       # hubs detected this round, append order
    first_island_id: int          # id of islands[0]; global task offset

    @property
    def round_id(self) -> int:
        """Round this chunk was produced by."""
        return self.stats.round_id

    @property
    def num_islands(self) -> int:
        """Islands finalized this round."""
        return len(self.islands)


@dataclass
class IslandizationResult:
    """Everything the Island Locator hands to the Island Consumer.

    Invariants (checked by :meth:`validate`):

    * every node is classified exactly once (hub xor exactly one island);
    * island members have no neighbours outside ``members + hubs``;
    * every directed edge of the graph is covered exactly once by
      island tasks (member-member and member-hub entries) plus the
      inter-hub edge map.
    """

    graph: CSRGraph
    islands: list[Island]
    hub_ids: np.ndarray
    hub_round: np.ndarray          # round at which each hub_ids[i] was found
    interhub_edges: np.ndarray     # (E, 2) canonical (min, max) undirected pairs
    rounds: list[RoundStats]
    work: LocatorWork
    _membership: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_islands(self) -> int:
        """Number of islands located."""
        return len(self.islands)

    @property
    def num_hubs(self) -> int:
        """Number of hub nodes."""
        return len(self.hub_ids)

    @property
    def num_rounds(self) -> int:
        """Rounds until the node list emptied."""
        return len(self.rounds)

    @property
    def hub_fraction(self) -> float:
        """Fraction of nodes classified as hubs."""
        n = self.graph.num_nodes
        return self.num_hubs / n if n else 0.0

    def membership(self) -> np.ndarray:
        """Per-node label: island id, or -1 for hubs (cached)."""
        if self._membership is None:
            labels = -np.ones(self.graph.num_nodes, dtype=np.int64)
            for island_id, island in enumerate(self.islands):
                labels[island.members] = island_id
            self._membership = labels
        return self._membership

    def is_hub(self) -> np.ndarray:
        """Boolean hub mask."""
        mask = np.zeros(self.graph.num_nodes, dtype=bool)
        mask[self.hub_ids] = True
        return mask

    def island_permutation(self) -> np.ndarray:
        """perm[old] = new: hubs first (by round), islands contiguous.

        This is the layout of the paper's Figure 9: hub L-shapes at the
        matrix border and islands as dense blocks along the (anti-)
        diagonal.  Returned in plain diagonal form; spy-plot code may
        flip an axis to match the paper's anti-diagonal rendering.
        """
        order: list[np.ndarray] = []
        if self.num_hubs:
            by_round = np.argsort(self.hub_round, kind="stable")
            order.append(self.hub_ids[by_round])
        for island in self.islands:
            order.append(island.members)
        if order:
            flat = np.concatenate(order)
        else:
            flat = np.zeros(0, dtype=np.int64)
        perm = np.empty(self.graph.num_nodes, dtype=np.int64)
        perm[flat] = np.arange(self.graph.num_nodes, dtype=np.int64)
        return perm

    def iter_rounds(self):
        """Replay this result as the per-round stream that produced it.

        Yields one :class:`RoundOutput` per entry of :attr:`rounds`
        (rounds that finalized no islands yield empty chunks), with the
        same island objects, grouping and order a live
        ``IslandLocator.stream`` run emits — the locator appends
        islands round-by-round, so island ``round_id``s are
        non-decreasing and each round's chunk is a contiguous slice.
        This is the streamed pipeline's path when the islandization
        comes out of an artifact cache instead of a live locator.
        """
        round_ids = np.asarray([isl.round_id for isl in self.islands], dtype=np.int64)
        start = 0
        for stats in self.rounds:
            end = int(np.searchsorted(round_ids, stats.round_id, side="right"))
            chunk = tuple(self.islands[start:end])
            yield RoundOutput(
                stats=stats,
                islands=chunk,
                new_hub_ids=self.hub_ids[self.hub_round == stats.round_id],
                first_island_id=start,
            )
            start = end

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the full result as one npz archive.

        Variable-length island members/hubs are packed as flat arrays
        plus CSR-style offsets; rounds become one ``(num_rounds,
        len(ROUND_FIELDS))`` integer matrix whose column order is
        recorded in the metadata (so the layout survives field
        evolution).  All numpy payloads round-trip byte-identically,
        which keeps the restored ``graph.fingerprint()`` — and with it
        every downstream cache key — stable.
        """
        member_offsets = np.zeros(len(self.islands) + 1, dtype=np.int64)
        hub_offsets = np.zeros(len(self.islands) + 1, dtype=np.int64)
        for i, island in enumerate(self.islands):
            member_offsets[i + 1] = member_offsets[i] + island.num_members
            hub_offsets[i + 1] = hub_offsets[i] + island.num_hubs
        empty = np.zeros(0, dtype=np.int64)
        arrays = {
            "graph_indptr": self.graph.indptr,
            "graph_indices": self.graph.indices,
            "hub_ids": self.hub_ids,
            "hub_round": self.hub_round,
            "interhub_edges": self.interhub_edges,
            "island_rounds": np.asarray(
                [isl.round_id for isl in self.islands], dtype=np.int64
            ),
            "island_member_offsets": member_offsets,
            "island_members_flat": (
                np.concatenate([isl.members for isl in self.islands])
                if self.islands else empty
            ),
            "island_hub_offsets": hub_offsets,
            "island_hubs_flat": (
                np.concatenate([isl.hubs for isl in self.islands])
                if self.islands else empty
            ),
            "rounds": np.asarray(
                [[row[name] for name in ROUND_FIELDS]
                 for row in (r.as_row() for r in self.rounds)],
                dtype=np.int64,
            ).reshape(len(self.rounds), len(ROUND_FIELDS)),
            "work_per_engine_scans": self.work.per_engine_scans,
        }
        meta = {
            "format": 2,
            "graph_name": self.graph.name,
            "round_fields": list(ROUND_FIELDS),
            "work_totals": self.work._totals(),
        }
        write_npz(file, arrays, meta)

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "IslandizationResult":
        """Restore a result written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        graph = CSRGraph(
            indptr=arrays["graph_indptr"],
            indices=arrays["graph_indices"],
            name=str(meta["graph_name"]),
        )
        m_off, h_off = arrays["island_member_offsets"], arrays["island_hub_offsets"]
        members_flat = arrays["island_members_flat"]
        hubs_flat = arrays["island_hubs_flat"]
        # Batched Island.__post_init__: one pass over the flat arrays
        # instead of a per-island constructor (which is quadratic in
        # feel at a few hundred thousand islands).
        if (np.diff(m_off) < 1).any():
            raise IslandizationError("an island must have at least one member")
        num_islands = len(m_off) - 1
        span = int(
            max(members_flat.max(initial=-1), hubs_flat.max(initial=-1))
        ) + 1
        member_keys = (
            np.repeat(np.arange(num_islands, dtype=np.int64), np.diff(m_off))
            * span + members_flat
        )
        hub_keys = (
            np.repeat(np.arange(num_islands, dtype=np.int64), np.diff(h_off))
            * span + hubs_flat
        )
        if len(np.intersect1d(member_keys, hub_keys)) != 0:
            raise IslandizationError("a node cannot be both member and hub")
        islands = [
            Island.from_trusted_arrays(
                round_id=int(round_id),
                members=members_flat[m_off[i]:m_off[i + 1]],
                hubs=hubs_flat[h_off[i]:h_off[i + 1]],
            )
            for i, round_id in enumerate(arrays["island_rounds"])
        ]
        fields = [str(name) for name in meta["round_fields"]]
        rounds = [
            RoundStats(**{name: int(value) for name, value in zip(fields, row)})
            for row in arrays["rounds"]
        ]
        work = LocatorWork(
            per_engine_scans=arrays["work_per_engine_scans"],
            **{name: int(value) for name, value in meta["work_totals"].items()},
        )
        return cls(
            graph=graph,
            islands=islands,
            hub_ids=arrays["hub_ids"],
            hub_round=arrays["hub_round"],
            interhub_edges=arrays["interhub_edges"],
            rounds=rounds,
            work=work,
        )

    # ------------------------------------------------------------------
    # Invariant checks
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`IslandizationError` if any invariant is broken."""
        n = self.graph.num_nodes
        seen = np.zeros(n, dtype=np.int64)
        for island in self.islands:
            seen[island.members] += 1
        seen[self.hub_ids] += 1
        if not np.all(seen == 1):
            bad = np.flatnonzero(seen != 1)[:5]
            raise IslandizationError(
                f"nodes classified {'multiple times' if seen.max() > 1 else 'never'}: "
                f"{bad.tolist()}"
            )
        hub_mask = self.is_hub()
        labels = self.membership()
        for island_id, island in enumerate(self.islands):
            for member in island.members:
                for neigh in self.graph.neighbors(int(member)):
                    neigh = int(neigh)
                    if neigh == member:
                        continue
                    if hub_mask[neigh]:
                        continue
                    if labels[neigh] != island_id:
                        raise IslandizationError(
                            f"island {island_id}: member {member} has "
                            f"non-hub external neighbour {neigh}"
                        )
        self._validate_edge_coverage()

    def equals(self, other: "IslandizationResult") -> bool:
        """Exact structural equality with another result.

        True iff every island (position, round, member order, hub
        order), the hub list and rounds-of-discovery, the inter-hub
        edge map, all per-round statistics, and all work counters
        (including the per-engine distribution) match.  This is the
        contract the batched locator backend is held to against the
        scalar oracle.
        """
        if len(self.islands) != len(other.islands):
            return False
        for a, b in zip(self.islands, other.islands):
            if a.round_id != b.round_id:
                return False
            if not np.array_equal(a.members, b.members):
                return False
            if not np.array_equal(a.hubs, b.hubs):
                return False
        return (
            np.array_equal(self.hub_ids, other.hub_ids)
            and np.array_equal(self.hub_round, other.hub_round)
            and np.array_equal(self.interhub_edges, other.interhub_edges)
            and self.rounds == other.rounds
            and self.work._totals() == other.work._totals()
            and np.array_equal(
                self.work.per_engine_scans, other.work.per_engine_scans
            )
        )

    def _validate_edge_coverage(self) -> None:
        """Directed edge count must match islands + inter-hub exactly."""
        hub_mask = self.is_hub()
        covered = 0
        for island in self.islands:
            member_set = set(island.members.tolist())
            hub_set = set(island.hubs.tolist())
            for member in island.members:
                for neigh in self.graph.neighbors(int(member)):
                    neigh = int(neigh)
                    if neigh in member_set:
                        covered += 1          # member -> member entry
                    elif neigh in hub_set:
                        covered += 2          # member->hub and hub->member
                    elif hub_mask[neigh]:
                        raise IslandizationError(
                            f"member {member} touches unattached hub {neigh}"
                        )
        # Inter-hub: canonical undirected pairs; self loops impossible here.
        directed_interhub = 0
        for u, v in self.interhub_edges:
            directed_interhub += 1 if u == v else 2
        total = covered + directed_interhub
        if total != self.graph.num_edges:
            raise IslandizationError(
                f"edge coverage mismatch: covered {total} of "
                f"{self.graph.num_edges} directed entries"
            )
