"""Hub-side on-chip storage: HUB XW cache and DHUB-PRC (§3.3.2).

* **HUB XW cache** — combination results of hub nodes, computed at the
  hub's first appearance and reused by every later island/inter-hub
  task that references the hub.
* **DHUB-PRC** — the distributed HUB Partial-Result Cache: one bank per
  PE, holding running aggregation sums of hubs until all their islands
  and inter-hub tasks complete.  A hub's bank assignment is fixed at
  first appearance (modelled as ``hub_id % num_banks``).

Both wrap the capacity/miss model from ``repro.hw.memory``: while the
hubs' rows fit on-chip their reuse is free, otherwise the uncovered
fraction of accesses spills to DRAM — the paper's "even if the hubs'
associated data is too large to fit ... our method still reduces
off-chip data movement".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.memory import CacheModel, TrafficMeter

__all__ = ["HubXWCache", "HubPartialResultCache"]


@dataclass
class HubXWCache:
    """Combination-result cache for hub nodes."""

    capacity_bytes: int
    row_bytes: int
    num_hubs: int
    _cache: CacheModel = field(init=False)

    def __post_init__(self) -> None:
        self._cache = CacheModel("hub-xw-cache", self.capacity_bytes)
        self._cache.fit(self.num_hubs * self.row_bytes)

    @property
    def miss_ratio(self) -> float:
        """Spill fraction of hub XW reuse accesses."""
        return self._cache.miss_ratio

    def access(self, count: int, meter: TrafficMeter) -> float:
        """Record ``count`` hub-row reuse reads; spills charge the meter."""
        return self._cache.access(
            count,
            bytes_per_access=self.row_bytes,
            meter=meter,
            category="hub-xw-spill",
        )

    def access_batch(self, counts, meter: TrafficMeter) -> float:
        """Record one :meth:`access` per entry of ``counts``, vectorized.

        Counter- and byte-identical to the sequential loop (per-call
        spill rounding included — see ``CacheModel.access_batch``).
        """
        return self._cache.access_batch(
            counts,
            bytes_per_access=self.row_bytes,
            meter=meter,
            category="hub-xw-spill",
        )

    def access_repeat(self, num_calls: int, meter: TrafficMeter) -> float:
        """``num_calls`` single-row reuse reads, in O(1) (loop-identical)."""
        return self._cache.access_uniform(
            num_calls,
            bytes_per_access=self.row_bytes,
            meter=meter,
            category="hub-xw-spill",
        )

    @property
    def accesses(self) -> int:
        """Total reuse accesses recorded."""
        return self._cache.accesses


@dataclass
class HubPartialResultCache:
    """DHUB-PRC: banked partial sums of hub aggregation results."""

    capacity_bytes: int
    row_bytes: int
    num_hubs: int
    num_banks: int
    _cache: CacheModel = field(init=False)
    bank_updates: list[int] = field(init=False)

    def __post_init__(self) -> None:
        self._cache = CacheModel("dhub-prc", self.capacity_bytes)
        self._cache.fit(self.num_hubs * self.row_bytes)
        self.bank_updates = [0] * self.num_banks

    def home_bank(self, hub_id: int) -> int:
        """Bank owning this hub (fixed at first appearance)."""
        return hub_id % self.num_banks

    @property
    def miss_ratio(self) -> float:
        """Spill fraction of partial-sum updates."""
        return self._cache.miss_ratio

    def update(self, hub_id: int, meter: TrafficMeter) -> float:
        """Record one read-modify-write of a hub's partial sum."""
        self.bank_updates[self.home_bank(hub_id)] += 1
        # An update touches the row twice (read + write) when it spills.
        return self._cache.access(
            1,
            bytes_per_access=2 * self.row_bytes,
            meter=meter,
            category="dhub-prc-spill",
        )

    def update_many(self, hub_ids, meter: TrafficMeter) -> float:
        """Record a batch of partial-sum updates, vectorized.

        Counter- and byte-equivalent to one :meth:`update` per id: bank
        counts come from one ``bincount``, and — since every update is
        a single access — each spills exactly ``round(miss_ratio * 2 *
        row_bytes)`` bytes, so the spilling case multiplies that
        per-call rounding instead of looping.
        """
        ids = np.asarray(hub_ids, dtype=np.int64)
        if len(ids) == 0:
            return 0.0
        per_bank = np.bincount(ids % self.num_banks, minlength=self.num_banks)
        for bank in np.flatnonzero(per_bank):
            self.bank_updates[bank] += int(per_bank[bank])
        return self._cache.access_uniform(
            len(ids),
            bytes_per_access=2 * self.row_bytes,
            meter=meter,
            category="dhub-prc-spill",
        )

    @property
    def updates(self) -> int:
        """Total partial-sum updates."""
        return self._cache.accesses

    @property
    def bank_imbalance(self) -> float:
        """max/mean updates across banks (1.0 = perfectly balanced)."""
        total = sum(self.bank_updates)
        if total == 0:
            return 1.0
        mean = total / self.num_banks
        return max(self.bank_updates) / mean if mean else 1.0
