"""Inter-hub aggregation tasks (§3.3.2).

Hub-hub connections are not part of any island task; the Island
Collector keeps an inter-hub edge map (filled in by the TP-BFS engines
when a BFS seed turns out to be a hub) and issues push-outer-product
tasks over it: each directed entry (target ← source) adds the source
hub's cached XW row into the target hub's partial result.

When the model's normalisation includes self-loops, hub diagonals are
also carried here (member diagonals live in the island bitmaps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import IslandizationResult

__all__ = ["InterHubPlan", "build_interhub_plan"]


@dataclass(frozen=True)
class InterHubPlan:
    """Directed hub-hub work list."""

    directed_edges: np.ndarray   # (E, 2) rows of (target, source)
    self_loop_hubs: np.ndarray   # hub ids receiving a diagonal term

    @property
    def num_ops(self) -> int:
        """Vector accumulations this plan performs."""
        return len(self.directed_edges) + len(self.self_loop_hubs)

    def macs(self, out_dim: int) -> int:
        """MACs at a given feature width."""
        return self.num_ops * out_dim


def build_interhub_plan(
    result: IslandizationResult,
    *,
    add_self_loops: bool,
) -> InterHubPlan:
    """Expand the canonical inter-hub edge map into directed tasks."""
    edges = result.interhub_edges
    directed: list[tuple[int, int]] = []
    for u, v in edges.tolist():
        directed.append((u, v))
        if u != v:
            directed.append((v, u))
    directed_arr = (
        np.asarray(directed, dtype=np.int64).reshape(-1, 2)
        if directed
        else np.zeros((0, 2), dtype=np.int64)
    )
    self_hubs = (
        result.hub_ids.copy() if add_self_loops else np.zeros(0, dtype=np.int64)
    )
    return InterHubPlan(directed_edges=directed_arr, self_loop_hubs=self_hubs)
