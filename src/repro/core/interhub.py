"""Inter-hub aggregation tasks (§3.3.2).

Hub-hub connections are not part of any island task; the Island
Collector keeps an inter-hub edge map (filled in by the TP-BFS engines
when a BFS seed turns out to be a hub) and issues push-outer-product
tasks over it: each directed entry (target ← source) adds the source
hub's cached XW row into the target hub's partial result.

When the model's normalisation includes self-loops, hub diagonals are
also carried here (member diagonals live in the island bitmaps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import IslandizationResult
from repro.errors import SimulationError

__all__ = ["InterHubPlan", "build_interhub_plan"]


@dataclass(frozen=True)
class InterHubPlan:
    """Directed hub-hub work list."""

    directed_edges: np.ndarray   # (E, 2) rows of (target, source)
    self_loop_hubs: np.ndarray   # hub ids receiving a diagonal term

    @property
    def num_ops(self) -> int:
        """Vector accumulations this plan performs."""
        return len(self.directed_edges) + len(self.self_loop_hubs)

    def macs(self, out_dim: int) -> int:
        """MACs at a given feature width."""
        return self.num_ops * out_dim

    def validate_targets(self, hub_pos: np.ndarray) -> None:
        """Raise unless every aggregation target of this plan is a hub.

        ``hub_pos`` maps node id → hub row index (-1 for non-hubs).
        The consumer runs this in *both* counting and functional mode:
        a malformed plan used to be caught only when features were
        supplied, while counts mode silently accounted ops for it.
        Out-of-range ids (negative or ≥ num_nodes) are rejected too —
        a raw ``hub_pos[-1]`` gather would silently wrap to the last
        node instead.
        """
        if len(self.directed_edges):
            self._check_hubs(self.directed_edges[:, 0], hub_pos, "target")
        if len(self.self_loop_hubs):
            self._check_hubs(self.self_loop_hubs, hub_pos, "self-loop node")

    @staticmethod
    def _check_hubs(ids: np.ndarray, hub_pos: np.ndarray, what: str) -> None:
        n = len(hub_pos)
        pos = np.full(len(ids), -1, dtype=np.int64)
        in_range = (ids >= 0) & (ids < n)
        if in_range.any():
            pos[in_range] = hub_pos[ids[in_range]]
        if pos.min() < 0:
            raise SimulationError(
                f"inter-hub plan references a node outside hub_ids: "
                f"{what} {int(ids[int(pos.argmin())])} is not a hub"
            )


def build_interhub_plan(
    result: IslandizationResult,
    *,
    add_self_loops: bool,
) -> InterHubPlan:
    """Expand the canonical inter-hub edge map into directed tasks."""
    edges = result.interhub_edges
    directed: list[tuple[int, int]] = []
    for u, v in edges.tolist():
        directed.append((u, v))
        if u != v:
            directed.append((v, u))
    directed_arr = (
        np.asarray(directed, dtype=np.int64).reshape(-1, 2)
        if directed
        else np.zeros((0, 2), dtype=np.int64)
    )
    self_hubs = (
        result.hub_ids.copy() if add_self_loops else np.zeros(0, dtype=np.int64)
    )
    return InterHubPlan(directed_edges=directed_arr, self_loop_hubs=self_hubs)
