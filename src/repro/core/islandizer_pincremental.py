"""Shard-local incremental islandization: delta routing for the fleet.

Composes the partitioned locator (``repro.core.islandizer_partitioned``)
with the incremental locator (``repro.core.islandizer_incremental``):
``record_islandization`` under ``partitions > 1`` captures a
:class:`PartitionedIncrementalState` — one per-shard
:class:`~repro.core.islandizer_incremental.IncrementalState` recorded by
the fleet workers alongside their shard runs, plus the partition
assignment that routes later edits — and ``update_islandization``
maintains the merged result by touching only the shards a delta
actually reaches.

Routing (``repro.graph.partition.route_edits``), per effective edit:

* **interior to one shard** — the shard's cached ``(result, state)``
  pair runs through the monolithic dirty-region machinery in the
  coordinator process (states never cross the IPC boundary); clean
  shards splice by reference.
* **boundary-incident** — no shard is dirtied at all: shard subgraphs
  are induced on interiors, so a separator-touching edge only ever
  exists in the reconciliation pass, which re-runs on the mutated
  graph regardless.
* **interior–interior across shards** — forbidden as an existing edge
  by the separator invariant, so it can only be an insertion; both
  endpoints are promoted into the separator and the shards that lost
  them are re-recorded by the fleet on their shrunken interiors.

The partition is **pinned at record time** and only evolves through
those deterministic promotions; the exactness oracle for every update
path is therefore a full fleet re-record against the *same evolved
partition* (:meth:`ShardFleet.rerecord`), and
``IslandizationResult.equals`` holds on every path.  Fallbacks — the
global degree-quantile TH0 moving, or the dirty shard set exceeding
``max_dirty_fraction`` of the fleet — re-record everything with the
reason reported, never silently.  ``partitions == 1`` never reaches
this module: ``record_islandization``/``update_islandization`` only
dispatch here for real fleets, which keeps the single-shard
incremental path bit-identical to the monolithic one.
"""

from __future__ import annotations

import io
import math
import os
import resource
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import IO

import numpy as np

from repro.core.config import LocatorConfig
from repro.core.islandizer_incremental import (
    IncrementalState,
    record_islandization,
    update_islandization,
)
from repro.core.islandizer_partitioned import _merge
from repro.core.types import IslandizationResult
from repro.errors import ConfigError, IslandizationError
from repro.graph.csr import CSRGraph, GraphDelta
from repro.graph.partition import (
    ROUTE_CROSS,
    ROUTE_INTERIOR,
    PartitionStats,
    _extract_shard,
    partition_graph,
    route_edits,
)
from repro.serialize import config_digest, read_npz, write_npz

__all__ = [
    "PartitionedIncrementalState",
    "PartitionedIncrementalUpdate",
    "ShardFleet",
    "load_ilstate",
    "record_islandization_partitioned",
    "update_islandization_partitioned",
]


@dataclass(frozen=True)
class PartitionedIncrementalState:
    """Everything a partitioned islandization needs to absorb deltas.

    ``part_of``/``boundary_nodes``/``shard_nodes`` are the evolved
    partition assignment (separator membership is sticky — promotions
    only ever grow it); ``shard_results``/``shard_states`` are each
    shard's cached local-ID run (the result embeds the shard's local
    graph, so updates never re-extract clean shards);
    ``partition_stats`` is frozen at record time — the partitioning
    work happened once and its round-0 accounting must not drift
    between an update and its from-scratch oracle.
    """

    th0: int
    part_of: np.ndarray
    boundary_nodes: np.ndarray
    shard_nodes: tuple[np.ndarray, ...]
    shard_results: tuple[IslandizationResult, ...]
    shard_states: tuple[IncrementalState, ...]
    partition_stats: PartitionStats

    @property
    def num_shards(self) -> int:
        """Size of the fleet this state was recorded for."""
        return len(self.shard_nodes)

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize (byte-identical round-trip via :meth:`from_npz`).

        Per-shard results and states travel as embedded uncompressed
        npz blobs — the same bytes their own ``to_npz`` writes — so the
        pair round-trips through one artifact without a container
        format of its own.
        """
        arrays: dict[str, np.ndarray] = {
            "part_of": self.part_of,
            "boundary_nodes": self.boundary_nodes,
        }
        for i in range(self.num_shards):
            arrays[f"shard{i}_nodes"] = self.shard_nodes[i]
            buf = io.BytesIO()
            self.shard_results[i].to_npz(buf)
            arrays[f"shard{i}_result"] = np.frombuffer(
                buf.getvalue(), dtype=np.uint8
            )
            buf = io.BytesIO()
            self.shard_states[i].to_npz(buf)
            arrays[f"shard{i}_state"] = np.frombuffer(
                buf.getvalue(), dtype=np.uint8
            )
        stats = self.partition_stats
        write_npz(
            file,
            arrays,
            {
                "format": 2,
                "th0": int(self.th0),
                "num_shards": int(self.num_shards),
                "stats": {
                    "strategy": stats.strategy,
                    "num_parts": int(stats.num_parts),
                    "iterations": int(stats.iterations),
                    "final_threshold": int(stats.final_threshold),
                    "detect_items": int(stats.detect_items),
                    "edges_scanned": int(stats.edges_scanned),
                },
            },
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "PartitionedIncrementalState":
        """Restore a state written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        return cls._from_arrays(arrays, meta)

    @classmethod
    def _from_arrays(cls, arrays: dict, meta: dict) -> (
        "PartitionedIncrementalState"
    ):
        """Build from already-parsed npz payload (format-dispatch hook)."""
        num = int(meta["num_shards"])
        s = meta["stats"]
        return cls(
            th0=int(meta["th0"]),
            part_of=arrays["part_of"],
            boundary_nodes=arrays["boundary_nodes"],
            shard_nodes=tuple(
                arrays[f"shard{i}_nodes"] for i in range(num)
            ),
            shard_results=tuple(
                IslandizationResult.from_npz(
                    io.BytesIO(arrays[f"shard{i}_result"].tobytes())
                )
                for i in range(num)
            ),
            shard_states=tuple(
                IncrementalState.from_npz(
                    io.BytesIO(arrays[f"shard{i}_state"].tobytes())
                )
                for i in range(num)
            ),
            partition_stats=PartitionStats(
                strategy=str(s["strategy"]),
                num_parts=int(s["num_parts"]),
                iterations=int(s["iterations"]),
                final_threshold=int(s["final_threshold"]),
                detect_items=int(s["detect_items"]),
                edges_scanned=int(s["edges_scanned"]),
            ),
        )


@dataclass(frozen=True)
class PartitionedIncrementalUpdate:
    """What one delta application produced (fleet edition).

    Field-compatible with
    :class:`~repro.core.islandizer_incremental.IncrementalUpdate` — the
    engine and CLI read the shared fields blind — plus ``dirty_shards``:
    the shards that did real work (shard-local update or re-record);
    empty for a no-op delta, the whole fleet on fallback.
    """

    result: IslandizationResult
    state: PartitionedIncrementalState
    fallback: bool
    fallback_reason: str | None
    dirty_nodes: int
    region_nodes: int
    dirty_shards: tuple[int, ...]


def load_ilstate(file: str | IO[bytes]):
    """Load either incremental-state flavour from one ``ilstate`` npz.

    Dispatches on the ``format`` metadata field: ``1`` is the
    monolithic :class:`IncrementalState`, ``2`` the partitioned pair.
    The artifact store's ``ilstate`` kind decodes through this, so one
    cache kind covers both locator modes.
    """
    arrays, meta = read_npz(file)
    fmt = int(meta.get("format", 1))
    if fmt == 1:
        return IncrementalState._from_arrays(arrays, meta)
    if fmt == 2:
        return PartitionedIncrementalState._from_arrays(arrays, meta)
    raise IslandizationError(f"unknown ilstate format {fmt}")


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------
def _record_worker(job):
    """Fleet entry point: mmap one shard, record it, ship npz bytes.

    Mirrors ``islandizer_partitioned._shard_worker`` but runs the
    *recording* locator, so the shard's incremental state comes home
    alongside its result — both as serialized bytes (byte-identical
    round-trips, and no memory-mapped arrays in the pickle stream).
    """
    from repro.graph.partition import GraphShard

    path, shard_config = job
    shard = GraphShard.from_npz_mmap(path)
    result, state = record_islandization(shard.graph, shard_config)
    rbuf = io.BytesIO()
    result.to_npz(rbuf)
    sbuf = io.BytesIO()
    state.to_npz(sbuf)
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return shard.part_id, rbuf.getvalue(), sbuf.getvalue(), int(rss)


class ShardFleet:
    """A warm worker fleet for a chain of partitioned updates.

    Holds the ``ProcessPoolExecutor`` and the scratch directory for
    shard files open across calls, so a chain of updates pays for pool
    spawn and shard persistence once instead of per delta.  The fleet
    is bound to one :class:`LocatorConfig` (``partitions > 1``); use it
    as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        config: LocatorConfig | None = None,
        *,
        max_workers: int | None = None,
    ) -> None:
        self.config = config or LocatorConfig()
        if self.config.partitions < 2:
            raise ConfigError("ShardFleet requires partitions > 1")
        self.shard_config = replace(self.config, partitions=1)
        self._max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._seq = 0

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and drop the scratch directory."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _pool_get(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or min(
                self.config.partitions, max(1, os.cpu_count() or 1)
            )
            self._pool = ProcessPoolExecutor(max_workers=max(1, workers))
        return self._pool

    def _scratch_dir(self) -> str:
        if self._scratch is None:
            self._scratch = tempfile.TemporaryDirectory(
                prefix="repro-fleet-"
            )
        return self._scratch.name

    def _run_fleet(self, shards) -> dict:
        """Record the given shards in workers; ``{part_id: (res, st)}``."""
        scratch = self._scratch_dir()
        jobs = []
        for shard in shards:
            self._seq += 1
            path = os.path.join(
                scratch, f"shard{shard.part_id}-{self._seq}.npz"
            )
            shard.to_npz(path)
            jobs.append((path, self.shard_config))
        out = {}
        for part_id, rblob, sblob, _rss in self._pool_get().map(
            _record_worker, jobs
        ):
            out[part_id] = (
                IslandizationResult.from_npz(io.BytesIO(rblob)),
                IncrementalState.from_npz(io.BytesIO(sblob)),
            )
        for path, _cfg in jobs:
            os.unlink(path)
        return out

    # -- recording -----------------------------------------------------
    def record(
        self, graph: CSRGraph
    ) -> tuple[IslandizationResult, PartitionedIncrementalState]:
        """Partition, record every shard in the fleet, merge."""
        config = self.config
        if graph.has_self_loops():
            raise IslandizationError(
                "partitioned islandization expects a graph without "
                "self-loops"
            )
        th0 = int(config.initial_threshold(graph.degrees))
        partition = partition_graph(
            graph,
            config.partitions,
            strategy=config.partition_strategy,
            threshold=th0,
            decay=config.decay,
            th_min=config.th_min,
        )
        return self._record_pinned(
            graph,
            th0=th0,
            part_of=partition.part_of,
            boundary_nodes=partition.boundary_nodes,
            shard_nodes=tuple(s.global_nodes for s in partition.shards),
            stats=partition.stats,
            shards=list(partition.shards),
        )

    def rerecord(
        self, graph: CSRGraph, state: PartitionedIncrementalState
    ) -> tuple[IslandizationResult, PartitionedIncrementalState]:
        """Full fleet re-record against ``state``'s pinned partition.

        The from-scratch oracle every update path is equal to, and the
        baseline the benchmark measures updates against: shard
        interiors are re-extracted from ``graph``, every shard is
        re-recorded by the fleet, and the merge re-runs — nothing is
        reused from the cached per-shard runs.

        The pinned partition is evolved first, exactly like
        :meth:`update` evolves it: endpoints of any edge now crossing
        two shard interiors are promoted into the separator.  ``graph``
        may therefore be any mutation of the recorded one, not just a
        delta the caller routed — the scan finds precisely the edges a
        delta-driven promotion would have found, since the recorded
        graph had none.
        """
        part_of, boundary_nodes, shard_nodes = _evolve_pinned(
            graph, state.part_of, state.boundary_nodes, state.shard_nodes
        )
        return self._record_pinned(
            graph,
            th0=int(self.config.initial_threshold(graph.degrees)),
            part_of=part_of,
            boundary_nodes=boundary_nodes,
            shard_nodes=shard_nodes,
            stats=state.partition_stats,
            shards=None,
        )

    def _record_pinned(
        self, graph, *, th0, part_of, boundary_nodes, shard_nodes, stats,
        shards,
    ):
        if shards is None:
            shards = [
                _extract_shard(graph, nodes, p)
                for p, nodes in enumerate(shard_nodes)
            ]
        runs = self._run_fleet(shards)
        num = len(shard_nodes)
        if sorted(runs) != list(range(num)):
            raise IslandizationError("worker fleet lost a shard result")
        results = [runs[p][0] for p in range(num)]
        states = [runs[p][1] for p in range(num)]
        merged = _merge(
            graph, self.config,
            boundary=boundary_nodes,
            maps=list(shard_nodes),
            stats=stats,
            shard_results=results,
        )
        state = PartitionedIncrementalState(
            th0=th0,
            part_of=part_of,
            boundary_nodes=boundary_nodes,
            shard_nodes=tuple(shard_nodes),
            shard_results=tuple(results),
            shard_states=tuple(states),
            partition_stats=stats,
        )
        return merged, state

    # -- updating ------------------------------------------------------
    def update(
        self,
        old_graph: CSRGraph,
        cached: IslandizationResult,
        state: PartitionedIncrementalState,
        delta: GraphDelta,
        *,
        max_dirty_fraction: float = 0.5,
        applied=None,
    ) -> PartitionedIncrementalUpdate:
        """Maintain a partitioned islandization under an edge delta.

        Routes every effective edit to the shards it touches (module
        docstring), re-merges from the per-shard results, and falls
        back to :meth:`rerecord` — reason reported — when the global
        quantile TH0 moves or more than
        ``max(1, floor(max_dirty_fraction * P))`` shards get dirty.
        """
        config = self.config
        if not isinstance(state, PartitionedIncrementalState):
            raise IslandizationError(
                "partitioned update requires a PartitionedIncrementalState"
            )
        if state.num_shards != config.partitions:
            raise IslandizationError(
                f"state has {state.num_shards} shards but the config "
                f"asks for {config.partitions}"
            )
        if applied is None:
            new_graph, ins_eff, del_eff = old_graph.apply_delta(
                delta, with_changes=True
            )
        else:
            new_graph, ins_eff, del_eff = applied
        if len(ins_eff) == 0 and len(del_eff) == 0:
            result = IslandizationResult(
                graph=new_graph,
                islands=cached.islands,
                hub_ids=cached.hub_ids,
                hub_round=cached.hub_round,
                interhub_edges=cached.interhub_edges,
                rounds=cached.rounds,
                work=cached.work,
            )
            return PartitionedIncrementalUpdate(
                result=result, state=state, fallback=False,
                fallback_reason=None, dirty_nodes=0, region_nodes=0,
                dirty_shards=(),
            )

        # --- routing --------------------------------------------------
        n = old_graph.num_nodes
        ins_src, ins_dst = _undirected(ins_eff, n)
        del_src, del_dst = _undirected(del_eff, n)
        part_of = state.part_of
        route_del, shard_del = route_edits(part_of, del_src, del_dst)
        if (route_del == ROUTE_CROSS).any():
            raise IslandizationError(
                "deleted edge crosses shard interiors: the cached "
                "partition does not match this graph"
            )
        route_ins, shard_ins = route_edits(part_of, ins_src, ins_dst)
        boundary_nodes = state.boundary_nodes
        shard_nodes = list(state.shard_nodes)
        rerecord_ids: set[int] = set()
        cross = route_ins == ROUTE_CROSS
        if cross.any():
            # Promote both endpoints of every brand-new cross-shard
            # edge into the separator (sticky, like every separator
            # decision) and re-record the shards whose interiors
            # shrank.  Re-route afterwards: edits at promoted nodes
            # became boundary edits.
            promote = np.unique(
                np.concatenate([ins_src[cross], ins_dst[cross]])
            )
            rerecord_ids = {int(p) for p in np.unique(part_of[promote])}
            part_of = part_of.copy()
            part_of[promote] = -1
            boundary_nodes = np.flatnonzero(part_of < 0)
            for p in rerecord_ids:
                keep = part_of[shard_nodes[p]] == p
                shard_nodes[p] = shard_nodes[p][keep]
            route_ins, shard_ins = route_edits(part_of, ins_src, ins_dst)
            route_del, shard_del = route_edits(part_of, del_src, del_dst)

        # The threshold check runs only after partition evolution: a
        # fallback must re-record against a partition that is a valid
        # vertex separator of the *mutated* graph, which the pinned one
        # is not until cross-shard insert endpoints are promoted.
        th0 = int(config.initial_threshold(new_graph.degrees))
        if th0 != state.th0:
            return self._fallback(
                new_graph, part_of, boundary_nodes, shard_nodes,
                state.partition_stats,
                f"initial threshold moved ({state.th0} -> {th0})",
            )

        touched = np.concatenate([
            shard_ins[route_ins == ROUTE_INTERIOR],
            shard_del[route_del == ROUTE_INTERIOR],
        ])
        update_ids = {int(p) for p in np.unique(touched)} - rerecord_ids
        dirty = sorted(rerecord_ids | update_ids)
        num = config.partitions
        budget = max(1, int(math.floor(max_dirty_fraction * num)))
        if len(dirty) > budget:
            return self._fallback(
                new_graph, part_of, boundary_nodes, shard_nodes,
                state.partition_stats,
                f"dirty shards cover {len(dirty)}/{num} shards",
            )

        # --- shard-local incremental updates (coordinator-side) ------
        new_results = list(state.shard_results)
        new_states = list(state.shard_states)
        dirty_nodes = 0
        region_nodes = 0
        for p in sorted(update_ids):
            nodes = shard_nodes[p]
            sel_i = (route_ins == ROUTE_INTERIOR) & (shard_ins == p)
            sel_d = (route_del == ROUTE_INTERIOR) & (shard_del == p)
            local_delta = GraphDelta(
                insert_src=np.searchsorted(nodes, ins_src[sel_i]),
                insert_dst=np.searchsorted(nodes, ins_dst[sel_i]),
                delete_src=np.searchsorted(nodes, del_src[sel_d]),
                delete_dst=np.searchsorted(nodes, del_dst[sel_d]),
            )
            upd = update_islandization(
                state.shard_results[p].graph,
                state.shard_results[p],
                state.shard_states[p],
                local_delta,
                self.shard_config,
                max_dirty_fraction=max_dirty_fraction,
            )
            new_results[p] = upd.result
            new_states[p] = upd.state
            dirty_nodes += upd.dirty_nodes
            region_nodes += upd.region_nodes

        # --- shrunken-interior re-records (fleet-side) ----------------
        if rerecord_ids:
            runs = self._run_fleet([
                _extract_shard(new_graph, shard_nodes[p], p)
                for p in sorted(rerecord_ids)
            ])
            if sorted(runs) != sorted(rerecord_ids):
                raise IslandizationError(
                    "worker fleet lost a shard result"
                )
            for p in sorted(rerecord_ids):
                new_results[p], new_states[p] = runs[p]
                dirty_nodes += len(shard_nodes[p])
                region_nodes += len(shard_nodes[p])

        # --- re-reconcile from the per-shard results ------------------
        result = _merge(
            new_graph, config,
            boundary=boundary_nodes,
            maps=shard_nodes,
            stats=state.partition_stats,
            shard_results=new_results,
        )
        new_state = PartitionedIncrementalState(
            th0=th0,
            part_of=part_of,
            boundary_nodes=boundary_nodes,
            shard_nodes=tuple(shard_nodes),
            shard_results=tuple(new_results),
            shard_states=tuple(new_states),
            partition_stats=state.partition_stats,
        )
        return PartitionedIncrementalUpdate(
            result=result, state=new_state, fallback=False,
            fallback_reason=None, dirty_nodes=dirty_nodes,
            region_nodes=region_nodes, dirty_shards=tuple(dirty),
        )

    def _fallback(
        self, new_graph, part_of, boundary_nodes, shard_nodes, stats,
        reason,
    ) -> PartitionedIncrementalUpdate:
        result, state = self._record_pinned(
            new_graph,
            th0=int(self.config.initial_threshold(new_graph.degrees)),
            part_of=part_of,
            boundary_nodes=boundary_nodes,
            shard_nodes=tuple(shard_nodes),
            stats=stats,
            shards=None,
        )
        return PartitionedIncrementalUpdate(
            result=result, state=state, fallback=True,
            fallback_reason=reason, dirty_nodes=0, region_nodes=0,
            dirty_shards=tuple(range(len(shard_nodes))),
        )


def _evolve_pinned(
    graph: CSRGraph,
    part_of: np.ndarray,
    boundary_nodes: np.ndarray,
    shard_nodes: tuple[np.ndarray, ...],
) -> tuple[np.ndarray, np.ndarray, tuple[np.ndarray, ...]]:
    """Evolve a pinned partition to stay a separator of ``graph``.

    Scans every edge for interior-interior cross-shard pairs — absent
    by invariant in the graph the partition was pinned on, so any hit
    is a later insertion — and promotes both endpoints into the
    separator, shrinking their shards' interiors.  Returns the arrays
    unchanged (same objects) when the invariant already holds.
    """
    src = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    dst = graph.indices
    pu, pv = part_of[src], part_of[dst]
    cross = (pu >= 0) & (pv >= 0) & (pu != pv)
    if not cross.any():
        return part_of, boundary_nodes, shard_nodes
    promote = np.unique(np.concatenate([src[cross], dst[cross]]))
    shrunk = {int(p) for p in np.unique(part_of[promote])}
    part_of = part_of.copy()
    part_of[promote] = -1
    boundary_nodes = np.flatnonzero(part_of < 0)
    shard_nodes = tuple(
        nodes[part_of[nodes] == p] if p in shrunk else nodes
        for p, nodes in enumerate(shard_nodes)
    )
    return part_of, boundary_nodes, shard_nodes


def _undirected(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Unique undirected ``(u, v), u < v`` pairs from directed keys.

    ``apply_delta(..., with_changes=True)`` reports effective changes
    as sorted directed ``u * n + v`` keys, one per direction; routing
    wants each undirected edit once.
    """
    u = keys // n
    v = keys % n
    keep = u < v
    return u[keep], v[keep]


# ----------------------------------------------------------------------
# Transient-fleet wrappers (the dispatch targets)
# ----------------------------------------------------------------------
def record_islandization_partitioned(
    graph: CSRGraph,
    config: LocatorConfig | None = None,
    *,
    fleet: ShardFleet | None = None,
    max_workers: int | None = None,
) -> tuple[IslandizationResult, PartitionedIncrementalState]:
    """Record a partitioned islandization with its routing state.

    ``record_islandization`` dispatches here for ``partitions > 1``.
    Pass a :class:`ShardFleet` to keep the worker pool warm across
    calls; without one, a transient fleet lives for this call only.
    """
    config = config or LocatorConfig()
    if fleet is not None:
        _check_fleet(fleet, config)
        return fleet.record(graph)
    with ShardFleet(config, max_workers=max_workers) as transient:
        return transient.record(graph)


def update_islandization_partitioned(
    old_graph: CSRGraph,
    cached: IslandizationResult,
    state: PartitionedIncrementalState,
    delta: GraphDelta,
    config: LocatorConfig | None = None,
    *,
    max_dirty_fraction: float = 0.5,
    applied=None,
    fleet: ShardFleet | None = None,
) -> PartitionedIncrementalUpdate:
    """Maintain a partitioned islandization under an edge delta.

    ``update_islandization`` dispatches here for ``partitions > 1``;
    see :meth:`ShardFleet.update` for the routing contract.
    """
    config = config or LocatorConfig()
    if fleet is not None:
        _check_fleet(fleet, config)
        return fleet.update(
            old_graph, cached, state, delta,
            max_dirty_fraction=max_dirty_fraction, applied=applied,
        )
    with ShardFleet(config) as transient:
        return transient.update(
            old_graph, cached, state, delta,
            max_dirty_fraction=max_dirty_fraction, applied=applied,
        )


def _check_fleet(fleet: ShardFleet, config: LocatorConfig) -> None:
    if config_digest(fleet.config) != config_digest(config):
        raise ConfigError(
            "fleet was built for a different locator config"
        )
