"""The Island Consumer: combination + aggregation over island tasks.

Executes one GraphCONV layer (combination-first, §2.2.1) against an
:class:`IslandizationResult`:

1. **Combination** — ``XW`` per node; hub rows are computed once and
   held in the HUB XW cache.  Source normalisation (``a_u``) is applied
   here so group pre-sums are reusable across targets (see
   ``repro.models.reference``).
2. **Pre-aggregation + window scan** — per island task, the 1×k scan of
   ``repro.core.preagg`` with automatic add-vs-subtract selection.
3. **Hub partials** — hub rows of each island accumulate into DHUB-PRC
   via the ring network; inter-hub push tasks finish the hub sums.
4. **Finalisation** — target normalisation (``b_v``), the GIN self
   term, and the activation.

Both modes share one code path: counting always happens; *functional*
mode additionally carries feature values so the output can be checked
against the scipy reference (losslessness tests).

Two interchangeable implementations execute the island/inter-hub phase,
selected by :class:`~repro.core.config.ConsumerConfig` ``backend``:

* ``"batched"`` (default) — the vectorized multi-island kernels of
  :mod:`repro.core.consumer_batched`, operating on a packed
  :class:`~repro.core.consumer_batched.TaskBatch`;
* ``"scalar"`` — the original per-island Python loop below, kept
  verbatim as the oracle the batched backend is tested against.

The contract is *exact* equality: identical :class:`LayerCounts`
(including every :class:`~repro.core.preagg.ScanCounts` field), DRAM
traffic, ring statistics, DHUB-PRC bank counters, and — in functional
mode — byte-identical output matrices
(``tests/test_consumer_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.bitmap import IslandTask, build_island_task
from repro.core.config import ConsumerConfig
from repro.core.hub_cache import HubPartialResultCache, HubXWCache
from repro.core.interhub import InterHubPlan
from repro.core.preagg import ScanCounts, scan_aggregate, scan_costs
from repro.core.types import IslandizationResult
from repro.errors import SimulationError
from repro.hw.config import HardwareConfig
from repro.hw.memory import TrafficMeter
from repro.hw.ring import RingNetwork
from repro.models.configs import LayerSpec
from repro.models.reference import NormalizationSpec

__all__ = [
    "LayerCounts",
    "LayerExecution",
    "IslandConsumer",
    "prepare_tasks",
    "execution_mismatch",
]

_BYTES = 4


def prepare_tasks(
    result: IslandizationResult, *, add_self_loops: bool
) -> list[IslandTask]:
    """Build every island's bitmap task (shared across layers).

    This is the scalar backend's representation (one dense bitmap per
    island).  The batched backend packs all islands into one
    :class:`~repro.core.consumer_batched.TaskBatch`; use
    :meth:`IslandConsumer.prepare` to get the representation matching
    the configured backend.
    """
    return [
        build_island_task(result.graph, island, add_self_loops=add_self_loops)
        for island in result.islands
    ]


@dataclass
class LayerCounts:
    """Operation accounting for one layer pass through the consumer."""

    layer_index: int
    in_dim: int
    out_dim: int
    combination_macs: int = 0
    scale_macs: int = 0
    scan: ScanCounts = field(default_factory=ScanCounts)
    interhub_ops: int = 0        # vector ops (directed edges + hub diagonals)

    @property
    def aggregation_baseline_macs(self) -> int:
        """Per-edge aggregation MACs without islandization."""
        return (self.scan.baseline_ops + self.interhub_ops) * self.out_dim

    @property
    def aggregation_actual_macs(self) -> int:
        """Aggregation MACs after redundancy removal."""
        return (self.scan.total_ops + self.interhub_ops) * self.out_dim

    @property
    def aggregation_pruned_macs(self) -> int:
        """MACs eliminated by shared-neighbour reuse."""
        return self.aggregation_baseline_macs - self.aggregation_actual_macs

    @property
    def aggregation_pruning_rate(self) -> float:
        """Fraction of aggregation work pruned (Figure 10, per layer)."""
        baseline = self.aggregation_baseline_macs
        return self.aggregation_pruned_macs / baseline if baseline else 0.0

    @property
    def total_macs(self) -> int:
        """All MACs this layer actually performs."""
        return self.combination_macs + self.scale_macs + self.aggregation_actual_macs

    @property
    def total_baseline_macs(self) -> int:
        """All MACs a no-reuse dataflow would perform."""
        return self.combination_macs + self.scale_macs + self.aggregation_baseline_macs


@dataclass
class LayerExecution:
    """Result of running one layer."""

    counts: LayerCounts
    output: np.ndarray | None = None
    #: Observability for the backend-equivalence contract: HUB XW cache
    #: reuse accesses and DHUB-PRC update totals / per-bank counters.
    hub_xw_accesses: int = 0
    prc_updates: int = 0
    prc_bank_updates: list[int] = field(default_factory=list)


def execution_mismatch(
    a: LayerExecution,
    a_meter: TrafficMeter,
    b: LayerExecution,
    b_meter: TrafficMeter,
    *,
    functional: bool = False,
) -> str | None:
    """First differing field of one layer's exact-equivalence contract.

    The single definition of what "exact backend equality" means for a
    layer execution — shared by ``tests/test_consumer_equivalence.py``
    and the consumer benchmark's per-tier verification, so the two
    checkers cannot drift.  Returns ``None`` when the layers agree;
    ring statistics live on the consumer and are compared separately.
    """
    if a.counts != b.counts:
        return f"LayerCounts differ: {a.counts} != {b.counts}"
    if a_meter.reads != b_meter.reads:
        return f"meter reads differ: {a_meter.reads} != {b_meter.reads}"
    if a_meter.writes != b_meter.writes:
        return f"meter writes differ: {a_meter.writes} != {b_meter.writes}"
    if a.hub_xw_accesses != b.hub_xw_accesses:
        return (
            f"hub_xw_accesses differ: {a.hub_xw_accesses} != "
            f"{b.hub_xw_accesses}"
        )
    if a.prc_updates != b.prc_updates:
        return f"prc_updates differ: {a.prc_updates} != {b.prc_updates}"
    if a.prc_bank_updates != b.prc_bank_updates:
        return (
            f"prc_bank_updates differ: {a.prc_bank_updates} != "
            f"{b.prc_bank_updates}"
        )
    if functional:
        if a.output is None or b.output is None:
            # Self-diagnosing rather than AttributeError: a backend
            # that returned no output IS a contract violation.
            return (
                f"output missing: scalar={a.output is not None} "
                f"batched={b.output is not None}"
            )
        if a.output.dtype != b.output.dtype:
            return f"output dtypes differ: {a.output.dtype} != {b.output.dtype}"
        if a.output.tobytes() != b.output.tobytes():
            return "output matrices differ bitwise"
    return None


@dataclass
class _LayerState:
    """Everything one layer pass threads between its phases."""

    functional: bool
    counts: LayerCounts
    hub_ids: np.ndarray
    hub_pos: np.ndarray
    xw_cache: HubXWCache
    prc: HubPartialResultCache
    xw: np.ndarray | None
    xw_scaled: np.ndarray | None
    out: np.ndarray | None
    hub_acc: np.ndarray | None


class IslandConsumer:
    """PE-array model evaluating island and inter-hub tasks."""

    def __init__(
        self,
        config: ConsumerConfig | None = None,
        hw: HardwareConfig | None = None,
    ) -> None:
        self.config = config or ConsumerConfig()
        self.hw = hw or HardwareConfig()
        self.ring = RingNetwork(self.config.num_pes)

    # ------------------------------------------------------------------
    def prepare(self, result: IslandizationResult, *, add_self_loops: bool):
        """Task representation for this consumer's backend.

        ``"batched"`` → one packed
        :class:`~repro.core.consumer_batched.TaskBatch` (assembled in a
        single vectorized pass over the global CSR); ``"scalar"`` → the
        per-island :func:`prepare_tasks` list.  Either is shared across
        all layers of one inference.
        """
        if self.config.backend == "batched":
            from repro.core.consumer_batched import TaskBatch

            return TaskBatch.from_result(result, add_self_loops=add_self_loops)
        return prepare_tasks(result, add_self_loops=add_self_loops)

    # ------------------------------------------------------------------
    def prepare_chunk(
        self, graph, islands, *, add_self_loops: bool, scratch: dict | None = None
    ):
        """Task representation for one locator round's islands (§3.1.1).

        The streamed pipeline's unit of hand-off: called with each
        :class:`~repro.core.types.RoundOutput`'s islands *while the
        locator is still running later rounds*, so task assembly
        overlaps islandization.  ``"batched"`` → one per-round
        :class:`~repro.core.consumer_batched.TaskBatch` slice;
        ``"scalar"`` → the round's :class:`IslandTask` list.  The
        concatenation of all round chunks is element-identical to what
        :meth:`prepare` builds from the finished result.  ``scratch``
        is an optional dict kept across a run's calls so the batched
        assembly reuses its node-sized lookup maps (see
        :meth:`TaskBatch.from_islands
        <repro.core.consumer_batched.TaskBatch.from_islands>`).
        """
        if self.config.backend == "batched":
            from repro.core.consumer_batched import TaskBatch

            return TaskBatch.from_islands(
                graph, islands, add_self_loops=add_self_loops, scratch=scratch
            )
        return [
            build_island_task(graph, island, add_self_loops=add_self_loops)
            for island in islands
        ]

    # ------------------------------------------------------------------
    def run_layer(
        self,
        result: IslandizationResult,
        tasks,
        interhub: InterHubPlan,
        norm: NormalizationSpec,
        layer: LayerSpec,
        *,
        layer_index: int,
        meter: TrafficMeter,
        x=None,
        w: np.ndarray | None = None,
        feature_density: float = 1.0,
        final_layer: bool = True,
    ) -> LayerExecution:
        """Run one GraphCONV layer.

        Functional mode when ``x`` and ``w`` are given (returns the
        output matrix); otherwise performance mode (counts only, using
        ``feature_density`` for the input nnz estimate).  ``tasks`` is
        whatever :meth:`prepare` returned for this backend; a scalar
        task list handed to the batched backend is converted on the
        fly (convenient for tests, but repays the packing cost every
        call — prefer :meth:`prepare`).
        """
        functional = x is not None
        if functional and w is None:
            raise SimulationError("functional mode needs both x and w")
        state = self._layer_setup(
            result, norm, layer,
            layer_index=layer_index, meter=meter, x=x, w=w,
            feature_density=feature_density, functional=functional,
        )
        if self.config.backend == "batched":
            from repro.core.consumer_batched import TaskBatch, run_layer_batched

            batch = (
                tasks if isinstance(tasks, TaskBatch)
                else TaskBatch.from_tasks(tasks)
            )
            run_layer_batched(self, state, batch, interhub, meter)
        else:
            if not isinstance(tasks, (list, tuple)):
                raise SimulationError(
                    "the scalar consumer backend needs the prepare_tasks() "
                    f"island-task list, got {type(tasks).__name__}"
                )
            self._run_scalar(state, tasks, interhub, meter)
        return self._layer_finalize(
            state, norm, layer, meter=meter, final_layer=final_layer
        )

    # ------------------------------------------------------------------
    def run_layer_chunked(
        self,
        result: IslandizationResult,
        chunks,
        interhub: InterHubPlan,
        norm: NormalizationSpec,
        layer: LayerSpec,
        *,
        layer_index: int,
        meter: TrafficMeter,
        x=None,
        w: np.ndarray | None = None,
        feature_density: float = 1.0,
        final_layer: bool = True,
        chunk_work: list[int] | None = None,
    ) -> LayerExecution:
        """Run one layer over per-round task chunks (the streamed path).

        ``chunks`` is the per-round sequence :meth:`prepare_chunk`
        produced (one entry per locator round, empty rounds included).
        Island chunks execute in round order with global task offsets,
        then the inter-hub phase runs once — the exact accounting and
        accumulation order of :meth:`run_layer` on the monolithic task
        list, so counts, traffic, ring/cache statistics and functional
        outputs are byte-identical between the two entry points.

        ``chunk_work`` (optional) is filled with one aggregation-MAC
        tally per chunk — the measured per-round work vector the
        streamed latency model feeds to
        :func:`~repro.core.pipeline.pipelined_makespan`.
        """
        functional = x is not None
        if functional and w is None:
            raise SimulationError("functional mode needs both x and w")
        state = self._layer_setup(
            result, norm, layer,
            layer_index=layer_index, meter=meter, x=x, w=w,
            feature_density=feature_density, functional=functional,
        )
        batched = self.config.backend == "batched"
        if batched:
            from repro.core.consumer_batched import (
                run_interhub_batched,
                run_island_chunk,
            )
        task_offset = 0
        for chunk in chunks:
            before = state.counts.scan.total_ops
            if batched:
                run_island_chunk(
                    self, state, chunk, meter, task_offset=task_offset
                )
                task_offset += chunk.num_tasks
            else:
                self._run_scalar_islands(
                    state, chunk, meter, task_offset=task_offset
                )
                task_offset += len(chunk)
            if chunk_work is not None:
                chunk_work.append(
                    (state.counts.scan.total_ops - before) * layer.out_dim
                )
        if batched:
            run_interhub_batched(state, interhub, meter)
        else:
            self._run_scalar_interhub(state, interhub, meter)
        return self._layer_finalize(
            state, norm, layer, meter=meter, final_layer=final_layer
        )

    # ------------------------------------------------------------------
    def _layer_setup(
        self,
        result: IslandizationResult,
        norm: NormalizationSpec,
        layer: LayerSpec,
        *,
        layer_index: int,
        meter: TrafficMeter,
        x,
        w,
        feature_density: float,
        functional: bool,
    ) -> _LayerState:
        """Combination phase + per-layer structures (backend-shared)."""
        n = result.graph.num_nodes
        counts = LayerCounts(
            layer_index=layer_index, in_dim=layer.in_dim, out_dim=layer.out_dim
        )
        hub_ids = result.hub_ids
        # Node id -> row of hub_acc; an O(1) array gather replaces the
        # former per-task Python dict lookups.
        hub_pos = np.full(n, -1, dtype=np.int64)
        hub_pos[hub_ids] = np.arange(len(hub_ids), dtype=np.int64)
        row_bytes = layer.out_dim * _BYTES
        xw_cache = HubXWCache(
            capacity_bytes=self.hw.hub_xw_cache_bytes,
            row_bytes=row_bytes,
            num_hubs=len(hub_ids),
        )
        prc = HubPartialResultCache(
            capacity_bytes=self.hw.hub_prc_bytes,
            row_bytes=row_bytes,
            num_hubs=len(hub_ids),
            num_banks=self.config.num_pes,
        )

        # ---------------- combination ---------------------------------
        if functional:
            xw = np.asarray(x @ w, dtype=np.float64)
            input_nnz = (
                int(x.nnz) if sparse.issparse(x) else int(np.count_nonzero(x))
            )
        else:
            xw = None
            input_nnz = int(round(n * layer.in_dim * feature_density))
        counts.combination_macs = input_nnz * layer.out_dim

        scale_source = not np.allclose(norm.source_scale, 1.0)
        if scale_source:
            counts.scale_macs += n * layer.out_dim
        xw_scaled = (
            norm.source_scale[:, None] * xw if functional and scale_source
            else xw
        )

        # DRAM: features in (once), weights (once).
        if feature_density < 1.0 and layer_index == 0:
            meter.read("features", input_nnz * (_BYTES + _BYTES))
        else:
            meter.read("features", n * layer.in_dim * _BYTES)
        meter.read("weights", layer.in_dim * layer.out_dim * _BYTES)

        out = np.zeros((n, layer.out_dim), dtype=np.float64) if functional else None
        hub_acc = (
            np.zeros((len(hub_ids), layer.out_dim), dtype=np.float64)
            if functional
            else None
        )
        return _LayerState(
            functional=functional, counts=counts, hub_ids=hub_ids,
            hub_pos=hub_pos, xw_cache=xw_cache, prc=prc, xw=xw,
            xw_scaled=xw_scaled, out=out, hub_acc=hub_acc,
        )

    # ------------------------------------------------------------------
    def _run_scalar(
        self,
        state: _LayerState,
        tasks: list[IslandTask],
        interhub: InterHubPlan,
        meter: TrafficMeter,
    ) -> None:
        """Per-island oracle loop (the batched backend's ground truth)."""
        self._run_scalar_islands(state, tasks, meter, task_offset=0)
        self._run_scalar_interhub(state, interhub, meter)

    # ------------------------------------------------------------------
    def _run_scalar_islands(
        self,
        state: _LayerState,
        tasks: list[IslandTask],
        meter: TrafficMeter,
        *,
        task_offset: int = 0,
    ) -> None:
        """Island phase of the oracle loop over one task chunk.

        ``task_offset`` is the global index of ``tasks[0]``, so a
        per-round chunk keeps the whole-list PE assignment.
        """
        functional = state.functional
        counts = state.counts
        hub_pos = state.hub_pos
        xw_cache, prc = state.xw_cache, state.prc
        xw_scaled, out, hub_acc = state.xw_scaled, state.out, state.hub_acc

        # ---------------- island tasks ---------------------------------
        k = self.config.preagg_k
        for task_idx, task in enumerate(tasks, start=task_offset):
            pe = task_idx % self.config.num_pes
            if functional:
                acc, scan = scan_aggregate(
                    task.bitmap, k, xw_scaled[task.local_nodes],
                    boundary=task.num_hubs,
                )
            else:
                scan = scan_costs(task.bitmap, k, boundary=task.num_hubs)
                acc = None
            counts.scan.merge(scan)
            xw_cache.access(task.num_hubs, meter)
            # Hub attachment, batched: one ring emission, one banked
            # partial-sum batch, and (functionally) one row scatter —
            # hub rows within a task are distinct, so the fancy-indexed
            # += has no collisions.
            if task.num_hubs:
                hub_nodes = task.hub_nodes
                self.ring.send_many(pe, hub_nodes)
                prc.update_many(hub_nodes, meter)
                if functional:
                    positions = hub_pos[hub_nodes]
                    if positions.min() < 0:
                        # The dict this scatter replaced raised KeyError
                        # here; -1 would silently hit the last row.
                        raise SimulationError(
                            f"island task references unknown hub "
                            f"{int(hub_nodes[int(positions.argmin())])}"
                        )
                    hub_acc[positions] += acc[:task.num_hubs]
            if functional:
                members = task.member_nodes
                out[members] = acc[task.num_hubs:]
            self.ring.drain()

    # ------------------------------------------------------------------
    def _run_scalar_interhub(
        self,
        state: _LayerState,
        interhub: InterHubPlan,
        meter: TrafficMeter,
    ) -> None:
        """Inter-hub phase of the oracle loop (after all island chunks)."""
        functional = state.functional
        counts = state.counts
        hub_pos = state.hub_pos
        xw_cache, prc = state.xw_cache, state.prc
        xw_scaled, hub_acc = state.xw_scaled, state.hub_acc

        counts.interhub_ops = interhub.num_ops
        interhub.validate_targets(hub_pos)
        for target, source in interhub.directed_edges.tolist():
            xw_cache.access(1, meter)
            prc.update(target, meter)
            if functional:
                hub_acc[hub_pos[target]] += xw_scaled[source]
        for hub in interhub.self_loop_hubs.tolist():
            prc.update(hub, meter)
            if functional:
                hub_acc[hub_pos[hub]] += xw_scaled[hub]

    # ------------------------------------------------------------------
    def _layer_finalize(
        self,
        state: _LayerState,
        norm: NormalizationSpec,
        layer: LayerSpec,
        *,
        meter: TrafficMeter,
        final_layer: bool,
    ) -> LayerExecution:
        """Target scaling, self term, activation, result write-out."""
        counts, out = state.counts, state.out
        n = len(state.hub_pos)
        scale_target = not np.allclose(norm.target_scale, 1.0)
        if scale_target:
            counts.scale_macs += n * layer.out_dim
        if norm.self_weight != 0.0:
            counts.scale_macs += n * layer.out_dim
        if state.functional:
            if len(state.hub_ids):
                out[state.hub_ids] = state.hub_acc
            if scale_target:
                out *= norm.target_scale[:, None]
            if norm.self_weight != 0.0:
                out += norm.self_weight * state.xw
            if layer.activation == "relu":
                np.maximum(out, 0.0, out=out)

        # Hidden activations are residence-eligible; only the last
        # layer's results must stream to DRAM unconditionally.
        category = "results" if final_layer else "hidden-results"
        meter.write(category, n * layer.out_dim * _BYTES)
        return LayerExecution(
            counts=counts,
            output=out,
            hub_xw_accesses=state.xw_cache.accesses,
            prc_updates=state.prc.updates,
            prc_bank_updates=list(state.prc.bank_updates),
        )
