"""The Island Consumer: combination + aggregation over island tasks.

Executes one GraphCONV layer (combination-first, §2.2.1) against an
:class:`IslandizationResult`:

1. **Combination** — ``XW`` per node; hub rows are computed once and
   held in the HUB XW cache.  Source normalisation (``a_u``) is applied
   here so group pre-sums are reusable across targets (see
   ``repro.models.reference``).
2. **Pre-aggregation + window scan** — per island task, the 1×k scan of
   ``repro.core.preagg`` with automatic add-vs-subtract selection.
3. **Hub partials** — hub rows of each island accumulate into DHUB-PRC
   via the ring network; inter-hub push tasks finish the hub sums.
4. **Finalisation** — target normalisation (``b_v``), the GIN self
   term, and the activation.

Both modes share one code path: counting always happens; *functional*
mode additionally carries feature values so the output can be checked
against the scipy reference (losslessness tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.bitmap import IslandTask, build_island_task
from repro.core.config import ConsumerConfig
from repro.core.hub_cache import HubPartialResultCache, HubXWCache
from repro.core.interhub import InterHubPlan
from repro.core.preagg import ScanCounts, scan_aggregate, scan_costs
from repro.core.types import IslandizationResult
from repro.errors import SimulationError
from repro.hw.config import HardwareConfig
from repro.hw.memory import TrafficMeter
from repro.hw.ring import RingNetwork
from repro.models.configs import LayerSpec
from repro.models.reference import NormalizationSpec

__all__ = ["LayerCounts", "LayerExecution", "IslandConsumer", "prepare_tasks"]

_BYTES = 4


def prepare_tasks(
    result: IslandizationResult, *, add_self_loops: bool
) -> list[IslandTask]:
    """Build every island's bitmap task (shared across layers)."""
    return [
        build_island_task(result.graph, island, add_self_loops=add_self_loops)
        for island in result.islands
    ]


@dataclass
class LayerCounts:
    """Operation accounting for one layer pass through the consumer."""

    layer_index: int
    in_dim: int
    out_dim: int
    combination_macs: int = 0
    scale_macs: int = 0
    scan: ScanCounts = field(default_factory=ScanCounts)
    interhub_ops: int = 0        # vector ops (directed edges + hub diagonals)

    @property
    def aggregation_baseline_macs(self) -> int:
        """Per-edge aggregation MACs without islandization."""
        return (self.scan.baseline_ops + self.interhub_ops) * self.out_dim

    @property
    def aggregation_actual_macs(self) -> int:
        """Aggregation MACs after redundancy removal."""
        return (self.scan.total_ops + self.interhub_ops) * self.out_dim

    @property
    def aggregation_pruned_macs(self) -> int:
        """MACs eliminated by shared-neighbour reuse."""
        return self.aggregation_baseline_macs - self.aggregation_actual_macs

    @property
    def aggregation_pruning_rate(self) -> float:
        """Fraction of aggregation work pruned (Figure 10, per layer)."""
        baseline = self.aggregation_baseline_macs
        return self.aggregation_pruned_macs / baseline if baseline else 0.0

    @property
    def total_macs(self) -> int:
        """All MACs this layer actually performs."""
        return self.combination_macs + self.scale_macs + self.aggregation_actual_macs

    @property
    def total_baseline_macs(self) -> int:
        """All MACs a no-reuse dataflow would perform."""
        return self.combination_macs + self.scale_macs + self.aggregation_baseline_macs


@dataclass
class LayerExecution:
    """Result of running one layer."""

    counts: LayerCounts
    output: np.ndarray | None = None


class IslandConsumer:
    """PE-array model evaluating island and inter-hub tasks."""

    def __init__(
        self,
        config: ConsumerConfig | None = None,
        hw: HardwareConfig | None = None,
    ) -> None:
        self.config = config or ConsumerConfig()
        self.hw = hw or HardwareConfig()
        self.ring = RingNetwork(self.config.num_pes)

    # ------------------------------------------------------------------
    def run_layer(
        self,
        result: IslandizationResult,
        tasks: list[IslandTask],
        interhub: InterHubPlan,
        norm: NormalizationSpec,
        layer: LayerSpec,
        *,
        layer_index: int,
        meter: TrafficMeter,
        x=None,
        w: np.ndarray | None = None,
        feature_density: float = 1.0,
        final_layer: bool = True,
    ) -> LayerExecution:
        """Run one GraphCONV layer.

        Functional mode when ``x`` and ``w`` are given (returns the
        output matrix); otherwise performance mode (counts only, using
        ``feature_density`` for the input nnz estimate).
        """
        functional = x is not None
        if functional and w is None:
            raise SimulationError("functional mode needs both x and w")
        n = result.graph.num_nodes
        counts = LayerCounts(
            layer_index=layer_index, in_dim=layer.in_dim, out_dim=layer.out_dim
        )
        hub_ids = result.hub_ids
        # Node id -> row of hub_acc; an O(1) array gather replaces the
        # former per-task Python dict lookups.
        hub_pos = np.full(n, -1, dtype=np.int64)
        hub_pos[hub_ids] = np.arange(len(hub_ids), dtype=np.int64)
        row_bytes = layer.out_dim * _BYTES
        xw_cache = HubXWCache(
            capacity_bytes=self.hw.hub_xw_cache_bytes,
            row_bytes=row_bytes,
            num_hubs=len(hub_ids),
        )
        prc = HubPartialResultCache(
            capacity_bytes=self.hw.hub_prc_bytes,
            row_bytes=row_bytes,
            num_hubs=len(hub_ids),
            num_banks=self.config.num_pes,
        )

        # ---------------- combination ---------------------------------
        if functional:
            xw = np.asarray(x @ w, dtype=np.float64)
            input_nnz = (
                int(x.nnz) if sparse.issparse(x) else int(np.count_nonzero(x))
            )
        else:
            xw = None
            input_nnz = int(round(n * layer.in_dim * feature_density))
        counts.combination_macs = input_nnz * layer.out_dim

        scale_source = not np.allclose(norm.source_scale, 1.0)
        if scale_source:
            counts.scale_macs += n * layer.out_dim
        xw_scaled = (
            norm.source_scale[:, None] * xw if functional and scale_source
            else xw
        )

        # DRAM: features in (once), weights (once).
        if feature_density < 1.0 and layer_index == 0:
            meter.read("features", input_nnz * (_BYTES + _BYTES))
        else:
            meter.read("features", n * layer.in_dim * _BYTES)
        meter.read("weights", layer.in_dim * layer.out_dim * _BYTES)

        # ---------------- island tasks ---------------------------------
        out = np.zeros((n, layer.out_dim), dtype=np.float64) if functional else None
        hub_acc = (
            np.zeros((len(hub_ids), layer.out_dim), dtype=np.float64)
            if functional
            else None
        )
        k = self.config.preagg_k
        for task_idx, task in enumerate(tasks):
            pe = task_idx % self.config.num_pes
            if functional:
                acc, scan = scan_aggregate(
                    task.bitmap, k, xw_scaled[task.local_nodes],
                    boundary=task.num_hubs,
                )
            else:
                scan = scan_costs(task.bitmap, k, boundary=task.num_hubs)
                acc = None
            counts.scan.merge(scan)
            xw_cache.access(task.num_hubs, meter)
            # Hub attachment, batched: one ring emission, one banked
            # partial-sum batch, and (functionally) one row scatter —
            # hub rows within a task are distinct, so the fancy-indexed
            # += has no collisions.
            if task.num_hubs:
                hub_nodes = task.hub_nodes
                self.ring.send_many(pe, hub_nodes)
                prc.update_many(hub_nodes, meter)
                if functional:
                    positions = hub_pos[hub_nodes]
                    if positions.min() < 0:
                        # The dict this scatter replaced raised KeyError
                        # here; -1 would silently hit the last row.
                        raise SimulationError(
                            f"island task references unknown hub "
                            f"{int(hub_nodes[int(positions.argmin())])}"
                        )
                    hub_acc[positions] += acc[:task.num_hubs]
            if functional:
                members = task.member_nodes
                out[members] = acc[task.num_hubs:]
            self.ring.drain()

        # ---------------- inter-hub tasks ------------------------------
        counts.interhub_ops = interhub.num_ops
        if functional and len(interhub.directed_edges):
            targets = interhub.directed_edges[:, 0]
            if hub_pos[targets].min() < 0:
                raise SimulationError(
                    "inter-hub plan references a node outside hub_ids"
                )
        for target, source in interhub.directed_edges.tolist():
            xw_cache.access(1, meter)
            prc.update(target, meter)
            if functional:
                hub_acc[hub_pos[target]] += xw_scaled[source]
        for hub in interhub.self_loop_hubs.tolist():
            prc.update(hub, meter)
            if functional:
                hub_acc[hub_pos[hub]] += xw_scaled[hub]

        # ---------------- finalisation ---------------------------------
        scale_target = not np.allclose(norm.target_scale, 1.0)
        if scale_target:
            counts.scale_macs += n * layer.out_dim
        if norm.self_weight != 0.0:
            counts.scale_macs += n * layer.out_dim
        if functional:
            if len(hub_ids):
                out[hub_ids] = hub_acc
            if scale_target:
                out *= norm.target_scale[:, None]
            if norm.self_weight != 0.0:
                out += norm.self_weight * xw
            if layer.activation == "relu":
                np.maximum(out, 0.0, out=out)

        # Hidden activations are residence-eligible; only the last
        # layer's results must stream to DRAM unconditionally.
        category = "results" if final_layer else "hidden-results"
        meter.write(category, n * layer.out_dim * _BYTES)
        return LayerExecution(counts=counts, output=out)
