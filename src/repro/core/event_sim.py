"""Discrete-event model of the streamed locator→consumer pipeline.

The streamed mode (``core/pipeline.py``) treats the Island Consumer as
one aggregate server whose work arrives in per-round batches — the
coarsest model that captures Fig. 3's overlap.  This module refines it
to event granularity while keeping the aggregate model as a provable
bound:

* **per-island release** — round r spans the locator interval
  ``[L_r, L_r + cyc_r)``; island j of the round is released when the
  locator has *produced* it, at ``L_r + cyc_r * (cumulative work share
  of islands <= j)``, not at the round start the aggregate model
  optimistically assumes;
* **PE contention** — released islands queue FIFO for free PEs instead
  of executing as one aggregate chunk; each PE sustains ``1/P`` of the
  array rate, and when the ready queue drains, idle PEs *join* an
  in-flight island (feature columns are striped across the array, so an
  island can absorb extra lanes) — the array never idles while work is
  in flight;
* **ring + DHUB-PRC port arbitration** — each completed island injects
  one ring flit per attached hub at its primary PE's ring stop (one
  injection per stop per cycle), travels ``(bank - src) % P`` hops, and
  lands on the hub's home PRC bank (one update per bank per cycle);
  grant queues and waits are tracked over event time;
* **hub-cache occupancy** — island starts touch their hubs' XW rows in
  an LRU set bounded by the HUB-XW cache capacity; hits, misses and
  occupancy are sampled into the trace.

Transport (ring/PRC) waits and cache misses are *ledger* quantities:
they shape the reported contention statistics and per-island transport
tail but do not stall the PE array, whose drain latency is already
covered by the fixed pipeline fill — this is what makes the sandwich
contract below provable rather than empirical.

**Sandwich contract.**  Work conservation plus the two release rules
pin the makespan between the existing pipeline models on *every*
input::

    streamed (round-granular, round-start release)
        <= event (island-granular, production-time release)
        <= staged (locator then consumer, back-to-back)

Lower bound: every event release is at or after its round's start and
the array serves at most the aggregate rate, so the event makespan
dominates ``pipelined_makespan`` of the round schedule.  Upper bound:
every release is at or before the locator's finish ``L_total`` and the
array is work-conserving (idle PEs join), so at most ``consumer_cycles``
of wall time remains after ``L_total``.  ``tests/test_properties.py``
pins both sides with hypothesis; ``eval/bench_event.py`` gates them in
CI together with run-to-run trace determinism.

Rounds whose consumer chunk has no island to carry it (hub-only
rounds: combination + inter-hub work) get a synthetic carrier with
``island_id = -(round_index + 1)``, released at the round's *end* (hub
aggregation cannot start before the round's hubs are final).  Carriers
occupy PEs like islands and count toward conservation, but are excluded
from the per-island latency percentiles.

Everything is deterministic: plain-float arithmetic, total orderings on
every queue, no wall clock, no RNG.  Two runs of the same inputs
produce byte-identical traces (:meth:`EventSimResult.trace_bytes`),
which the conformance harness (:func:`validate_trace`) replays to check
the causality and port invariants independently of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "EventSimResult",
    "IslandLatency",
    "simulate_events",
    "validate_trace",
]


#: Float slack for the replayed invariants: the simulator's event
#: arithmetic is exact to ~1 ulp per step, so a fixed epsilon far above
#: accumulation error but far below one cycle is unambiguous.
_EPS = 1e-6


@dataclass(frozen=True)
class IslandLatency:
    """Lifecycle record of one service unit (island or carrier)."""

    island_id: int      # positional island id; negative = round carrier
    round_id: int       # locator round that produced it
    release: float      # production time (cycles)
    start: float        # first PE grant
    completion: float   # aggregation done (compute, excl. transport)
    work: float         # array-cycles of consumer work carried
    pe: int             # primary PE
    helpers: int        # extra PEs that joined before completion
    ring_wait: float    # summed ring injection-port wait of its flits
    prc_wait: float     # summed PRC bank-port wait of its flits

    @property
    def wait(self) -> float:
        """Queueing delay: released but no free PE."""
        return self.start - self.release

    @property
    def latency(self) -> float:
        """Release-to-completion latency (the p50/p99 metric)."""
        return self.completion - self.release


@dataclass(frozen=True)
class EventSimResult:
    """Trace + statistics of one event-granular pipeline simulation."""

    num_pes: int
    consumer_cycles: float          # input: total consumer work
    locator_cycles: float           # input: locator finish time
    round_starts: tuple[float, ...]  # release L_r of each round
    round_cycles: tuple[float, ...]  # locator span cyc_r of each round
    makespan: float                 # last compute completion (0 if idle)
    islands: tuple[IslandLatency, ...]   # all units, id order per round
    trace: tuple[tuple, ...]        # time-sorted canonical event log
    pe_busy: tuple[float, ...]      # per-PE busy time (cycles)
    cache_entries: int
    cache_hits: int
    cache_misses: int
    cache_max_occupancy: int
    ring_grants: int
    ring_total_wait: float
    ring_max_wait: float
    prc_grants: int
    prc_total_wait: float
    prc_max_wait: float
    bank_updates: tuple[int, ...]   # PRC updates per bank

    # ------------------------------------------------------------------
    @property
    def work_total(self) -> float:
        """Array-cycles of work served (== the consumer chunk total)."""
        return sum(unit.work for unit in self.islands)

    @property
    def busy_pe_cycles(self) -> float:
        """Summed per-PE busy time (== ``num_pes * work_total``)."""
        return sum(self.pe_busy)

    def latencies(self) -> np.ndarray:
        """Per-*island* latencies, excluding synthetic round carriers."""
        return np.asarray(
            [u.latency for u in self.islands if u.island_id >= 0],
            dtype=np.float64,
        )

    def latency_percentile(self, q: float) -> float | None:
        """The ``q``-th percentile of island latency, or None if empty."""
        lat = self.latencies()
        if len(lat) == 0:
            return None
        return float(np.percentile(lat, q))

    def trace_bytes(self) -> bytes:
        """Canonical serialization — byte-identical across runs."""
        return "\n".join(repr(event) for event in self.trace).encode()

    def validate(self) -> None:
        """Replay the trace through :func:`validate_trace`."""
        validate_trace(self)


# ----------------------------------------------------------------------
def _split(total: float, weights: Sequence[float]) -> list[float]:
    """Split ``total`` proportionally to ``weights`` (uniform fallback).

    Telescoping prefix differences, so the shares sum to *exactly*
    ``total`` in float arithmetic.
    """
    n = len(weights)
    if n == 0:
        return []
    wsum = float(sum(weights))
    if wsum <= 0.0:
        weights = [1.0] * n
        wsum = float(n)
    shares: list[float] = []
    prefix = 0.0
    prev = 0.0
    for w in weights:
        prefix += float(w)
        cut = total * (prefix / wsum)
        shares.append(cut - prev)
        prev = cut
    shares[-1] += total - prev  # absorb the last rounding residue
    return shares


class _Unit:
    """Mutable in-flight state of one service unit."""

    __slots__ = ("uid", "round_id", "release", "work", "hubs",
                 "remaining", "servers", "joined", "start", "primary")

    def __init__(self, uid, round_id, release, work, hubs):
        self.uid = uid
        self.round_id = round_id
        self.release = release
        self.work = work
        self.hubs = hubs
        self.remaining = work
        self.servers: list[int] = []
        self.joined: dict[int, float] = {}
        self.start = -1.0
        self.primary = -1


def simulate_events(
    round_cycles: Sequence[float],
    round_islands: Sequence[Sequence[tuple[int, float, tuple[int, ...]]]],
    round_chunks: Sequence[float],
    *,
    num_pes: int,
    cache_entries: int = 4096,
) -> EventSimResult:
    """Run the discrete-event pipeline simulation.

    ``round_cycles`` are the locator's per-round cycle spans;
    ``round_islands[r]`` lists the round's islands as ``(island_id,
    weight, hub_ids)`` in production order (weight is the analytic
    intra-round work share — member + hub count); ``round_chunks[r]``
    is the round's consumer-cycle chunk from
    :func:`~repro.core.pipeline.streamed_schedule`, so the chunk totals
    match the aggregate model exactly.  ``num_pes`` PEs each sustain
    ``1/num_pes`` of the array rate; ``cache_entries`` bounds the
    HUB-XW LRU.
    """
    if num_pes < 1:
        raise SimulationError("simulate_events requires num_pes >= 1")
    if not (len(round_cycles) == len(round_islands) == len(round_chunks)):
        raise SimulationError(
            "round_cycles, round_islands and round_chunks must align"
        )
    if cache_entries < 1:
        raise SimulationError("cache_entries must be >= 1")
    pes = float(num_pes)

    # --- Build the release/work schedule -----------------------------
    trace: list[tuple] = []
    units: list[_Unit] = []
    round_starts: list[float] = []
    clock = 0.0
    for r, (cyc, islands, chunk) in enumerate(
        zip(round_cycles, round_islands, round_chunks)
    ):
        round_starts.append(clock)
        cyc = float(cyc)
        chunk = float(chunk)
        if islands:
            weights = [float(w) for _, w, _ in islands]
            works = _split(chunk, weights)
            offsets = _split(cyc, weights)
            produced = 0.0
            for (island_id, _, hubs), work, span in zip(
                islands, works, offsets
            ):
                produced += span  # released once fully formed
                units.append(
                    _Unit(island_id, r + 1, clock + produced, work, hubs)
                )
        elif chunk > 0.0:
            # Hub-only round: combination + inter-hub work with no
            # island to carry it; a synthetic carrier releases at round
            # end (its hubs are only final then).
            units.append(_Unit(-(r + 1), r + 1, clock + cyc, chunk, ()))
        clock += cyc
    locator_cycles = clock
    for unit in units:
        trace.append(("release", unit.release, unit.uid, unit.round_id))

    # --- Event loop ---------------------------------------------------
    pending = sorted(units, key=lambda u: (u.release, u.uid))
    ready: list[_Unit] = []      # FIFO, already release-ordered
    in_service: dict[int, _Unit] = {}
    free = list(range(num_pes))  # kept sorted: lowest PE first
    pe_busy = [0.0] * num_pes
    cache: dict[int, None] = {}  # insertion-ordered LRU of hub ids
    cache_hits = cache_misses = cache_max = 0
    next_pending = 0
    now = 0.0
    records: list[IslandLatency] = []
    completions: dict[int, tuple[float, int, int]] = {}

    def dispatch() -> None:
        nonlocal cache_hits, cache_misses, cache_max
        while next_pending < len(pending) and (
            pending[next_pending].release <= now
        ):
            ready.append(pending[next_pending])
            _advance_pending()
        while ready and free:
            unit = ready.pop(0)
            pe = free.pop(0)
            unit.servers.append(pe)
            unit.joined[pe] = now
            unit.start = now
            unit.primary = pe
            in_service[unit.uid] = unit
            trace.append(("start", now, unit.uid, pe))
            for hub in unit.hubs:
                hub = int(hub)
                if hub in cache:
                    del cache[hub]  # refresh LRU position
                    cache[hub] = None
                    cache_hits += 1
                    hit = 1
                else:
                    if len(cache) >= cache_entries:
                        cache.pop(next(iter(cache)))
                    cache[hub] = None
                    cache_misses += 1
                    hit = 0
                cache_max = max(cache_max, len(cache))
                trace.append(("cache", now, hub, hit, len(cache)))
        if free and not ready and in_service:
            # Idle lanes join the most backlogged unit per server —
            # the array never idles while work is in flight.
            while free:
                uid = max(
                    in_service,
                    key=lambda u: (
                        in_service[u].remaining / len(in_service[u].servers),
                        -u,
                    ),
                )
                unit = in_service[uid]
                pe = free.pop(0)
                unit.servers.append(pe)
                unit.joined[pe] = now
                trace.append(("assist", now, uid, pe))

    def _advance_pending() -> None:
        nonlocal next_pending
        next_pending += 1

    dispatch()
    while in_service or next_pending < len(pending) or ready:
        # Next completion among in-flight units (tie: lowest id).
        next_done: _Unit | None = None
        done_at = float("inf")
        for uid in sorted(in_service):
            unit = in_service[uid]
            # Clamp to ``now`` so rounding in the depletion step can
            # never produce an eta in the past: loop timestamps stay
            # monotone in emission order, which the final stable sort
            # relies on to keep equal-time cascades causal.
            eta = max(now, now + unit.remaining * pes / len(unit.servers))
            if eta < done_at - _EPS:
                next_done, done_at = unit, eta
        next_release = (
            pending[next_pending].release
            if next_pending < len(pending)
            else float("inf")
        )
        if next_done is None and next_release == float("inf"):
            # Ready units but no free PE and nothing in flight cannot
            # happen (dispatch assigns whenever a PE is free).
            raise SimulationError("event loop stalled")  # pragma: no cover
        completing = done_at <= next_release + _EPS and next_done is not None
        target = done_at if completing else next_release
        dt = max(0.0, target - now)
        for uid in sorted(in_service):  # deplete everyone in flight
            unit = in_service[uid]
            unit.remaining = max(
                0.0, unit.remaining - dt * len(unit.servers) / pes
            )
        now = target
        if completing:
            unit = next_done
            unit.remaining = 0.0
            del in_service[unit.uid]
            for pe in unit.servers:
                pe_busy[pe] += now - unit.joined[pe]
            free.extend(unit.servers)
            free.sort()
            trace.append(("complete", now, unit.uid, unit.primary))
            completions[unit.uid] = (now, unit.primary, len(unit.servers) - 1)
        dispatch()

    # --- Transport ledger: ring injection + PRC bank ports ------------
    ring_free = [0.0] * num_pes
    bank_free = [0.0] * num_pes
    bank_updates = [0] * num_pes
    ring_grants = prc_grants = 0
    ring_total = prc_total = 0.0
    ring_max = prc_max = 0.0
    unit_ring: dict[int, float] = {}
    unit_prc: dict[int, float] = {}
    for unit in sorted(units, key=lambda u: (completions[u.uid][0], u.uid)):
        done, src, _ = completions[unit.uid]
        r_wait = p_wait = 0.0
        for hub in unit.hubs:
            hub = int(hub)
            bank = hub % num_pes
            grant = max(done, ring_free[src])
            ring_free[src] = grant + 1.0
            wait = grant - done
            r_wait += wait
            ring_max = max(ring_max, wait)
            ring_grants += 1
            hops = (bank - src) % num_pes
            arrival = grant + hops
            trace.append(("ring", grant, unit.uid, hub, src, bank, hops))
            pgrant = max(arrival, bank_free[bank])
            bank_free[bank] = pgrant + 1.0
            pwait = pgrant - arrival
            p_wait += pwait
            prc_max = max(prc_max, pwait)
            prc_grants += 1
            bank_updates[bank] += 1
            trace.append(("prc", pgrant, hub, bank, round(pwait, 9)))
        ring_total += r_wait
        prc_total += p_wait
        unit_ring[unit.uid] = r_wait
        unit_prc[unit.uid] = p_wait

    for unit in sorted(units, key=lambda u: (u.round_id, u.uid)):
        done, primary, helpers = completions[unit.uid]
        records.append(
            IslandLatency(
                island_id=unit.uid,
                round_id=unit.round_id,
                release=unit.release,
                start=unit.start,
                completion=done,
                work=unit.work,
                pe=primary,
                helpers=helpers,
                ring_wait=unit_ring[unit.uid],
                prc_wait=unit_prc[unit.uid],
            )
        )

    # Stable sort by timestamp only: events are *emitted* in causal
    # order (releases up front in time order, the loop's cascades in
    # execution order, transport last), so equal-time cascades —
    # complete → start on the freed PE → assist — keep their causal
    # sequence, which the validator's single-pass replay relies on.
    trace.sort(key=lambda e: e[1])
    makespan = max((done for done, _, _ in completions.values()), default=0.0)
    return EventSimResult(
        num_pes=num_pes,
        consumer_cycles=float(sum(round_chunks)),
        locator_cycles=locator_cycles,
        round_starts=tuple(round_starts),
        round_cycles=tuple(float(c) for c in round_cycles),
        makespan=makespan,
        islands=tuple(records),
        trace=tuple(trace),
        pe_busy=tuple(pe_busy),
        cache_entries=cache_entries,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_max_occupancy=cache_max,
        ring_grants=ring_grants,
        ring_total_wait=ring_total,
        ring_max_wait=ring_max,
        prc_grants=prc_grants,
        prc_total_wait=prc_total,
        prc_max_wait=prc_max,
        bank_updates=tuple(bank_updates),
    )


# ----------------------------------------------------------------------
def validate_trace(result: EventSimResult) -> None:
    """Replay ``result.trace`` and assert the conformance invariants.

    The validator reconstructs every unit's lifecycle and the port
    ledgers *from the trace alone* and cross-checks them against the
    result's records, so a corrupted or hand-edited trace is rejected
    even when the summary fields still look plausible.  Raises
    :class:`~repro.errors.SimulationError` on the first violation.

    Invariants:

    * causality — no unit starts before its release, no release
      precedes its round's start or outlives the locator, completions
      follow starts and take at least the unit's work;
    * PE exclusivity — reconstructed per-PE service intervals never
      overlap (one island per PE at a time);
    * port capacity — at most one ring injection per stop per cycle,
      one PRC update per bank per cycle, ring hops follow the
      ``(bank - src) % P`` topology;
    * hub-cache occupancy never exceeds the configured capacity;
    * conservation — recorded work sums to the consumer chunk total
      and the busy PE-cycles equal ``num_pes`` times it;
    * the makespan is exactly the last completion.
    """
    P = result.num_pes
    starts: dict[int, tuple[float, int]] = {}
    releases: dict[int, tuple[float, int]] = {}
    completes: dict[int, tuple[float, int]] = {}
    pe_intervals: dict[int, list[tuple[float, float]]] = {}
    pe_open: dict[int, tuple[int, float]] = {}
    unit_pes: dict[int, list[int]] = {}
    ring_last: dict[int, float] = {}
    bank_last: dict[int, float] = {}
    prev_time = float("-inf")

    def fail(msg: str) -> None:
        raise SimulationError(f"event trace invalid: {msg}")

    for event in result.trace:
        kind, time = event[0], event[1]
        if time < prev_time - _EPS:
            fail(f"timestamps regress at {event!r}")
        prev_time = max(prev_time, time)
        if kind == "release":
            _, _, uid, round_id = event
            if uid in releases:
                fail(f"unit {uid} released twice")
            r = round_id - 1
            if not 0 <= r < len(result.round_starts):
                fail(f"unit {uid} names unknown round {round_id}")
            lo = result.round_starts[r]
            hi = lo + result.round_cycles[r]
            if not lo - _EPS <= time <= hi + _EPS:
                fail(
                    f"unit {uid} released at {time} outside its round "
                    f"span [{lo}, {hi}]"
                )
            releases[uid] = (time, round_id)
        elif kind == "start":
            _, _, uid, pe = event
            if uid not in releases:
                fail(f"unit {uid} starts before any release")
            if uid in starts:
                fail(f"unit {uid} starts twice")
            if time < releases[uid][0] - _EPS:
                fail(f"unit {uid} starts before its release")
            starts[uid] = (time, pe)
            if pe in pe_open:
                fail(f"PE {pe} grabbed by {uid} while serving "
                     f"{pe_open[pe][0]}")
            pe_open[pe] = (uid, time)
            unit_pes.setdefault(uid, []).append(pe)
        elif kind == "assist":
            _, _, uid, pe = event
            if uid not in starts:
                fail(f"unit {uid} assisted before starting")
            if pe in pe_open:
                fail(f"PE {pe} joins {uid} while serving "
                     f"{pe_open[pe][0]}")
            pe_open[pe] = (uid, time)
            unit_pes.setdefault(uid, []).append(pe)
        elif kind == "complete":
            _, _, uid, pe = event
            if uid not in starts:
                fail(f"unit {uid} completes without starting")
            if uid in completes:
                fail(f"unit {uid} completes twice")
            if time < starts[uid][0] - _EPS:
                fail(f"unit {uid} completes before its start")
            completes[uid] = (time, pe)
            for served in unit_pes.get(uid, ()):  # free every lane
                if served not in pe_open or pe_open[served][0] != uid:
                    fail(f"PE {served} not serving {uid} at completion")
                pe_intervals.setdefault(served, []).append(
                    (pe_open[served][1], time)
                )
                del pe_open[served]
        elif kind == "cache":
            _, _, _hub, _hit, occupancy = event
            if occupancy > result.cache_entries:
                fail(
                    f"hub-cache occupancy {occupancy} exceeds capacity "
                    f"{result.cache_entries}"
                )
        elif kind == "ring":
            _, grant, uid, _hub, src, bank, hops = event
            if not 0 <= src < P or not 0 <= bank < P:
                fail(f"ring flit names PE/bank outside 0..{P - 1}")
            if hops != (bank - src) % P:
                fail(f"ring flit hop count {hops} != ({bank}-{src})%{P}")
            if uid not in completes or grant < completes[uid][0] - _EPS:
                fail(f"unit {uid} injects a flit before completing")
            if src in ring_last and grant < ring_last[src] + 1.0 - _EPS:
                fail(f"ring stop {src} grants twice within one cycle")
            ring_last[src] = grant
        elif kind == "prc":
            _, grant, _hub, bank, _wait = event
            if not 0 <= bank < P:
                fail(f"PRC update names bank outside 0..{P - 1}")
            if bank in bank_last and grant < bank_last[bank] + 1.0 - _EPS:
                fail(f"PRC bank {bank} grants twice within one cycle")
            bank_last[bank] = grant
        else:
            fail(f"unknown event kind {kind!r}")

    if pe_open:
        fail(f"PEs still serving at end of trace: {sorted(pe_open)}")
    if set(releases) != set(completes):
        missing = sorted(set(releases) ^ set(completes))
        fail(f"units without a full lifecycle: {missing}")
    for intervals in pe_intervals.values():
        intervals.sort()
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            if b0 < a1 - _EPS:
                fail(f"overlapping PE service intervals "
                     f"[{a0},{a1}] and [{b0},{b1}]")

    # Cross-check the records against the replay.
    if len(result.islands) != len(releases):
        fail("record count disagrees with the trace")
    for unit in result.islands:
        if unit.island_id not in releases:
            fail(f"record for unit {unit.island_id} has no trace events")
        if abs(releases[unit.island_id][0] - unit.release) > _EPS:
            fail(f"unit {unit.island_id} release disagrees with trace")
        if abs(starts[unit.island_id][0] - unit.start) > _EPS:
            fail(f"unit {unit.island_id} start disagrees with trace")
        if abs(completes[unit.island_id][0] - unit.completion) > _EPS:
            fail(f"unit {unit.island_id} completion disagrees with trace")
        span = unit.completion - unit.start
        if span < unit.work - _EPS:
            fail(
                f"unit {unit.island_id} finished {unit.work} work in "
                f"{span} cycles (above array rate)"
            )
        if span > unit.work * P + _EPS:
            fail(
                f"unit {unit.island_id} took {span} cycles for "
                f"{unit.work} work (below single-lane rate)"
            )

    work_total = result.work_total
    if abs(work_total - result.consumer_cycles) > max(
        _EPS, 1e-9 * abs(result.consumer_cycles)
    ):
        fail(
            f"work not conserved: units carry {work_total}, consumer "
            f"chunks total {result.consumer_cycles}"
        )
    busy = result.busy_pe_cycles
    if abs(busy - P * work_total) > max(_EPS, 1e-9 * abs(busy)):
        fail(
            f"busy PE-cycles {busy} != num_pes * work {P * work_total}"
        )
    last = max((t for t, _ in completes.values()), default=0.0)
    if abs(last - result.makespan) > _EPS:
        fail(f"makespan {result.makespan} != last completion {last}")
