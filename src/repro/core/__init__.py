"""I-GCN core (§3): the Island Locator (Algorithm 1), the Island
Consumer (§3.3), and the streamed locator→consumer pipeline (§3.1.1,
Fig. 3) that overlaps the two."""

from repro.core.accelerator import IGCNAccelerator, IGCNReport
from repro.core.bitmap import IslandTask, build_island_task
from repro.core.config import ConsumerConfig, LocatorConfig
from repro.core.consumer import IslandConsumer, LayerCounts, prepare_tasks
from repro.core.consumer_batched import TaskBatch
from repro.core.interhub import InterHubPlan, build_interhub_plan
from repro.core.islandizer import IslandLocator, islandize
from repro.core.islandizer_partitioned import (
    islandize_partitioned,
    quality_metrics,
)
from repro.core.pipeline import pipelined_makespan, streamed_schedule
from repro.core.preagg import ScanCounts, scan_aggregate, scan_costs
from repro.core.schedule import PEScheduleReport, ScheduledTask, schedule_islands
from repro.core.types import (
    Island,
    IslandizationResult,
    LocatorWork,
    RoundOutput,
    RoundStats,
)

__all__ = [
    "IGCNAccelerator",
    "IGCNReport",
    "IslandTask",
    "build_island_task",
    "ConsumerConfig",
    "LocatorConfig",
    "IslandConsumer",
    "LayerCounts",
    "prepare_tasks",
    "TaskBatch",
    "InterHubPlan",
    "build_interhub_plan",
    "IslandLocator",
    "islandize",
    "islandize_partitioned",
    "quality_metrics",
    "ScanCounts",
    "PEScheduleReport",
    "ScheduledTask",
    "schedule_islands",
    "scan_aggregate",
    "scan_costs",
    "pipelined_makespan",
    "streamed_schedule",
    "Island",
    "IslandizationResult",
    "LocatorWork",
    "RoundOutput",
    "RoundStats",
]
