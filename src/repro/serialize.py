"""Stable npz-based serialization shared by every artifact type.

Every artifact the runtime may persist (graphs, islandizations,
datasets, workloads) serializes through the same scheme: a flat dict of
numpy arrays plus one JSON metadata record, written as a single
``.npz`` file.  Arrays are stored uncompressed and verbatim, so a
round-trip is **byte-identical** on every numpy payload (dtype, shape
and raw bytes are all preserved) — the property the disk artifact
store's tests pin down.

The metadata record travels inside the archive under :data:`META_KEY`
as a ``uint8`` view of its canonical JSON encoding, which keeps the
file a plain ``numpy.savez`` archive (no pickling, loadable with
``allow_pickle=False``).

:func:`config_digest` is the companion for cache *keys*: a short stable
digest of any (nested) frozen config dataclass, used to turn
``LocatorConfig``/``ModelConfig`` values into string cache keys instead
of relying on object identity or Python hashing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from typing import IO, Any

import numpy as np

from repro.errors import ReproError

__all__ = ["META_KEY", "SerializationError", "write_npz", "read_npz", "config_digest"]

#: Archive member holding the JSON metadata record.
META_KEY = "__meta__"


class SerializationError(ReproError):
    """An artifact file could not be written or read back."""


def write_npz(
    file: str | IO[bytes],
    arrays: dict[str, np.ndarray],
    meta: dict[str, Any],
) -> None:
    """Write ``arrays`` + one JSON ``meta`` record as an npz archive.

    ``file`` may be a path or a binary file object.  Paths are written
    exactly as given (``numpy.savez`` would silently append ``.npz`` to
    an extensionless path, breaking the :func:`read_npz` round-trip).
    Array names must not collide with :data:`META_KEY`; metadata must
    be JSON-encodable.
    """
    if META_KEY in arrays:
        raise SerializationError(f"array name {META_KEY!r} is reserved for metadata")
    payload: dict[str, np.ndarray] = {}
    for name, arr in arrays.items():
        payload[name] = np.asarray(arr)
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    payload[META_KEY] = np.frombuffer(blob, dtype=np.uint8)
    if isinstance(file, (str, os.PathLike)):
        with open(file, "wb") as fh:
            np.savez(fh, **payload)
    else:
        np.savez(file, **payload)


def read_npz(file: str | IO[bytes]) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load an archive written by :func:`write_npz` → (arrays, meta)."""
    with np.load(file, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files if name != META_KEY}
        if META_KEY in archive.files:
            meta = json.loads(archive[META_KEY].tobytes().decode())
        else:
            meta = {}
    return arrays, meta


@lru_cache(maxsize=None)
def config_digest(config: Any) -> str:
    """Short stable digest of a frozen config dataclass.

    The digest is computed over the canonical JSON encoding of the
    dataclass's field values (nested dataclasses included), so it is
    stable across processes and hosts — unlike ``hash()`` — and two
    configs digest equal iff their fields are equal.  Results are
    memoized per config value (configs are hashable frozen dataclasses).
    """
    if not dataclasses.is_dataclass(config):
        raise SerializationError(
            f"config_digest needs a dataclass instance, got {type(config).__name__}"
        )
    blob = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.blake2b(blob, digest_size=8).hexdigest()
