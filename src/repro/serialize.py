"""Stable npz-based serialization shared by every artifact type.

Every artifact the runtime may persist (graphs, islandizations,
datasets, workloads) serializes through the same scheme: a flat dict of
numpy arrays plus one JSON metadata record, written as a single
``.npz`` file.  Arrays are stored uncompressed and verbatim, so a
round-trip is **byte-identical** on every numpy payload (dtype, shape
and raw bytes are all preserved) — the property the disk artifact
store's tests pin down.

The metadata record travels inside the archive under :data:`META_KEY`
as a ``uint8`` view of its canonical JSON encoding, which keeps the
file a plain ``numpy.savez`` archive (no pickling, loadable with
``allow_pickle=False``).

:func:`config_digest` is the companion for cache *keys*: a short stable
digest of any (nested) frozen config dataclass, used to turn
``LocatorConfig``/``ModelConfig`` values into string cache keys instead
of relying on object identity or Python hashing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
import zipfile
from functools import lru_cache
from typing import IO, Any

import numpy as np

from repro.errors import ReproError

__all__ = [
    "META_KEY",
    "SerializationError",
    "write_npz",
    "read_npz",
    "read_npz_mmap",
    "config_digest",
]

#: Archive member holding the JSON metadata record.
META_KEY = "__meta__"


class SerializationError(ReproError):
    """An artifact file could not be written or read back."""


def write_npz(
    file: str | IO[bytes],
    arrays: dict[str, np.ndarray],
    meta: dict[str, Any],
) -> None:
    """Write ``arrays`` + one JSON ``meta`` record as an npz archive.

    ``file`` may be a path or a binary file object.  Paths are written
    exactly as given (``numpy.savez`` would silently append ``.npz`` to
    an extensionless path, breaking the :func:`read_npz` round-trip).
    Array names must not collide with :data:`META_KEY`; metadata must
    be JSON-encodable.
    """
    if META_KEY in arrays:
        raise SerializationError(f"array name {META_KEY!r} is reserved for metadata")
    payload: dict[str, np.ndarray] = {}
    for name, arr in arrays.items():
        payload[name] = np.asarray(arr)
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    payload[META_KEY] = np.frombuffer(blob, dtype=np.uint8)
    if isinstance(file, (str, os.PathLike)):
        with open(file, "wb") as fh:
            np.savez(fh, **payload)
    else:
        np.savez(file, **payload)


def read_npz(file: str | IO[bytes]) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load an archive written by :func:`write_npz` → (arrays, meta)."""
    with np.load(file, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files if name != META_KEY}
        if META_KEY in archive.files:
            meta = json.loads(archive[META_KEY].tobytes().decode())
        else:
            meta = {}
    return arrays, meta


#: Byte length of a zip local-file-header before the (variable) name
#: and extra fields; offsets 26/28 hold those two lengths.
_ZIP_LOCAL_HEADER = 30


def read_npz_mmap(path: str | os.PathLike) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load a :func:`write_npz` archive with **memory-mapped** arrays.

    ``numpy.load`` silently ignores ``mmap_mode`` for ``.npz`` archives
    (it only applies to bare ``.npy`` files), so out-of-core readers
    that must not materialise their arrays — partitioned-islandization
    workers mapping one graph shard each — go through this reader
    instead: every array comes back as a read-only ``np.memmap`` onto
    the archive file itself, so resident memory grows only with the
    pages actually touched.

    Works because :func:`write_npz` stores members uncompressed and a
    stored zip member's payload is a contiguous byte range: the member's
    npy header is parsed in place and the data mapped at its absolute
    offset.  Compressed or pickled members are rejected.  The metadata
    record is decoded eagerly (it is small by construction).
    """
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, Any] = {}
    try:
        with open(path, "rb") as fh:
            with zipfile.ZipFile(fh) as archive:
                for info in archive.infolist():
                    name = info.filename.removesuffix(".npy")
                    if info.compress_type != zipfile.ZIP_STORED:
                        raise SerializationError(
                            f"member {name!r} of {path!r} is compressed; "
                            f"mmap reads need write_npz's stored layout"
                        )
                    fh.seek(info.header_offset)
                    header = fh.read(_ZIP_LOCAL_HEADER)
                    name_len, extra_len = struct.unpack("<HH", header[26:30])
                    fh.seek(info.header_offset + _ZIP_LOCAL_HEADER
                            + name_len + extra_len)
                    version = np.lib.format.read_magic(fh)
                    if version == (1, 0):
                        shape, fortran, dtype = (
                            np.lib.format.read_array_header_1_0(fh)
                        )
                    else:
                        shape, fortran, dtype = (
                            np.lib.format.read_array_header_2_0(fh)
                        )
                    if dtype.hasobject:
                        raise SerializationError(
                            f"member {name!r} of {path!r} holds objects"
                        )
                    if name == META_KEY:
                        meta = json.loads(fh.read(int(np.prod(shape))).decode())
                        continue
                    arrays[name] = np.memmap(
                        path, dtype=dtype, mode="r", offset=fh.tell(),
                        shape=shape, order="F" if fortran else "C",
                    )
    except SerializationError:
        raise
    except Exception as exc:  # zip/npy-header damage → one error type
        raise SerializationError(f"cannot mmap npz archive {path!r}: {exc}") from exc
    return arrays, meta


@lru_cache(maxsize=None)
def config_digest(config: Any) -> str:
    """Short stable digest of a frozen config dataclass.

    The digest is computed over the canonical JSON encoding of the
    dataclass's field values (nested dataclasses included), so it is
    stable across processes and hosts — unlike ``hash()`` — and two
    configs digest equal iff their fields are equal.  Results are
    memoized per config value (configs are hashable frozen dataclasses).
    """
    if not dataclasses.is_dataclass(config):
        raise SerializationError(
            f"config_digest needs a dataclass instance, got {type(config).__name__}"
        )
    blob = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.blake2b(blob, digest_size=8).hexdigest()
