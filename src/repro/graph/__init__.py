"""Graph substrate: CSR storage, builders, generators, datasets, reorderings."""

from repro.graph.csr import CSRGraph
from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    CommunityProfile,
    barabasi_albert,
    erdos_renyi,
    hub_island_graph,
    stochastic_block,
)
from repro.graph.datasets import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    figure2_graph,
    figure7_island_graph,
    load_dataset,
)
from repro.graph.partition import (
    GraphPartition,
    GraphShard,
    PartitionError,
    PartitionStats,
    partition_graph,
)
from repro.graph.stats import GraphStats, connected_components, graph_stats

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "CommunityProfile",
    "hub_island_graph",
    "erdos_renyi",
    "barabasi_albert",
    "stochastic_block",
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "figure2_graph",
    "figure7_island_graph",
    "GraphStats",
    "graph_stats",
    "connected_components",
    "GraphPartition",
    "GraphShard",
    "PartitionError",
    "PartitionStats",
    "partition_graph",
]
