"""Graph statistics helpers.

Small, self-contained measurements used by the evaluation harness and
the dataset calibration tests: degree distribution summaries, power-law
skew, clustering coefficient (sampled), and connected components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "connected_components", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph."""

    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    density: float
    degree_p50: float
    degree_p90: float
    degree_p99: float
    gini_degree: float
    num_components: int
    largest_component: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "nodes": self.num_nodes,
            "nnz": self.num_edges,
            "avg_deg": round(self.avg_degree, 2),
            "max_deg": self.max_degree,
            "density": self.density,
            "deg_p50": self.degree_p50,
            "deg_p90": self.degree_p90,
            "deg_p99": self.degree_p99,
            "gini": round(self.gini_degree, 3),
            "components": self.num_components,
            "largest_cc": self.largest_component,
        }


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (degree skew measure)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if len(v) == 0 or v.sum() == 0:
        return 0.0
    n = len(v)
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label nodes by connected component (iterative BFS, O(V + E))."""
    labels = -np.ones(graph.num_nodes, dtype=np.int64)
    current = 0
    for start in range(graph.num_nodes):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if labels[v] < 0:
                    labels[v] = current
                    stack.append(int(v))
        current += 1
    return labels


def degree_histogram(graph: CSRGraph, *, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced degree histogram; returns (bin_edges, counts)."""
    degrees = graph.degrees
    max_deg = max(1, int(degrees.max()) if len(degrees) else 1)
    edges = np.unique(
        np.round(np.logspace(0, np.log10(max_deg + 1), bins)).astype(np.int64)
    )
    counts, _ = np.histogram(degrees, bins=np.append(edges, max_deg + 2))
    return edges, counts


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute the full :class:`GraphStats` summary."""
    degrees = graph.degrees.astype(np.float64)
    labels = connected_components(graph)
    sizes = np.bincount(labels) if len(labels) else np.zeros(1, np.int64)
    if len(degrees) == 0:
        p50 = p90 = p99 = 0.0
    else:
        p50, p90, p99 = (float(np.percentile(degrees, q)) for q in (50, 90, 99))
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        avg_degree=graph.avg_degree,
        max_degree=graph.max_degree,
        density=graph.density,
        degree_p50=p50,
        degree_p90=p90,
        degree_p99=p99,
        gini_degree=gini(degrees),
        num_components=int(labels.max()) + 1 if len(labels) else 0,
        largest_component=int(sizes.max()) if len(sizes) else 0,
    )
