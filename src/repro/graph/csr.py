"""Compressed sparse row (CSR) graph storage.

The whole simulator operates on :class:`CSRGraph`: an immutable,
undirected graph stored as a pair of numpy arrays (``indptr``,
``indices``) in the usual CSR layout.  The adjacency matrix it
represents is binary and symmetric; per-edge weights used by GCN
normalisation are *derived* (they factorise per endpoint, see
``repro.models.reference``), so they are never materialised here.

Design notes
------------
* ``indices`` within each row are kept sorted.  Several consumers
  (bitmap construction, reordering metrics) rely on this for
  ``searchsorted``-based membership tests.
* Degrees are the *structural* out-degrees (row lengths).  Because the
  graph is symmetric this equals the in-degree.
* Self-loops are permitted (GCN uses ``A + I``); generators add them
  explicitly when a model requires them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import IO, Iterator

import numpy as np

from repro.errors import GraphError
from repro.serialize import read_npz, write_npz

__all__ = ["CSRGraph", "GraphDelta"]


@dataclass(frozen=True)
class GraphDelta:
    """An undirected edge delta: edges to insert plus edges to delete.

    Endpoint arrays are parallel (``insert_src[i]`` — ``insert_dst[i]``
    is one undirected edge to add).  Edges are undirected: each pair is
    applied symmetrically by :meth:`CSRGraph.apply_delta`, whichever
    direction it is written in, and duplicates within the delta are
    harmless.  Self-loops are rejected — the Island Locator operates on
    self-loop-free graphs and a delta that silently reintroduced the
    diagonal would corrupt its edge accounting.

    Inserting an edge that already exists, or deleting one that does
    not, is a no-op (the *effective* change set is what incremental
    islandization dirties on).  The same undirected edge may not appear
    on both sides of one delta.
    """

    insert_src: np.ndarray
    insert_dst: np.ndarray
    delete_src: np.ndarray
    delete_dst: np.ndarray

    def __post_init__(self) -> None:
        for name in ("insert_src", "insert_dst", "delete_src", "delete_dst"):
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.int64).ravel()
            object.__setattr__(self, name, arr)
        if (
            self.insert_src.shape != self.insert_dst.shape
            or self.delete_src.shape != self.delete_dst.shape
        ):
            raise GraphError("delta endpoint arrays must be parallel")
        for src, dst in (
            (self.insert_src, self.insert_dst),
            (self.delete_src, self.delete_dst),
        ):
            if len(src) and (src.min() < 0 or dst.min() < 0):
                raise GraphError("delta endpoints must be non-negative")
            if len(src) and bool(np.any(src == dst)):
                raise GraphError("delta edges must not be self-loops")

    @property
    def num_insertions(self) -> int:
        """Number of (possibly duplicate) insertion pairs."""
        return len(self.insert_src)

    @property
    def num_deletions(self) -> int:
        """Number of (possibly duplicate) deletion pairs."""
        return len(self.delete_src)

    @property
    def num_edges(self) -> int:
        """Total undirected edge pairs listed in the delta."""
        return self.num_insertions + self.num_deletions

    @staticmethod
    def from_edges(
        insertions: np.ndarray | None = None,
        deletions: np.ndarray | None = None,
    ) -> "GraphDelta":
        """Build a delta from ``(k, 2)`` edge arrays (either may be None)."""
        ins = np.asarray(
            insertions if insertions is not None else np.zeros((0, 2)), dtype=np.int64
        ).reshape(-1, 2)
        dels = np.asarray(
            deletions if deletions is not None else np.zeros((0, 2)), dtype=np.int64
        ).reshape(-1, 2)
        return GraphDelta(
            insert_src=ins[:, 0], insert_dst=ins[:, 1],
            delete_src=dels[:, 0], delete_dst=dels[:, 1],
        )

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the delta (round-trips through :meth:`from_npz`)."""
        write_npz(
            file,
            {
                "insert_src": self.insert_src,
                "insert_dst": self.insert_dst,
                "delete_src": self.delete_src,
                "delete_dst": self.delete_dst,
            },
            {"format": 1},
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "GraphDelta":
        """Restore a delta written by :meth:`to_npz`."""
        arrays, _ = read_npz(file)
        return cls(
            insert_src=arrays["insert_src"],
            insert_dst=arrays["insert_dst"],
            delete_src=arrays["delete_src"],
            delete_dst=arrays["delete_dst"],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDelta(insertions={self.num_insertions}, "
            f"deletions={self.num_deletions})"
        )


def _sorted_member(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership mask of ``needles`` in sorted ``haystack``."""
    if len(haystack) == 0 or len(needles) == 0:
        return np.zeros(len(needles), dtype=bool)
    pos = np.clip(np.searchsorted(haystack, needles), 0, len(haystack) - 1)
    return haystack[pos] == needles


@dataclass(frozen=True)
class CSRGraph:
    """An immutable undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; row ``u`` occupies
        ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        ``int64`` array of neighbour ids, sorted within each row.

    Notes
    -----
    Use :meth:`from_edges` or ``repro.graph.builder.GraphBuilder`` to
    construct instances; the raw constructor validates its arguments but
    does not symmetrise or deduplicate.
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = field(default="graph")

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if len(indptr) == 0 or indptr[0] != 0:
            raise GraphError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise GraphError(
                f"indptr[-1]={indptr[-1]} does not match len(indices)={len(indices)}"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("indices contain out-of-range node ids")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of *directed* entries (nnz of the adjacency matrix)."""
        return len(self.indices)

    @property
    def nnz(self) -> int:
        """Alias of :attr:`num_edges`; nnz of the adjacency matrix."""
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Structural degree of each node (row lengths)."""
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        """Largest node degree (0 for an empty graph)."""
        if self.num_nodes == 0:
            return 0
        return int(self.degrees.max())

    @property
    def avg_degree(self) -> float:
        """Mean node degree."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    @property
    def density(self) -> float:
        """nnz / n^2, the fill fraction of the adjacency matrix."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / (self.num_nodes**2)

    # ------------------------------------------------------------------
    # Neighbour access
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbour ids of ``node`` (a view, do not mutate)."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")
        return int(self.indptr[node + 1] - self.indptr[node])

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed entry (u, v) exists."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return pos < len(row) and row[pos] == v

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every directed entry (u, v) once."""
        for u in range(self.num_nodes):
            for v in self.neighbors(u):
                yield u, int(v)

    def fingerprint(self) -> str:
        """Content digest of the CSR structure + name (cached).

        The graph is immutable, so the digest is computed once and
        stored on the instance; artifact caches key graphs by it
        (hashing the raw arrays directly would make every cache lookup
        linear in nnz).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self.name.encode())
            digest.update(self.indptr.tobytes())
            digest.update(self.indices.tobytes())
            cached = digest.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the CSR arrays + name to an npz archive.

        The round-trip (:meth:`from_npz`) is byte-identical on both
        arrays, so the restored graph has the same :meth:`fingerprint`.
        """
        write_npz(
            file,
            {"indptr": self.indptr, "indices": self.indices},
            {"format": 1, "name": self.name},
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "CSRGraph":
        """Restore a graph written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        return cls(
            indptr=arrays["indptr"],
            indices=arrays["indices"],
            name=str(meta["name"]),
        )

    # ------------------------------------------------------------------
    # Structure checks and conversions
    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """Check that every entry (u, v) has its mirror (v, u)."""
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        forward = set(zip(rows.tolist(), self.indices.tolist()))
        return all((v, u) in forward for u, v in forward)

    def has_self_loops(self) -> bool:
        """True if any diagonal entry is present."""
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        return bool(np.any(rows == self.indices))

    def with_self_loops(self) -> "CSRGraph":
        """Return a copy with the diagonal filled in (idempotent)."""
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        mask_missing = np.ones(self.num_nodes, dtype=bool)
        mask_missing[self.indices[rows == self.indices]] = False
        extra = np.flatnonzero(mask_missing)
        if len(extra) == 0:
            return self
        new_rows = np.concatenate([rows, extra])
        new_cols = np.concatenate([self.indices, extra])
        return CSRGraph.from_edges(
            self.num_nodes,
            new_rows,
            new_cols,
            name=self.name,
            symmetrize=False,
        )

    def without_self_loops(self) -> "CSRGraph":
        """Return a copy with the diagonal removed (idempotent)."""
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        keep = rows != self.indices
        return CSRGraph.from_edges(
            self.num_nodes, rows[keep], self.indices[keep], name=self.name,
            symmetrize=False,
        )

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel nodes: new id of old node ``u`` is ``perm[u]``.

        ``perm`` must be a permutation of ``range(num_nodes)``.  Used by
        the reordering baselines to materialise a reordered graph.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_nodes,):
            raise GraphError("perm has wrong length")
        check = np.zeros(self.num_nodes, dtype=bool)
        check[perm] = True
        if not check.all():
            raise GraphError("perm is not a permutation")
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        return CSRGraph.from_edges(
            self.num_nodes, perm[rows], perm[self.indices], name=self.name,
            symmetrize=False,
        )

    def subgraph(self, nodes: np.ndarray) -> "CSRGraph":
        """Induced subgraph on ``nodes`` (relabelled 0..len(nodes)-1)."""
        nodes = np.asarray(sorted(set(np.asarray(nodes, dtype=np.int64).tolist())))
        relabel = -np.ones(self.num_nodes, dtype=np.int64)
        relabel[nodes] = np.arange(len(nodes))
        rows_out: list[int] = []
        cols_out: list[int] = []
        for new_u, u in enumerate(nodes):
            for v in self.neighbors(int(u)):
                nv = relabel[v]
                if nv >= 0:
                    rows_out.append(new_u)
                    cols_out.append(int(nv))
        return CSRGraph.from_edges(
            len(nodes),
            np.asarray(rows_out, dtype=np.int64),
            np.asarray(cols_out, dtype=np.int64),
            name=f"{self.name}-sub",
            symmetrize=False,
        )

    def edge_keys(self) -> np.ndarray:
        """Sorted int64 keys ``u * num_nodes + v`` of every directed entry.

        CSR rows are ascending and in-row indices sorted, so the keys
        come out strictly increasing without a sort — the backbone of
        the vectorized delta merge in :meth:`apply_delta`.
        """
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        return rows * np.int64(self.num_nodes) + self.indices

    def apply_delta(
        self, delta: GraphDelta, *, with_changes: bool = False
    ) -> "CSRGraph" | tuple["CSRGraph", np.ndarray, np.ndarray]:
        """Apply an undirected edge delta, returning the mutated graph.

        The merge is fully vectorized — one sorted-key membership pass
        plus one ``np.insert`` splice, no per-edge Python loop — and the
        result is exactly what ``CSRGraph.from_edges`` would build from
        the mutated edge list (sorted rows, deduplicated, symmetric).
        Inserts of existing edges and deletes of absent edges are
        no-ops; an undirected edge listed on both sides of the delta is
        an error.

        With ``with_changes=True`` also returns the *effective* change
        keys ``(inserted, deleted)`` — sorted directed-entry keys in the
        ``u * num_nodes + v`` space of :meth:`edge_keys`, restricted to
        entries that actually changed.  Incremental islandization seeds
        its dirty region from these.
        """
        n = np.int64(self.num_nodes)
        if len(delta.insert_src) and (
            delta.insert_src.max() >= n or delta.insert_dst.max() >= n
        ):
            raise GraphError("delta insertion endpoints out of range")
        if len(delta.delete_src) and (
            delta.delete_src.max() >= n or delta.delete_dst.max() >= n
        ):
            raise GraphError("delta deletion endpoints out of range")
        ins_keys = np.unique(
            np.concatenate([
                delta.insert_src * n + delta.insert_dst,
                delta.insert_dst * n + delta.insert_src,
            ])
        )
        del_keys = np.unique(
            np.concatenate([
                delta.delete_src * n + delta.delete_dst,
                delta.delete_dst * n + delta.delete_src,
            ])
        )
        if len(ins_keys) and len(del_keys) and len(
            np.intersect1d(ins_keys, del_keys, assume_unique=True)
        ):
            raise GraphError("delta inserts and deletes the same edge")
        existing = self.edge_keys()
        ins_eff = ins_keys[~_sorted_member(existing, ins_keys)]
        del_eff = del_keys[_sorted_member(existing, del_keys)]
        kept = existing[~_sorted_member(del_eff, existing)]
        merged = np.insert(kept, np.searchsorted(kept, ins_eff), ins_eff)
        cols = merged % n
        row_counts = (
            np.bincount(merged // n, minlength=self.num_nodes)
            if self.num_nodes
            else np.zeros(0, np.int64)
        )
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        graph = CSRGraph(indptr=indptr, indices=cols, name=self.name)
        if with_changes:
            return graph, ins_eff, del_eff
        return graph

    def to_scipy(self):
        """Return the adjacency matrix as ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.num_edges, dtype=np.float64)
        return csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.num_nodes, self.num_nodes),
        )

    def to_dense(self) -> np.ndarray:
        """Dense 0/1 adjacency matrix (small graphs only)."""
        dense = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        dense[rows, self.indices] = 1.0
        return dense

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        num_nodes: int,
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        name: str = "graph",
        symmetrize: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel (row, col) arrays.

        Duplicate entries are removed.  When ``symmetrize`` is true the
        mirror of every edge is added, making the adjacency symmetric.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        if rows.shape != cols.shape:
            raise GraphError("rows and cols must have the same length")
        if num_nodes < 0:
            raise GraphError("num_nodes must be non-negative")
        if len(rows) and (
            rows.min() < 0 or cols.min() < 0
            or rows.max() >= num_nodes or cols.max() >= num_nodes
        ):
            raise GraphError("edge endpoints out of range")
        if symmetrize and len(rows):
            rows, cols = (
                np.concatenate([rows, cols]),
                np.concatenate([cols, rows]),
            )
        if len(rows):
            # Deduplicate via a flat key sort; stable and allocation-light.
            keys = rows * num_nodes + cols
            keys = np.unique(keys)
            rows = keys // num_nodes
            cols = keys % num_nodes
        counts = np.bincount(rows, minlength=num_nodes) if num_nodes else np.zeros(0, np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr=indptr, indices=cols, name=name)

    @staticmethod
    def from_scipy(mat, *, name: str = "graph") -> "CSRGraph":
        """Build from any scipy sparse matrix (pattern only)."""
        csr = mat.tocsr()
        csr.sort_indices()
        return CSRGraph(
            indptr=np.asarray(csr.indptr, dtype=np.int64),
            indices=np.asarray(csr.indices, dtype=np.int64),
            name=name,
        )

    @staticmethod
    def empty(num_nodes: int, *, name: str = "empty") -> "CSRGraph":
        """A graph with ``num_nodes`` nodes and no edges."""
        return CSRGraph(
            indptr=np.zeros(num_nodes + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            name=name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"nnz={self.num_edges})"
        )
