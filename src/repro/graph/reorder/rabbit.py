"""Simplified Rabbit Order (community-clustering reordering).

Rabbit Order (Arai et al., IPDPS'16) is the heaviest of the paper's six
"lightweight" baselines: it performs incremental community aggregation
driven by modularity gain, then assigns contiguous ids within the
resulting community hierarchy.

This is a from-scratch, single-threaded reimplementation of the core
idea (DESIGN.md §4 records the substitution):

1. *Incremental aggregation* — scan edges from low-degree endpoints
   upward; merge the endpoint communities (union-find) whenever the
   merge has positive modularity gain
   ``ΔQ ∝ w_uv / (2m) - (vol_u * vol_v) / (2m)^2``.
2. *Ordering* — communities are laid out contiguously (largest first),
   preserving original id order inside each community.

That reproduces the behaviour Figure 12/13 needs: a preprocessing pass
noticeably more expensive than the degree-based schemes that produces
clearly block-clustered adjacency — yet still leaves outlying non-zeros
that islandization does not.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder.base import Reordering, register

__all__ = ["RabbitReordering"]


class _UnionFind:
    """Union-find with community volume (total degree) bookkeeping."""

    def __init__(self, degrees: np.ndarray) -> None:
        self.parent = np.arange(len(degrees), dtype=np.int64)
        self.volume = degrees.astype(np.float64).copy()

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = int(self.parent[root])
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, int(self.parent[x])
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.volume[ra] < self.volume[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.volume[ra] += self.volume[rb]
        return ra


@register
class RabbitReordering(Reordering):
    """Community-aggregation reordering (simplified Rabbit Order)."""

    name = "rabbit"

    def compute(self, graph: CSRGraph) -> np.ndarray:
        n = graph.num_nodes
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        degrees = graph.degrees.astype(np.float64)
        two_m = max(float(graph.num_edges), 1.0)
        uf = _UnionFind(degrees)

        # Visit nodes from low to high degree (rabbit's incremental
        # aggregation order) and try to merge each with its best
        # neighbour by modularity gain.
        for u in np.argsort(degrees, kind="stable"):
            u = int(u)
            best_gain = 0.0
            best_root = -1
            ru = uf.find(u)
            for v in graph.neighbors(u):
                rv = uf.find(int(v))
                if rv == ru:
                    continue
                gain = 1.0 / two_m - (uf.volume[ru] * uf.volume[rv]) / (two_m * two_m)
                if gain > best_gain:
                    best_gain = gain
                    best_root = rv
            if best_root >= 0:
                uf.union(ru, best_root)

        roots = np.fromiter((uf.find(i) for i in range(n)), dtype=np.int64, count=n)
        # Lay out communities contiguously, largest first; stable sort
        # preserves original order within each community.
        sizes = np.bincount(roots, minlength=n)
        order = np.lexsort((np.arange(n), roots, -sizes[roots]))
        perm = np.empty(n, dtype=np.int64)
        perm[order] = np.arange(n, dtype=np.int64)
        return perm
