"""Reordering framework.

A *reordering* is a permutation ``perm`` with ``perm[old_id] = new_id``
intended to improve the locality of the adjacency matrix.  The paper's
§4.5 compares I-GCN against six lightweight reordering algorithms
(rabbit, dbg, hubsort, hubcluster, dbg-hubsort, dbg-hubcluster) run as a
*preprocessing* step for AWB-GCN; this subpackage reimplements all six
from scratch.

Each algorithm is a subclass of :class:`Reordering`; the registry lets
the benchmarks iterate over them by name.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["Reordering", "ReorderResult", "register", "get_reordering", "reordering_names"]


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of running one reordering on one graph.

    ``seconds`` is the wall-clock preprocessing cost — the quantity the
    paper's Figure 12 charges against the reordering baselines.
    """

    name: str
    permutation: np.ndarray
    seconds: float

    def apply(self, graph: CSRGraph) -> CSRGraph:
        """Materialise the reordered graph."""
        return graph.permute(self.permutation)


class Reordering(ABC):
    """Base class for node-reordering algorithms."""

    #: Registry key; subclasses must override.
    name: str = "base"

    @abstractmethod
    def compute(self, graph: CSRGraph) -> np.ndarray:
        """Return ``perm`` with ``perm[old] = new``."""

    def run(self, graph: CSRGraph) -> ReorderResult:
        """Compute the permutation, timing it, and validate the result."""
        start = time.perf_counter()
        perm = self.compute(graph)
        elapsed = time.perf_counter() - start
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (graph.num_nodes,):
            raise GraphError(f"{self.name}: permutation has wrong length")
        seen = np.zeros(graph.num_nodes, dtype=bool)
        seen[perm] = True
        if not seen.all():
            raise GraphError(f"{self.name}: output is not a permutation")
        return ReorderResult(name=self.name, permutation=perm, seconds=elapsed)


_REGISTRY: dict[str, type[Reordering]] = {}


def register(cls: type[Reordering]) -> type[Reordering]:
    """Class decorator adding a reordering to the registry."""
    if cls.name in _REGISTRY:
        raise GraphError(f"duplicate reordering name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_reordering(name: str) -> Reordering:
    """Instantiate a registered reordering by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise GraphError(
            f"unknown reordering {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def reordering_names() -> list[str]:
    """All registered reordering names (paper order where possible)."""
    preferred = ["rabbit", "dbg", "hubsort", "hubcluster", "dbg-hubsort", "dbg-hubcluster"]
    names = [n for n in preferred if n in _REGISTRY]
    names.extend(sorted(set(_REGISTRY) - set(names)))
    return names


def identity_permutation(num_nodes: int) -> np.ndarray:
    """The do-nothing permutation."""
    return np.arange(num_nodes, dtype=np.int64)
