"""Reverse Cuthill-McKee (RCM) reordering — extension baseline.

RCM is the classic bandwidth-reduction ordering from sparse linear
algebra: BFS from a minimum-degree peripheral node, visiting neighbours
in ascending-degree order, then reverse the visit order.  It is not one
of the paper's six baselines, but it is the textbook point of reference
for "locality via reordering", so the clustering-quality benchmark
gains a stronger comparison point by including it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder.base import Reordering, register

__all__ = ["RCMReordering"]


@register
class RCMReordering(Reordering):
    """Reverse Cuthill-McKee bandwidth-reduction ordering."""

    name = "rcm"

    def compute(self, graph: CSRGraph) -> np.ndarray:
        n = graph.num_nodes
        degrees = graph.degrees
        visited = np.zeros(n, dtype=bool)
        order: list[int] = []
        # Process components from lowest-degree seeds (peripheral-ish).
        for seed in np.argsort(degrees, kind="stable"):
            seed = int(seed)
            if visited[seed]:
                continue
            visited[seed] = True
            queue = deque([seed])
            while queue:
                node = queue.popleft()
                order.append(node)
                neigh = graph.neighbors(node)
                for v in neigh[np.argsort(degrees[neigh], kind="stable")]:
                    v = int(v)
                    if not visited[v]:
                        visited[v] = True
                        queue.append(v)
        order.reverse()
        perm = np.empty(n, dtype=np.int64)
        perm[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
        return perm
