"""Lightweight graph reordering baselines (paper §4.5) and metrics."""

from repro.graph.reorder.base import (
    Reordering,
    ReorderResult,
    get_reordering,
    reordering_names,
)
from repro.graph.reorder.degree import (
    HubClusterReordering,
    HubSortReordering,
    SortReordering,
)
from repro.graph.reorder.dbg import (
    DBGHubClusterReordering,
    DBGHubSortReordering,
    DBGReordering,
)
from repro.graph.reorder.rabbit import RabbitReordering
from repro.graph.reorder.rcm import RCMReordering
from repro.graph.reorder.metrics import (
    LocalityReport,
    average_index_distance,
    bandwidth,
    locality_report,
    outlier_fraction,
    tile_coverage,
    working_set_score,
)

__all__ = [
    "Reordering",
    "ReorderResult",
    "get_reordering",
    "reordering_names",
    "SortReordering",
    "HubSortReordering",
    "HubClusterReordering",
    "DBGReordering",
    "DBGHubSortReordering",
    "DBGHubClusterReordering",
    "RabbitReordering",
    "RCMReordering",
    "LocalityReport",
    "locality_report",
    "average_index_distance",
    "bandwidth",
    "tile_coverage",
    "outlier_fraction",
    "working_set_score",
]
