"""Degree-driven lightweight reorderings: sort, hubsort, hubcluster.

These follow the taxonomy of Balaji & Lucia (IISWC'18) and Faldu et al.
(IISWC'19), the papers behind the six baselines in I-GCN §4.5:

* **sort** — full descending-degree sort (included for completeness;
  not one of the paper's six but useful as a reference point).
* **hubsort** — only *hot* nodes (degree above average) are sorted by
  degree and packed first; cold nodes keep their original relative
  order.  Preserves most of the original layout's locality while giving
  hubs dense ids.
* **hubcluster** — hot nodes are packed first but *not* sorted among
  themselves; the cheapest hub-isolating reordering.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder.base import Reordering, register

__all__ = ["SortReordering", "HubSortReordering", "HubClusterReordering", "hot_mask"]


def hot_mask(graph: CSRGraph) -> np.ndarray:
    """Boolean mask of *hot* nodes: degree strictly above the mean.

    The average-degree threshold is the standard hot/cold split used by
    the hub-based lightweight reorderings.
    """
    degrees = graph.degrees
    if len(degrees) == 0:
        return np.zeros(0, dtype=bool)
    return degrees > degrees.mean()


def _pack(first: np.ndarray, second: np.ndarray, num_nodes: int) -> np.ndarray:
    """Build perm[old]=new placing ``first`` then ``second``."""
    order = np.concatenate([first, second])
    perm = np.empty(num_nodes, dtype=np.int64)
    perm[order] = np.arange(num_nodes, dtype=np.int64)
    return perm


@register
class SortReordering(Reordering):
    """Full descending-degree sort (stable)."""

    name = "sort"

    def compute(self, graph: CSRGraph) -> np.ndarray:
        order = np.argsort(-graph.degrees, kind="stable")
        perm = np.empty(graph.num_nodes, dtype=np.int64)
        perm[order] = np.arange(graph.num_nodes, dtype=np.int64)
        return perm


@register
class HubSortReordering(Reordering):
    """Sort hot nodes by degree; preserve cold node order."""

    name = "hubsort"

    def compute(self, graph: CSRGraph) -> np.ndarray:
        hot = hot_mask(graph)
        hot_ids = np.flatnonzero(hot)
        cold_ids = np.flatnonzero(~hot)
        hot_sorted = hot_ids[np.argsort(-graph.degrees[hot_ids], kind="stable")]
        return _pack(hot_sorted, cold_ids, graph.num_nodes)


@register
class HubClusterReordering(Reordering):
    """Pack hot nodes first without sorting them."""

    name = "hubcluster"

    def compute(self, graph: CSRGraph) -> np.ndarray:
        hot = hot_mask(graph)
        return _pack(
            np.flatnonzero(hot), np.flatnonzero(~hot), graph.num_nodes
        )
