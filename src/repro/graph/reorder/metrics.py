"""Locality / clustering-quality metrics for adjacency layouts.

Figure 13 of the paper compares how well different orderings cluster
the non-zeros.  Visual spy plots are subjective, so this module defines
quantitative proxies, all computed on the (possibly permuted) CSR
pattern:

* :func:`average_index_distance` — mean |u - v| over non-zeros,
  normalised by n (0 = perfectly diagonal).
* :func:`bandwidth` — max |u - v| normalised by n.
* :func:`tile_coverage` — fraction of nnz falling in *dense* tiles of a
  fixed block size (density above a threshold); high coverage means the
  nnz are clustered into compact blocks an accelerator can exploit.
* :func:`outlier_fraction` — 1 - tile_coverage; the paper's "outlying
  non-zeros" that need special handling.
* :func:`working_set_score` — average number of distinct feature-row
  blocks a row of A touches; a direct proxy for pull-dataflow off-chip
  traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "LocalityReport",
    "average_index_distance",
    "bandwidth",
    "tile_coverage",
    "outlier_fraction",
    "working_set_score",
    "locality_report",
]


def _edge_arrays(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    rows = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    return rows, graph.indices


def average_index_distance(graph: CSRGraph) -> float:
    """Mean |row - col| over non-zeros, normalised by num_nodes."""
    if graph.num_edges == 0 or graph.num_nodes == 0:
        return 0.0
    rows, cols = _edge_arrays(graph)
    return float(np.abs(rows - cols).mean() / graph.num_nodes)


def bandwidth(graph: CSRGraph) -> float:
    """Max |row - col| over non-zeros, normalised by num_nodes."""
    if graph.num_edges == 0 or graph.num_nodes == 0:
        return 0.0
    rows, cols = _edge_arrays(graph)
    return float(np.abs(rows - cols).max() / graph.num_nodes)


def tile_coverage(
    graph: CSRGraph, *, tile: int = 64, density_threshold: float = 0.05
) -> float:
    """Fraction of nnz inside tiles whose fill exceeds the threshold.

    The adjacency is cut into ``tile``×``tile`` blocks; a block is
    *dense* when its fill fraction is at least ``density_threshold``.
    Clustered layouts concentrate nnz into few dense blocks.
    """
    if graph.num_edges == 0:
        return 1.0
    rows, cols = _edge_arrays(graph)
    tr = rows // tile
    tc = cols // tile
    num_tiles_side = (graph.num_nodes + tile - 1) // tile
    keys = tr * num_tiles_side + tc
    uniq, counts = np.unique(keys, return_counts=True)
    dense = counts >= density_threshold * tile * tile
    covered = counts[dense].sum()
    return float(covered / graph.num_edges)


def outlier_fraction(
    graph: CSRGraph, *, tile: int = 64, density_threshold: float = 0.05
) -> float:
    """Fraction of nnz outside dense tiles (Fig 13's 'outlying' nnz)."""
    return 1.0 - tile_coverage(graph, tile=tile, density_threshold=density_threshold)


def working_set_score(graph: CSRGraph, *, block: int = 64) -> float:
    """Average distinct feature-row blocks referenced per node.

    In a pull dataflow, processing row ``u`` touches the feature rows of
    its neighbours; if those ids span many ``block``-sized regions the
    accesses are scattered.  Lower is better.
    """
    if graph.num_nodes == 0:
        return 0.0
    total_blocks = 0
    for u in range(graph.num_nodes):
        neigh = graph.neighbors(u)
        if len(neigh) == 0:
            continue
        total_blocks += len(np.unique(neigh // block))
    return total_blocks / max(graph.num_nodes, 1)


@dataclass(frozen=True)
class LocalityReport:
    """All locality metrics for one layout."""

    name: str
    avg_distance: float
    bandwidth: float
    tile_coverage: float
    outlier_fraction: float
    working_set: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "layout": self.name,
            "avg_dist": round(self.avg_distance, 4),
            "bandwidth": round(self.bandwidth, 4),
            "tile_cov": round(self.tile_coverage, 4),
            "outliers": round(self.outlier_fraction, 4),
            "work_set": round(self.working_set, 2),
        }


def locality_report(
    graph: CSRGraph, *, name: str | None = None, tile: int = 64
) -> LocalityReport:
    """Compute every metric for one (already permuted) graph."""
    return LocalityReport(
        name=name or graph.name,
        avg_distance=average_index_distance(graph),
        bandwidth=bandwidth(graph),
        tile_coverage=tile_coverage(graph, tile=tile),
        outlier_fraction=outlier_fraction(graph, tile=tile),
        working_set=working_set_score(graph, block=tile),
    )
