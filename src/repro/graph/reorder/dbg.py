"""Degree-Based Grouping (DBG) and its hub hybrids.

DBG (Faldu et al., IISWC'19) partitions nodes into a small number of
coarse degree groups with power-of-two boundaries around the average
degree, packs the groups from hottest to coldest, and preserves the
original node order *within* each group — retaining the original
layout's intra-group locality while segregating hubs.

The hybrids used by I-GCN §4.5:

* **dbg-hubsort** — DBG grouping, but nodes inside the *hot* groups are
  additionally sorted by degree.
* **dbg-hubcluster** — a coarse two-group DBG (hot/cold at the average
  degree boundary) preserving order inside both groups; equivalent to
  hubcluster but using DBG's group machinery (kept separate so the
  benchmark reports all six names the paper lists).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder.base import Reordering, register

__all__ = ["DBGReordering", "DBGHubSortReordering", "DBGHubClusterReordering"]


def dbg_group_ids(degrees: np.ndarray, *, num_groups: int = 8) -> np.ndarray:
    """Assign each node a group id: 0 = hottest, ``num_groups - 1`` = coldest.

    Boundaries are ``avg * 2^j`` going down from well above the average,
    the power-of-two scheme from the DBG paper.
    """
    n = len(degrees)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    avg = max(degrees.mean(), 1.0)
    # Thresholds: avg*2^(k-2), ..., avg*2, avg, avg/2, ... (descending).
    exponents = np.arange(num_groups - 2, -2, -1, dtype=np.float64)
    thresholds = avg * np.power(2.0, exponents[: num_groups - 1])
    groups = np.full(n, num_groups - 1, dtype=np.int64)
    for gid, thr in enumerate(thresholds):
        mask = (groups == num_groups - 1) & (degrees >= thr)
        groups[mask] = gid
    return groups


def _order_to_perm(order: np.ndarray) -> np.ndarray:
    perm = np.empty(len(order), dtype=np.int64)
    perm[order] = np.arange(len(order), dtype=np.int64)
    return perm


@register
class DBGReordering(Reordering):
    """Coarse degree groups, original order preserved within groups."""

    name = "dbg"
    num_groups = 8

    def compute(self, graph: CSRGraph) -> np.ndarray:
        groups = dbg_group_ids(graph.degrees, num_groups=self.num_groups)
        order = np.argsort(groups, kind="stable")  # stable keeps within-group order
        return _order_to_perm(order)


@register
class DBGHubSortReordering(Reordering):
    """DBG groups with degree-sorted *hot* groups (top half of groups)."""

    name = "dbg-hubsort"
    num_groups = 8

    def compute(self, graph: CSRGraph) -> np.ndarray:
        degrees = graph.degrees
        groups = dbg_group_ids(degrees, num_groups=self.num_groups)
        hot_cutoff = self.num_groups // 2
        chunks: list[np.ndarray] = []
        for gid in range(self.num_groups):
            members = np.flatnonzero(groups == gid)
            if gid < hot_cutoff and len(members):
                members = members[np.argsort(-degrees[members], kind="stable")]
            chunks.append(members)
        order = np.concatenate(chunks) if chunks else np.zeros(0, np.int64)
        return _order_to_perm(order)


@register
class DBGHubClusterReordering(Reordering):
    """Two-group DBG at the average-degree boundary (order-preserving)."""

    name = "dbg-hubcluster"

    def compute(self, graph: CSRGraph) -> np.ndarray:
        degrees = graph.degrees
        groups = dbg_group_ids(degrees, num_groups=2)
        order = np.argsort(groups, kind="stable")
        return _order_to_perm(order)
