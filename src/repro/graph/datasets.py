"""Dataset registry with the paper's five evaluation graphs.

The paper evaluates on Cora (CR), Citeseer (CS), Pubmed (PM), NELL (NE)
and Reddit (RD).  Those datasets are not shippable offline, so each
entry here pairs the *published* statistics (node/edge/feature/class
counts, feature density) with a :class:`CommunityProfile` tuned so the
generated surrogate reproduces the structural character that matters to
I-GCN: degree skew, sparsity, and strength of the hub-and-island
community structure (strong for the citation graphs and NELL, weak for
Reddit — the paper's §4.6.2 explicitly calls out Reddit's "less
significant component structures").

Use :func:`load_dataset`::

    ds = load_dataset("cora")
    ds.graph          # CSRGraph surrogate
    ds.num_features   # 1433 (published)

The ``scale`` parameter shrinks node count (and, for Reddit, degree)
while preserving intensive properties; see DESIGN.md §4.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import IO

import numpy as np

from repro.errors import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.generators import CommunityProfile, hub_island_graph
from repro.serialize import read_npz, write_npz

__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASETS",
    "canonical_name",
    "dataset_names",
    "load_dataset",
    "figure2_graph",
    "figure7_island_graph",
]

#: The paper's two-letter dataset codes, accepted everywhere a name is.
DATASET_ALIASES = {
    "cr": "cora", "cs": "citeseer", "pm": "pubmed", "ne": "nell", "rd": "reddit",
}


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics + surrogate-generator profile for one dataset."""

    name: str
    full_nodes: int
    full_nnz: int  # directed adjacency entries, no self-loops
    num_features: int
    num_classes: int
    feature_density: float
    profile: CommunityProfile
    default_scale: float = 1.0
    degree_follows_scale: bool = False  # Reddit: shrink degree with scale too
    description: str = ""

    @property
    def full_avg_degree(self) -> float:
        """Directed entries per node in the published graph."""
        return self.full_nnz / self.full_nodes


# Profiles are calibrated (see tests/test_datasets.py) so that surrogate
# average degree is within ~25 % of the published value and islandization
# pruning lands in the paper's per-dataset band (Fig 10).
DATASETS: dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="cora",
        full_nodes=2708,
        full_nnz=10556,
        num_features=1433,
        num_classes=7,
        feature_density=0.0127,
        profile=CommunityProfile(
            hub_fraction=0.035,
            island_size_mean=5.0,
            island_size_min=3,
            island_size_max=16,
            island_density=0.88,
            hub_attach_prob=0.85,
            hubs_per_island=2,
            background_fraction=0.03,
            hub_popularity_exponent=0.55,
            interhub_avg_degree=1.5,
        ),
        description="citation network; strong community structure",
    ),
    "citeseer": DatasetSpec(
        name="citeseer",
        full_nodes=3327,
        full_nnz=9104,
        num_features=3703,
        num_classes=6,
        feature_density=0.0085,
        profile=CommunityProfile(
            hub_fraction=0.03,
            island_size_mean=5.0,
            island_size_min=3,
            island_size_max=12,
            island_density=0.90,
            hub_attach_prob=0.75,
            hubs_per_island=2,
            background_fraction=0.02,
            hub_popularity_exponent=0.55,
            interhub_avg_degree=1.2,
        ),
        description="citation network; sparser than Cora, strong communities",
    ),
    "pubmed": DatasetSpec(
        name="pubmed",
        full_nodes=19717,
        full_nnz=88648,
        num_features=500,
        num_classes=3,
        feature_density=0.10,
        profile=CommunityProfile(
            hub_fraction=0.02,
            island_size_mean=5.0,
            island_size_min=3,
            island_size_max=16,
            island_density=0.85,
            hub_attach_prob=0.75,
            hubs_per_island=2,
            background_fraction=0.10,
            background_hub_bias=0.95,
            hub_popularity_exponent=0.5,
            interhub_avg_degree=2.0,
        ),
        description="citation network; larger, moderate communities",
    ),
    "nell": DatasetSpec(
        name="nell",
        full_nodes=65755,
        full_nnz=266144,
        num_features=5414,
        num_classes=210,
        feature_density=0.00024,
        profile=CommunityProfile(
            hub_fraction=0.02,
            island_size_mean=6.5,
            island_size_min=3,
            island_size_max=18,
            island_density=0.95,
            hub_attach_prob=0.85,
            hubs_per_island=1,
            background_fraction=0.01,
            hub_popularity_exponent=0.55,
            interhub_avg_degree=1.2,
        ),
        default_scale=0.25,
        description=(
            "knowledge graph; extremely sparse with the most pronounced "
            "component structure (paper: islandization helps most here)"
        ),
    ),
    "reddit": DatasetSpec(
        name="reddit",
        full_nodes=232965,
        full_nnz=114615892,
        num_features=602,
        num_classes=41,
        feature_density=1.0,
        profile=CommunityProfile(
            hub_fraction=0.05,
            island_size_mean=10.0,
            island_size_min=4,
            island_size_max=32,
            island_density=0.70,
            hub_attach_prob=0.90,
            hubs_per_island=4,
            background_fraction=0.30,
            background_hub_bias=0.995,
            hub_popularity_exponent=0.5,
            interhub_avg_degree=8.0,
        ),
        default_scale=0.03,
        degree_follows_scale=True,
        description=(
            "social network; huge and dense with weak community structure "
            "(paper: smallest islandization benefit)"
        ),
    ),
}


@dataclass
class Dataset:
    """A loaded (surrogate) dataset.

    ``features``/``labels`` are populated only when requested via
    ``load_dataset(..., with_features=True)``; performance-mode
    simulations need only the graph and the feature *statistics*.
    """

    spec: DatasetSpec
    graph: CSRGraph
    scale: float
    community: np.ndarray = field(repr=False)
    features: object | None = field(default=None, repr=False)  # scipy csr
    labels: np.ndarray | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        """Dataset name (e.g. ``"cora"``)."""
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        """Nodes in the loaded (possibly scaled) graph."""
        return self.graph.num_nodes

    @property
    def num_features(self) -> int:
        """Published input feature width (not scaled)."""
        return self.spec.num_features

    @property
    def num_classes(self) -> int:
        """Published class count."""
        return self.spec.num_classes

    @property
    def feature_density(self) -> float:
        """Published nnz fraction of the input feature matrix."""
        return self.spec.feature_density

    @property
    def feature_nnz(self) -> int:
        """nnz of the (estimated or materialised) feature matrix."""
        if self.features is not None:
            return int(self.features.nnz)
        return int(round(self.num_nodes * self.num_features * self.feature_density))

    def materialize_features(self, *, seed: int = 0) -> None:
        """Generate the sparse feature matrix and structure-correlated labels.

        Features are Bernoulli(density) sparse rows (matching the bag-of-
        words character of the citation datasets); labels follow island
        membership with a little noise, so they correlate with structure
        the way real labels do.
        """
        from scipy.sparse import random as sparse_random

        rng = np.random.default_rng(seed)
        self.features = sparse_random(
            self.num_nodes,
            self.num_features,
            density=min(1.0, self.feature_density),
            format="csr",
            dtype=np.float64,
            random_state=np.random.RandomState(seed),
            data_rvs=lambda size: np.ones(size),
        )
        labels = np.where(
            self.community >= 0,
            self.community % self.num_classes,
            rng.integers(0, self.num_classes, size=self.num_nodes),
        )
        noise = rng.random(self.num_nodes) < 0.05
        labels[noise] = rng.integers(0, self.num_classes, size=int(noise.sum()))
        self.labels = labels.astype(np.int64)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the dataset (graph, community, optional features).

        The full :class:`DatasetSpec` — community profile included — is
        embedded in the metadata, so a restored dataset does not depend
        on the loading process's registry contents.  All numpy payloads
        (graph CSR, community labels, feature CSR) round-trip
        byte-identically.
        """
        arrays: dict[str, np.ndarray] = {
            "graph_indptr": self.graph.indptr,
            "graph_indices": self.graph.indices,
            "community": self.community,
        }
        meta = {
            "format": 1,
            "graph_name": self.graph.name,
            "scale": self.scale,
            "spec": dataclasses.asdict(self.spec),
        }
        if self.labels is not None:
            arrays["labels"] = self.labels
        if self.features is not None:
            feats = self.features.tocsr()
            arrays["feat_data"] = feats.data
            arrays["feat_indices"] = feats.indices
            arrays["feat_indptr"] = feats.indptr
            meta["feat_shape"] = [int(feats.shape[0]), int(feats.shape[1])]
        write_npz(file, arrays, meta)

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "Dataset":
        """Restore a dataset written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        spec_fields = dict(meta["spec"])
        profile = CommunityProfile(**spec_fields.pop("profile"))
        spec = DatasetSpec(profile=profile, **spec_fields)
        graph = CSRGraph(
            indptr=arrays["graph_indptr"],
            indices=arrays["graph_indices"],
            name=str(meta["graph_name"]),
        )
        features = None
        if "feat_shape" in meta:
            from scipy.sparse import csr_matrix

            features = csr_matrix(
                (arrays["feat_data"], arrays["feat_indices"], arrays["feat_indptr"]),
                shape=tuple(meta["feat_shape"]),
            )
        return cls(
            spec=spec,
            graph=graph,
            scale=float(meta["scale"]),
            community=arrays["community"],
            features=features,
            labels=arrays.get("labels"),
        )


def canonical_name(name: str) -> str:
    """Resolve a dataset name or paper code to its registry key."""
    key = name.strip().lower()
    key = DATASET_ALIASES.get(key, key)
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    return key


def dataset_names() -> list[str]:
    """Names of the registered datasets, in the paper's order."""
    return list(DATASETS)


def load_dataset(
    name: str,
    *,
    scale: float | None = None,
    seed: int = 7,
    with_features: bool = False,
) -> Dataset:
    """Load (generate) one of the paper's datasets.

    Parameters
    ----------
    name:
        One of ``cora``, ``citeseer``, ``pubmed``, ``nell``, ``reddit``
        (case-insensitive; the paper's two-letter codes also work).
    scale:
        Node-count multiplier; ``None`` uses the per-dataset default.
    seed:
        Generator seed (graphs are deterministic per (name, scale, seed)).
    with_features:
        Also materialise the sparse feature matrix and labels.
    """
    key = canonical_name(name)
    spec = DATASETS[key]
    if scale is None:
        scale = spec.default_scale
    if not 0.0 < scale <= 1.0:
        raise DatasetError("scale must be in (0, 1]")
    num_nodes = max(64, int(round(spec.full_nodes * scale)))
    graph, community = hub_island_graph(
        num_nodes, spec.profile, seed=seed, name=key
    )
    ds = Dataset(spec=spec, graph=graph, scale=scale, community=community)
    if with_features:
        ds.materialize_features(seed=seed)
    return ds


def figure2_graph() -> CSRGraph:
    """The 6-node example graph of the paper's Figure 2.

    Edges (1-indexed in the figure): 1-2, 1-6, 2-6, 2-4, 3-4, 3-5, 4-5,
    5-6.  Returned 0-indexed.
    """
    return (
        GraphBuilder(6, name="figure2")
        .add_edges([(0, 1), (0, 5), (1, 5), (1, 3), (2, 3), (2, 4), (3, 4), (4, 5)])
        .build()
    )


def figure7_island_graph() -> tuple[CSRGraph, list[int], list[int]]:
    """The motivational island of the paper's Figure 7.

    Seven island nodes a..g (ids 0..6) plus one hub H (id 7).  Nodes
    d, e, f, g are the shared neighbours of b and c, which is the
    redundancy-removal showcase.  Returns (graph, island_node_ids,
    hub_ids).
    """
    a, b, c, d, e, f, g, hub = range(8)
    graph = (
        GraphBuilder(8, name="figure7")
        .add_edges(
            [
                (a, b), (a, c),
                (b, d), (b, e), (b, f), (b, g),
                (c, d), (c, e), (c, f), (c, g),
                (hub, a), (hub, b), (hub, c),
            ]
        )
        .build()
    )
    return graph, [a, b, c, d, e, f, g], [hub]
