"""Incremental graph construction.

:class:`GraphBuilder` accumulates edges (with optional symmetrisation
and deduplication handled at build time) and produces a
:class:`~repro.graph.csr.CSRGraph`.  It is the convenient front door for
examples and tests; the generators use vectorised paths directly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and builds an undirected :class:`CSRGraph`.

    Example
    -------
    >>> b = GraphBuilder(num_nodes=4)
    >>> b.add_edge(0, 1).add_edge(1, 2)
    GraphBuilder(nodes=4, staged_edges=2)
    >>> g = b.build()
    >>> g.num_edges  # symmetrised
    4
    """

    def __init__(self, num_nodes: int, *, name: str = "graph") -> None:
        if num_nodes < 0:
            raise GraphError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._name = name
        self._rows: list[int] = []
        self._cols: list[int] = []

    @property
    def num_nodes(self) -> int:
        """Declared node count."""
        return self._num_nodes

    @property
    def num_staged_edges(self) -> int:
        """Edges added so far (before dedup/symmetrisation)."""
        return len(self._rows)

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Stage a single undirected edge; returns ``self`` for chaining."""
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            raise GraphError(f"edge ({u}, {v}) out of range")
        self._rows.append(u)
        self._cols.append(v)
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Stage many edges at once."""
        for u, v in edges:
            self.add_edge(int(u), int(v))
        return self

    def add_clique(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Stage all pairwise edges among ``nodes`` (no self-loops)."""
        node_list = [int(n) for n in nodes]
        for i, u in enumerate(node_list):
            for v in node_list[i + 1 :]:
                self.add_edge(u, v)
        return self

    def add_star(self, center: int, leaves: Iterable[int]) -> "GraphBuilder":
        """Stage edges from ``center`` to every node in ``leaves``."""
        for leaf in leaves:
            self.add_edge(center, int(leaf))
        return self

    def add_path(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Stage a path through ``nodes`` in order."""
        node_list = [int(n) for n in nodes]
        for u, v in zip(node_list, node_list[1:]):
            self.add_edge(u, v)
        return self

    def add_cycle(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Stage a cycle through ``nodes`` in order."""
        node_list = [int(n) for n in nodes]
        if len(node_list) < 3:
            raise GraphError("a cycle needs at least 3 nodes")
        self.add_path(node_list)
        self.add_edge(node_list[-1], node_list[0])
        return self

    def build(self, *, symmetrize: bool = True) -> CSRGraph:
        """Materialise the staged edges into a :class:`CSRGraph`."""
        return CSRGraph.from_edges(
            self._num_nodes,
            np.asarray(self._rows, dtype=np.int64),
            np.asarray(self._cols, dtype=np.int64),
            name=self._name,
            symmetrize=symmetrize,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphBuilder(nodes={self._num_nodes}, "
            f"staged_edges={len(self._rows)})"
        )
