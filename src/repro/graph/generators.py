"""Synthetic graph generators.

The reproduction has no network access, so the five evaluation datasets
(Cora, Citeseer, Pubmed, NELL, Reddit) are *generated* with the
published node/edge/feature statistics and — critically for I-GCN — a
controllable **hub-and-island** community structure:

* a small set of *hubs* with skewed (Zipf-like) popularity,
* many small, internally dense *islands* whose members attach to a few
  hubs each (this is exactly the structure the Island Locator mines),
* optional uniform *background* edges that blur the community structure
  (used to make the Reddit surrogate "less componenty", matching the
  paper's observation that Reddit benefits least from islandization).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "CommunityProfile",
    "hub_island_graph",
    "erdos_renyi",
    "barabasi_albert",
    "stochastic_block",
]


@dataclass(frozen=True)
class CommunityProfile:
    """Tunable knobs of the hub-and-island generator.

    Attributes
    ----------
    hub_fraction:
        Fraction of nodes designated as hubs.
    island_size_mean:
        Mean island size (sizes are ``min + geometric`` with this mean).
    island_size_min:
        Smallest island the partitioner aims for (trailing remainder may
        be smaller).  Real citation graphs cluster into small cliques of
        co-cited papers, so the default is 3.
    island_size_max:
        Hard cap on island size.
    island_density:
        Probability of each internal island edge (1.0 = clique).
    hub_attach_prob:
        Probability that an island member links to each of the island's
        chosen hubs.
    hubs_per_island:
        How many hubs an island attaches to (at most).
    background_fraction:
        Fraction of the final edge budget spent on random cross-
        community edges; higher values weaken community structure.
    background_hub_bias:
        Probability that a background edge lands on a hub endpoint.
        Real scale-free graphs route cross-community links through
        popular nodes; near-zero bias instead produces a uniform random
        overlay that merges communities into one giant blob.
    interhub_avg_degree:
        Average number of hub-hub edges per hub.
    """

    hub_fraction: float = 0.03
    island_size_mean: float = 8.0
    island_size_min: int = 3
    island_size_max: int = 32
    island_density: float = 0.8
    hub_attach_prob: float = 0.7
    hubs_per_island: int = 2
    background_fraction: float = 0.05
    background_hub_bias: float = 0.8
    hub_popularity_exponent: float = 0.7
    interhub_avg_degree: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.hub_fraction < 1.0:
            raise GraphError("hub_fraction must be in (0, 1)")
        if self.island_size_mean < 1.0:
            raise GraphError("island_size_mean must be >= 1")
        if not 0.0 <= self.island_density <= 1.0:
            raise GraphError("island_density must be in [0, 1]")
        if not 0.0 <= self.background_fraction < 1.0:
            raise GraphError("background_fraction must be in [0, 1)")


def hub_island_graph(
    num_nodes: int,
    profile: CommunityProfile,
    *,
    seed: int = 0,
    name: str = "hub-island",
) -> tuple[CSRGraph, np.ndarray]:
    """Generate a hub-and-island graph.

    Returns
    -------
    (graph, community_labels):
        ``community_labels[u]`` is the island id of node ``u`` or ``-1``
        for hubs; used to derive class labels correlated with structure.
    """
    if num_nodes < 4:
        raise GraphError("hub_island_graph needs at least 4 nodes")
    rng = np.random.default_rng(seed)

    num_hubs = max(1, int(round(num_nodes * profile.hub_fraction)))
    hubs = np.arange(num_hubs, dtype=np.int64)
    rest = np.arange(num_hubs, num_nodes, dtype=np.int64)
    rng.shuffle(rest)

    # Partition the non-hub nodes into islands: size = min + geometric
    # tail, so the mean is island_size_mean but no island is below
    # island_size_min (except a possibly smaller trailing remainder).
    sizes: list[int] = []
    remaining = len(rest)
    base = min(profile.island_size_min, profile.island_size_max)
    tail_mean = max(profile.island_size_mean - base + 1.0, 1.0001)
    p = min(0.999, 1.0 / tail_mean)
    while remaining > 0:
        size = base + int(rng.geometric(p)) - 1
        size = int(min(size, profile.island_size_max, remaining))
        sizes.append(max(size, 1))
        remaining -= sizes[-1]
    islands: list[np.ndarray] = []
    offset = 0
    for size in sizes:
        islands.append(rest[offset : offset + size])
        offset += size

    community = -np.ones(num_nodes, dtype=np.int64)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []

    # Power-law hub popularity so the degree distribution is skewed;
    # the exponent trades skew against the minimum hub degree (too much
    # skew leaves "hubs" that never rise above member degrees, which
    # real hub-mediated graphs do not exhibit).
    ranks = np.arange(1, num_hubs + 1, dtype=np.float64)
    hub_weights = np.power(ranks, -profile.hub_popularity_exponent)
    hub_weights /= hub_weights.sum()

    for island_id, members in enumerate(islands):
        community[members] = island_id
        m = len(members)
        if m >= 2:
            iu, iv = np.triu_indices(m, k=1)
            keep = rng.random(len(iu)) < profile.island_density
            rows.append(members[iu[keep]])
            cols.append(members[iv[keep]])
        # Attach the island to a few hubs.
        k = min(profile.hubs_per_island, num_hubs)
        chosen = rng.choice(hubs, size=k, replace=False, p=hub_weights)
        for hub in chosen:
            attach = members[rng.random(m) < profile.hub_attach_prob]
            if len(attach) == 0 and m > 0:
                attach = members[:1]  # keep every island reachable
            rows.append(np.full(len(attach), hub, dtype=np.int64))
            cols.append(attach)

    # Hub-hub edges.
    n_interhub = int(round(num_hubs * profile.interhub_avg_degree / 2.0))
    if num_hubs >= 2 and n_interhub > 0:
        hu = rng.choice(hubs, size=n_interhub, p=hub_weights)
        hv = rng.choice(hubs, size=n_interhub, p=hub_weights)
        keep = hu != hv
        rows.append(hu[keep])
        cols.append(hv[keep])

    # Background noise edges (weaken community structure).  One endpoint
    # is uniform; the other lands on a hub with background_hub_bias so
    # the overlay mimics scale-free cross-community linking instead of
    # welding all islands into one giant non-hub component.
    core_edges = int(sum(len(r) for r in rows))
    if profile.background_fraction > 0.0 and core_edges > 0:
        n_bg = int(
            core_edges
            * profile.background_fraction
            / (1.0 - profile.background_fraction)
        )
        bu = rng.integers(0, num_nodes, size=n_bg).astype(np.int64)
        to_hub = rng.random(n_bg) < profile.background_hub_bias
        bv = rng.integers(0, num_nodes, size=n_bg).astype(np.int64)
        if to_hub.any():
            bv[to_hub] = rng.choice(hubs, size=int(to_hub.sum()), p=hub_weights)
        keep = bu != bv
        rows.append(bu[keep])
        cols.append(bv[keep])

    all_rows = np.concatenate(rows) if rows else np.zeros(0, np.int64)
    all_cols = np.concatenate(cols) if cols else np.zeros(0, np.int64)
    graph = CSRGraph.from_edges(num_nodes, all_rows, all_cols, name=name)
    return graph, community


def erdos_renyi(
    num_nodes: int,
    avg_degree: float,
    *,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """G(n, m)-style uniform random graph with the given average degree."""
    if num_nodes < 1:
        raise GraphError("num_nodes must be >= 1")
    if avg_degree < 0:
        raise GraphError("avg_degree must be >= 0")
    rng = np.random.default_rng(seed)
    n_edges = int(round(num_nodes * avg_degree / 2.0))
    u = rng.integers(0, num_nodes, size=n_edges)
    v = rng.integers(0, num_nodes, size=n_edges)
    keep = u != v
    return CSRGraph.from_edges(num_nodes, u[keep], v[keep], name=name)


def barabasi_albert(
    num_nodes: int,
    edges_per_node: int,
    *,
    seed: int = 0,
    name: str = "barabasi-albert",
) -> CSRGraph:
    """Preferential-attachment graph (power-law degree distribution).

    Straightforward BA process: each arriving node attaches to
    ``edges_per_node`` targets sampled proportionally to degree, using
    the classic repeated-endpoints trick for O(1) sampling.
    """
    if num_nodes < 2:
        raise GraphError("num_nodes must be >= 2")
    if edges_per_node < 1:
        raise GraphError("edges_per_node must be >= 1")
    m = min(edges_per_node, num_nodes - 1)
    rng = np.random.default_rng(seed)
    # Seed clique of m+1 nodes.
    endpoints: list[int] = []
    rows: list[int] = []
    cols: list[int] = []
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            rows.append(i)
            cols.append(j)
            endpoints.extend((i, j))
    for node in range(m + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < m:
            pick = endpoints[rng.integers(0, len(endpoints))]
            targets.add(int(pick))
        for t in targets:
            rows.append(node)
            cols.append(t)
            endpoints.extend((node, t))
    return CSRGraph.from_edges(
        num_nodes,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        name=name,
    )


def stochastic_block(
    block_sizes: list[int],
    p_in: float,
    p_out: float,
    *,
    seed: int = 0,
    name: str = "sbm",
) -> tuple[CSRGraph, np.ndarray]:
    """Stochastic block model; returns (graph, block labels).

    Used by tests as a second, structurally different community graph.
    Dense within-block sampling is quadratic per block, so keep blocks
    modest (tests use tens of nodes per block).
    """
    if not block_sizes:
        raise GraphError("block_sizes must be non-empty")
    if not (0 <= p_in <= 1 and 0 <= p_out <= 1):
        raise GraphError("probabilities must be in [0, 1]")
    rng = np.random.default_rng(seed)
    num_nodes = int(sum(block_sizes))
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes).astype(np.int64)
    iu, iv = np.triu_indices(num_nodes, k=1)
    same = labels[iu] == labels[iv]
    prob = np.where(same, p_in, p_out)
    keep = rng.random(len(iu)) < prob
    graph = CSRGraph.from_edges(num_nodes, iu[keep], iv[keep], name=name)
    return graph, labels
