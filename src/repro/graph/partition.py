"""Degree-aware graph partitioning for out-of-core islandization.

The partitioned Island Locator (``repro.core.islandizer_partitioned``)
splits a CSR graph into ``P`` shards that worker processes islandize
independently over memory-mapped files.  The split must respect the
locator's semantics: an island's members may only reach the rest of the
graph through hubs, so a shard boundary is only safe where every
crossing edge is incident to a node the merged result classifies as a
hub.  Both strategies here therefore produce a **vertex separator** —
a set of *boundary nodes* promoted to hubs up front — and shards that
are unions of whole residual connected components, so no member-member
edge ever crosses a shard.

``"separator"`` (default) grows the separator with the locator's own
decaying degree-threshold schedule, but only inside components still
too large to fit a shard's edge budget: high-degree nodes are exactly
the nodes Algorithm 1 would classify as hubs in its early rounds, so
promoting them costs little islandization quality, while small
components — where late-round islands live — are left intact.

``"range"`` slices contiguous node ranges balanced by edge count and
promotes both endpoints of every cross-range edge.  It is the naive
interval-shard baseline (HyGCN-style): cheap to compute, oblivious to
degree structure, and the quality reference the separator strategy is
measured against.

``partitions == 1`` always yields the trivial partition — one shard
that *is* the whole graph, no boundary — which is what makes the
partitioned locator's single-shard path exactly equal to the
monolithic one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import IO

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.serialize import read_npz, read_npz_mmap, write_npz

__all__ = [
    "PartitionError",
    "PartitionStats",
    "GraphShard",
    "GraphPartition",
    "partition_graph",
    "route_edits",
    "separator_membership",
    "ROUTE_BOUNDARY",
    "ROUTE_INTERIOR",
    "ROUTE_CROSS",
]

#: Strategies accepted by :func:`partition_graph`.
PARTITION_STRATEGIES = ("separator", "range")

#: :func:`route_edits` codes: the edit touches the separator, is
#: interior to one shard, or connects interiors of two shards.
ROUTE_BOUNDARY = 0
ROUTE_INTERIOR = 1
ROUTE_CROSS = 2


class PartitionError(ReproError):
    """A graph could not be partitioned as requested."""


@dataclass(frozen=True)
class PartitionStats:
    """Work accounting of one :func:`partition_graph` call.

    ``detect_items`` counts degree entries swept while growing the
    separator and ``edges_scanned`` the directed adjacency entries
    examined — the partitioned locator folds both into its round-0
    statistics so partitioning work is visible to the cycle model
    instead of disappearing between the phases.
    """

    strategy: str
    num_parts: int
    iterations: int
    final_threshold: int
    detect_items: int
    edges_scanned: int


@dataclass(frozen=True)
class GraphShard:
    """One partition shard: a local-ID subgraph plus its global node map.

    ``global_nodes`` is strictly ascending, so the local→global mapping
    is monotone: local orderings (BFS member order, canonical inter-hub
    pairs) survive the mapping back to global IDs unchanged.
    """

    part_id: int
    global_nodes: np.ndarray
    graph: CSRGraph

    def __post_init__(self) -> None:
        nodes = np.asarray(self.global_nodes, dtype=np.int64)
        object.__setattr__(self, "global_nodes", nodes)
        if len(nodes) != self.graph.num_nodes:
            raise PartitionError(
                f"shard {self.part_id}: {len(nodes)} global nodes for a "
                f"{self.graph.num_nodes}-node subgraph"
            )
        if len(nodes) > 1 and not np.all(np.diff(nodes) > 0):
            raise PartitionError(
                f"shard {self.part_id}: global_nodes must be strictly ascending"
            )

    @property
    def num_nodes(self) -> int:
        """Nodes in this shard."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Directed intra-shard edges."""
        return self.graph.num_edges

    def to_npz(self, file: str | IO[bytes]) -> None:
        """Serialize the shard (arrays verbatim, ids as metadata)."""
        write_npz(
            file,
            {
                "global_nodes": self.global_nodes,
                "indptr": self.graph.indptr,
                "indices": self.graph.indices,
            },
            {"format": 1, "part_id": int(self.part_id),
             "graph_name": self.graph.name},
        )

    @classmethod
    def from_npz(cls, file: str | IO[bytes]) -> "GraphShard":
        """Restore a shard written by :meth:`to_npz`."""
        arrays, meta = read_npz(file)
        return cls._from_arrays(arrays, meta)

    @classmethod
    def from_npz_mmap(cls, path: str) -> "GraphShard":
        """Restore a shard with **memory-mapped** arrays.

        The worker-fleet entry point: arrays stay file-backed, so a
        worker's resident set grows only with the shard pages it
        touches, never the whole partitioned graph.
        """
        arrays, meta = read_npz_mmap(path)
        return cls._from_arrays(arrays, meta)

    @classmethod
    def _from_arrays(cls, arrays, meta) -> "GraphShard":
        return cls(
            part_id=int(meta["part_id"]),
            global_nodes=arrays["global_nodes"],
            graph=CSRGraph(
                indptr=arrays["indptr"],
                indices=arrays["indices"],
                name=str(meta["graph_name"]),
            ),
        )


@dataclass(frozen=True)
class GraphPartition:
    """A full vertex-separator partition of one graph.

    ``part_of[v]`` is the shard owning interior node ``v`` or ``-1``
    for boundary nodes; ``boundary_nodes`` is the ascending separator.
    Invariant (checked by :meth:`validate`): no edge connects interior
    nodes of two different shards, so every cross-shard path runs
    through the boundary.
    """

    num_nodes: int
    boundary_nodes: np.ndarray
    part_of: np.ndarray
    shards: tuple[GraphShard, ...]
    stats: PartitionStats

    @property
    def num_parts(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def num_boundary(self) -> int:
        """Separator size."""
        return len(self.boundary_nodes)

    def validate(self, graph: CSRGraph) -> None:
        """Raise :class:`PartitionError` on any broken invariant."""
        if graph.num_nodes != self.num_nodes:
            raise PartitionError("partition does not match this graph")
        part_of = self.part_of
        boundary = np.flatnonzero(part_of < 0)
        if not np.array_equal(boundary, self.boundary_nodes):
            raise PartitionError("boundary_nodes disagree with part_of")
        owned = np.concatenate(
            [s.global_nodes for s in self.shards] + [boundary]
        )
        if len(owned) != self.num_nodes or len(np.unique(owned)) != len(owned):
            raise PartitionError("shards + boundary must cover nodes exactly once")
        rows = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), graph.degrees
        )
        src, dst = part_of[rows], part_of[graph.indices]
        cross = (src >= 0) & (dst >= 0) & (src != dst)
        if cross.any():
            u = int(rows[np.flatnonzero(cross)[0]])
            raise PartitionError(
                f"interior edge crosses shards at node {u}"
            )
        for shard in self.shards:
            expected = _extract_shard(graph, shard.global_nodes,
                                      int(shard.part_id))
            if not (
                np.array_equal(shard.graph.indptr, expected.graph.indptr)
                and np.array_equal(shard.graph.indices, expected.graph.indices)
            ):
                raise PartitionError(
                    f"shard {shard.part_id} is not the induced interior subgraph"
                )


def separator_membership(part_of: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Boolean mask: which of ``nodes`` are separator (boundary) nodes.

    ``part_of`` is a :class:`GraphPartition`-style assignment (shard id
    per interior node, ``-1`` on the separator); the incremental router
    evolves such an array outside any ``GraphPartition`` object, so the
    query takes the raw array rather than the partition.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    return part_of[nodes] < 0


def route_edits(
    part_of: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Classify undirected edits against a partition assignment.

    Returns ``(route, shard)``, parallel to the ``(src, dst)`` edit
    arrays: ``route[i]`` is :data:`ROUTE_BOUNDARY` when either endpoint
    sits on the separator (the edit never appears in any interior shard
    subgraph — only the reconciliation pass sees it),
    :data:`ROUTE_INTERIOR` when both endpoints are interior to the same
    shard (``shard[i]`` names it), or :data:`ROUTE_CROSS` when the
    endpoints are interior to two *different* shards — an edit the
    separator invariant forbids as an existing edge, so it can only be
    an insertion, and routing it requires promoting its endpoints into
    the separator first.  ``shard[i]`` is ``-1`` for non-interior edits.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    ps, pd = part_of[src], part_of[dst]
    route = np.full(len(src), ROUTE_CROSS, dtype=np.int64)
    boundary = (ps < 0) | (pd < 0)
    interior = ~boundary & (ps == pd)
    route[boundary] = ROUTE_BOUNDARY
    route[interior] = ROUTE_INTERIOR
    shard = np.where(interior, ps, -1)
    return route, shard


def partition_graph(
    graph: CSRGraph,
    num_parts: int,
    *,
    strategy: str = "separator",
    threshold: int | None = None,
    decay: float = 0.5,
    th_min: int = 1,
) -> GraphPartition:
    """Split ``graph`` into ``num_parts`` shards behind a vertex separator.

    ``threshold``/``decay``/``th_min`` drive the ``"separator"``
    strategy's degree schedule and should mirror the locator config the
    shards will run under; ``threshold=None`` resolves the locator's
    default (the 0.99 degree quantile, clamped to at least 4).  The
    ``"range"`` strategy ignores them.
    """
    if num_parts < 1:
        raise PartitionError("num_parts must be >= 1")
    if strategy not in PARTITION_STRATEGIES:
        raise PartitionError(
            f"unknown partition strategy {strategy!r} "
            f"(expected one of {PARTITION_STRATEGIES})"
        )
    n = graph.num_nodes
    if num_parts == 1:
        # The trivial partition: the single shard IS the graph (same
        # arrays), which keeps the partitioned locator's one-shard path
        # byte-identical to the monolithic run.
        shard = GraphShard(
            part_id=0,
            global_nodes=np.arange(n, dtype=np.int64),
            graph=graph,
        )
        return GraphPartition(
            num_nodes=n,
            boundary_nodes=np.zeros(0, dtype=np.int64),
            part_of=np.zeros(n, dtype=np.int64),
            shards=(shard,),
            stats=PartitionStats(
                strategy=strategy, num_parts=1, iterations=0,
                final_threshold=0, detect_items=0, edges_scanned=0,
            ),
        )
    if strategy == "separator":
        sep, labels, stats = _separator_split(
            graph, num_parts, threshold=threshold, decay=decay, th_min=th_min
        )
    else:
        sep, labels, stats = _range_split(graph, num_parts)
    part_of = _pack_components(sep, labels, num_parts)
    shards = tuple(
        _extract_shard(graph, np.flatnonzero(part_of == p), p)
        for p in range(num_parts)
    )
    return GraphPartition(
        num_nodes=n,
        boundary_nodes=np.flatnonzero(sep),
        part_of=part_of,
        shards=shards,
        stats=stats,
    )


# ----------------------------------------------------------------------
# Strategies: separator growth
# ----------------------------------------------------------------------
def _separator_split(graph, num_parts, *, threshold, decay, th_min):
    """Recursive degree-threshold separator.

    Round 0 promotes every ``deg ≥ TH0`` node globally — exactly the
    monolithic locator's round-1 hub set, so these promotions cost no
    islandization quality.  Each following iteration labels the
    residual's connected components, finalises every component under
    the per-shard edge budget, and promotes the ≥-threshold nodes of
    the oversized ones before decaying the threshold — the locator's
    own schedule, applied only where the graph is still too welded to
    shard.  The working graph is **compacted** to the still-oversized
    region after every iteration, so per-iteration cost tracks the
    shrinking frontier instead of the full edge count.
    """
    n, num_edges = graph.num_nodes, graph.num_edges
    deg = graph.degrees.astype(np.int64)
    if threshold is None:
        threshold = _default_threshold(deg, th_min)
    budget = max(1, num_edges // num_parts)
    sep = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    th = int(threshold)
    # Round 0: global TH0 sweep (the mono locator's round-1 hubs).
    sep[deg >= th] = True
    iterations = 1
    detect_items = n
    edges_scanned = num_edges
    th = max(th_min, int(np.floor(th * decay)))
    # One eager decayed sweep before the first (expensive) component
    # pass: nodes this far above TH0*decay are hub-blob material on any
    # graph dense enough to need partitioning, and promoting them now
    # usually halves the residual the first Tarjan pass must label.
    # Unlike the in-loop promotions this is global — a >=th node inside
    # an already-under-budget component gets promoted too — which costs
    # a little islandization quality for a large constant-factor win;
    # the bench records the delta.
    if th > th_min:
        sep[deg >= th] = True
        iterations += 1
        detect_items += n
        th = max(th_min, int(np.floor(th * decay)))
    # Compact working copy: residual after the global sweeps.
    cur_indptr, cur_indices, node_map = _induced_compact(
        graph.indptr, graph.indices, ~sep
    )
    label_base = 0
    while len(node_map):
        iterations += 1
        edges_scanned += len(cur_indices)
        lab, comp_edges = _compact_components(cur_indptr, cur_indices)
        over = comp_edges > budget
        in_over = over[lab]
        final = ~in_over
        labels[node_map[final]] = lab[final] + label_base
        label_base += len(comp_edges)
        if not in_over.any():
            break
        detect_items += int(in_over.sum())
        newsep_local = in_over & (deg[node_map] >= th)
        if not newsep_local.any() and th <= th_min:
            # Degenerate tail (every degree below th_min inside an
            # oversized component): promote the whole component —
            # crude, but guarantees termination.
            newsep_local = in_over
        sep[node_map[newsep_local]] = True
        keep = in_over & ~newsep_local
        cur_indptr, cur_indices, local_map = _induced_compact(
            cur_indptr, cur_indices, keep
        )
        node_map = node_map[local_map]
        th = max(th_min, int(np.floor(th * decay)))
    stats = PartitionStats(
        strategy="separator", num_parts=num_parts, iterations=iterations,
        final_threshold=th, detect_items=detect_items,
        edges_scanned=edges_scanned,
    )
    return sep, labels, stats


def _default_threshold(deg: np.ndarray, th_min: int) -> int:
    """LocatorConfig's default TH0 resolution (kept import-free here)."""
    if len(deg) == 0:
        return max(4, th_min)
    return max(4, th_min, int(np.ceil(float(np.quantile(deg, 0.99)))))


def _induced_compact(indptr, indices, keep):
    """Induced subgraph on ``keep`` with compact local IDs.

    Returns ``(sub_indptr, sub_indices, node_map)`` where
    ``node_map[local] = old id`` (ascending, so the relabeling is
    monotone).
    """
    nodes = np.flatnonzero(keep)
    old_n = len(indptr) - 1
    # Local work runs in int32 — node and edge counts both fit, and the
    # gathers here are memory-bound, so halving the element width is a
    # straight 2x on the partitioner's hottest passes.  It also hands
    # scipy's csgraph its native index type (no silent astype copy).
    relabel = np.full(old_n, -1, dtype=np.int32)
    relabel[nodes] = np.arange(len(nodes), dtype=np.int32)
    starts = indptr[nodes].astype(np.int32)
    counts = (indptr[nodes + 1] - indptr[nodes]).astype(np.int32)
    total = int(counts.sum())
    inner = np.arange(total, dtype=np.int32) - np.repeat(
        (np.cumsum(counts, dtype=np.int64) - counts).astype(np.int32),
        counts,
    )
    neigh = relabel[indices[np.repeat(starts, counts) + inner]]
    kept = neigh >= 0
    local_deg = np.bincount(
        np.repeat(np.arange(len(nodes), dtype=np.int32), counts)[kept],
        minlength=len(nodes),
    )
    sub_indptr = np.zeros(len(nodes) + 1, dtype=np.int32)
    np.cumsum(local_deg, out=sub_indptr[1:])
    return sub_indptr, neigh[kept], nodes


def _compact_components(sub_indptr, sub_indices):
    """Component labels + per-component directed edge counts.

    The subgraph is already in CSR form.  Connectivity runs as
    *strong* components of the directed view: the adjacency is
    symmetric (every undirected edge is a 2-cycle), so strong, weak
    and undirected components coincide — and scipy's Tarjan pass
    reads the CSR directly, skipping the whole-graph transpose
    (``csr_tocsc``) that ``directed=False`` would pay.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n_local = len(sub_indptr) - 1
    sub = csr_matrix(
        (np.ones(len(sub_indices), dtype=np.int8), sub_indices, sub_indptr),
        shape=(n_local, n_local),
    )
    _, lab = connected_components(sub, directed=True, connection="strong")
    res_deg = np.diff(sub_indptr)
    comp_edges = np.bincount(lab, weights=res_deg).astype(np.int64)
    return lab, comp_edges


# ----------------------------------------------------------------------
# Strategies: contiguous ranges
# ----------------------------------------------------------------------
def _range_split(graph, num_parts):
    """Edge-balanced contiguous node ranges; cut endpoints → separator."""
    n, num_edges = graph.num_nodes, graph.num_edges
    indptr, indices = graph.indptr, graph.indices
    targets = num_edges * np.arange(1, num_parts, dtype=np.int64) // num_parts
    cuts = np.searchsorted(indptr[1:], targets, side="left")
    bounds = np.concatenate(([0], cuts, [n]))
    range_of = np.zeros(n, dtype=np.int64)
    for p in range(num_parts):
        range_of[bounds[p]:bounds[p + 1]] = p
    rows = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    cross = range_of[rows] != range_of[indices]
    sep = np.zeros(n, dtype=bool)
    sep[rows[cross]] = True
    sep[indices[cross]] = True
    # Interior labels: reuse the ranges as "components" — ranges hold no
    # cross edges after promotion, and packing maps them 1:1 to shards.
    labels = np.where(sep, -1, range_of)
    stats = PartitionStats(
        strategy="range", num_parts=num_parts, iterations=1,
        final_threshold=0, detect_items=n, edges_scanned=num_edges,
    )
    return sep, labels, stats


# ----------------------------------------------------------------------
# Packing + extraction
# ----------------------------------------------------------------------
def _pack_components(sep, labels, num_parts):
    """Greedy bin-packing of whole components into ``num_parts`` shards.

    Components are placed heaviest-first onto the least-loaded shard
    (deterministic: ties broken by component id, then shard id), so
    shards stay edge-balanced without ever splitting a component.
    """
    live = ~sep
    n = len(sep)
    part_of = np.full(n, -1, dtype=np.int64)
    if not live.any():
        return part_of
    comp_ids, comp_index = np.unique(labels[live], return_inverse=True)
    comp_nodes = np.bincount(comp_index)
    # Weight = node count (edge totals track it closely and this keeps
    # packing independent of the split strategy's bookkeeping).
    order = np.lexsort((np.arange(len(comp_ids)), -comp_nodes))
    heap = [(0, p) for p in range(num_parts)]
    comp_part = np.empty(len(comp_ids), dtype=np.int64)
    for c in order:
        load, p = heapq.heappop(heap)
        comp_part[int(c)] = p
        heapq.heappush(heap, (load + int(comp_nodes[int(c)]), p))
    part_of[live] = comp_part[comp_index]
    return part_of


def _extract_shard(graph, nodes, part_id):
    """Induced interior subgraph on ``nodes`` (ascending), local IDs."""
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    relabel = np.full(n, -1, dtype=np.int64)
    relabel[nodes] = np.arange(len(nodes), dtype=np.int64)
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    inner = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    flat = np.repeat(starts, counts) + inner
    neigh = relabel[indices[flat]]
    keep = neigh >= 0
    local_rows = np.repeat(relabel[nodes], counts)[keep]
    local_deg = (
        np.bincount(local_rows, minlength=len(nodes))
        if len(nodes) else np.zeros(0, dtype=np.int64)
    )
    sub_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(local_deg, out=sub_indptr[1:])
    return GraphShard(
        part_id=part_id,
        global_nodes=np.asarray(nodes, dtype=np.int64),
        graph=CSRGraph(
            indptr=sub_indptr,
            indices=neigh[keep],
            name=f"{graph.name}/shard{part_id}",
        ),
    )
