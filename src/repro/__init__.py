"""I-GCN reproduction: runtime graph islandization for GCN acceleration.

A from-scratch functional + performance simulation of the MICRO 2021
paper *I-GCN: A Graph Convolutional Network Accelerator with Runtime
Locality Enhancement through Islandization* (Geng et al.), including
every substrate the evaluation depends on: graph storage and synthetic
datasets, GCN/GraphSage/GIN models with a scipy reference, the Island
Locator and Island Consumer, hardware cycle/energy/area models, the
AWB-GCN / HyGCN / SIGMA / CPU / GPU baselines, six lightweight graph
reorderings, and a benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import IGCNAccelerator, load_dataset, gcn_model

    ds = load_dataset("cora")
    model = gcn_model(ds.num_features, ds.num_classes)
    report = IGCNAccelerator().run(ds.graph, model,
                                   feature_density=ds.feature_density)
    print(report.summary())

Or through the unified runtime (any platform, cached artifacts)::

    from repro import Engine

    engine = Engine()
    rows = engine.sweep(["cora", "citeseer"], ["igcn", "awb", "hygcn"])
"""

from repro.core import (
    ConsumerConfig,
    IGCNAccelerator,
    IGCNReport,
    IslandLocator,
    LocatorConfig,
    islandize,
)
from repro.graph import (
    CSRGraph,
    Dataset,
    GraphBuilder,
    dataset_names,
    load_dataset,
)
from repro.hw import HardwareConfig
from repro.models import (
    ModelConfig,
    build_model,
    gcn_model,
    gin_model,
    graphsage_model,
    reference_forward,
)
from repro.report import BaseReport
from repro.runtime import Engine, get_simulator, register_simulator, simulator_names

__version__ = "1.1.0"

__all__ = [
    "IGCNAccelerator",
    "IGCNReport",
    "IslandLocator",
    "islandize",
    "LocatorConfig",
    "ConsumerConfig",
    "CSRGraph",
    "GraphBuilder",
    "Dataset",
    "load_dataset",
    "dataset_names",
    "HardwareConfig",
    "ModelConfig",
    "gcn_model",
    "graphsage_model",
    "gin_model",
    "build_model",
    "reference_forward",
    "BaseReport",
    "Engine",
    "get_simulator",
    "register_simulator",
    "simulator_names",
    "__version__",
]
