"""The simulation Engine: tiered artifact caching and batched sweeps.

The expensive parts of reproducing the paper's cross-platform tables
(§4.6, Table 2) are *shared* between cells: five datasets × many platforms × several
model variants all reuse the same dataset surrogates, the same
self-loop-free graph copies, the same
:class:`~repro.core.types.IslandizationResult` per (graph, locator
config), and the same :class:`~repro.models.workload.Workload` per
(graph, model).  :class:`Engine` centralises that reuse behind a
pluggable :class:`~repro.runtime.store.ArtifactStore` stack::

    from repro.runtime import Engine

    engine = Engine()                          # in-memory store
    engine = Engine(cache_dir="~/.cache/repro")  # memory over disk

    rows = engine.sweep(["cora", "citeseer"], ["igcn", "awb"])
    # deterministic dataset-major × model × platform row order

Cache keys are *stable strings* — graph content fingerprints plus
config digests (:func:`repro.serialize.config_digest`) — so artifacts
persisted by the disk tier warm-start later processes: a second CLI
invocation (or a sweep worker on another core) re-reads islandizations
instead of recomputing them, mirroring the paper's
compute-once/reuse-everywhere locality story at the tooling level.

``sweep(..., parallel=4)`` fans per-(dataset, model) work units over a
process pool; workers share the disk tier (when configured) and report
their cache hit/miss deltas back, so ``engine.cache_stats()`` reflects
parallel runs too.  Row order is identical to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterable, Sequence

from repro.core.config import ConsumerConfig, LocatorConfig
from repro.core.islandizer import islandize
from repro.core.islandizer_incremental import (
    IncrementalState,
    IncrementalUpdate,
    record_islandization,
    update_islandization,
)
from repro.core.islandizer_pincremental import (
    PartitionedIncrementalState,
    PartitionedIncrementalUpdate,
    ShardFleet,
    update_islandization_partitioned,
)
from repro.core.types import IslandizationResult
from repro.errors import ConfigError, SimulationError
from repro.graph.csr import CSRGraph, GraphDelta
from repro.graph.datasets import DATASETS, Dataset, canonical_name, load_dataset
from repro.models.configs import ModelConfig, build_model
from repro.models.workload import Workload, build_workload
from repro.report import BaseReport
from repro.runtime.registry import get_simulator, resolve_name
from repro.runtime.store import (
    ARTIFACT_KINDS,
    MISS,
    ArtifactStore,
    CacheStats,
    DiskStore,
    TieredStore,
    build_store,
)
from repro.serialize import config_digest

__all__ = ["CacheStats", "Engine", "graph_fingerprint", "sweep"]

#: Artifact kinds maintained by the Engine, in dependency order.
_CACHE_NAMES = ARTIFACT_KINDS


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content digest of a graph (structure + name), usable as a key.

    :class:`CSRGraph` holds numpy arrays and is not hashable;
    :meth:`CSRGraph.fingerprint` digests the CSR bytes once per
    instance (graphs are immutable), so repeated cache lookups stay
    O(1) while still distinguishing reordered/cleaned variants that
    share a name.
    """
    return graph.fingerprint()


def _model_for(ds: Dataset, spec: str, default_variant: str = "algo") -> ModelConfig:
    """Build the model a sweep cell asks for.

    ``spec`` is ``"family"`` or ``"family:variant"`` (e.g. ``"gcn"``,
    ``"gcn:hy"``, ``"gin"``); only families with variants accept the
    suffix — anything else is an error rather than a silent drop.
    """
    family, _, variant = spec.partition(":")
    kwargs: dict[str, Any] = {}
    if family in ("gcn", "graphsage"):
        kwargs["variant"] = variant or default_variant
    elif variant:
        raise ConfigError(
            f"model family {family!r} takes no ':variant' suffix (got {spec!r})"
        )
    return build_model(family, ds.num_features, ds.num_classes, **kwargs)


class Engine:
    """Memoizing façade over the simulator registry.

    Parameters
    ----------
    locator:
        Default Island Locator configuration used for islandization
        artifacts (a simulator with a different locator config gets its
        own cache entries — the config is part of the key).
    consumer:
        Default Island Consumer configuration for locator-backed
        simulators.  Like the locator config it is part of every
        locator-dependent report/summary cache key, so engines with
        different consumer settings (backend and pipeline mode
        included — a streamed report never masquerades as a staged
        one) sharing one disk store never serve each other's rows.
        The islandization artifact itself carries no consumer digest:
        staged and streamed runs share it, since the locator's result
        is mode-independent by contract.
    store:
        Explicit :class:`~repro.runtime.store.ArtifactStore` stack.
        Mutually exclusive with ``cache_dir``.
    cache_dir:
        Directory for a persistent disk tier; the engine then runs a
        memory-over-disk :class:`~repro.runtime.store.TieredStore`, so
        artifacts survive the process and are shared with parallel
        sweep workers.  Default (``None``): in-memory only.
    """

    def __init__(
        self,
        *,
        locator: LocatorConfig | None = None,
        consumer: ConsumerConfig | None = None,
        store: ArtifactStore | None = None,
        cache_dir: str | None = None,
    ) -> None:
        if store is not None and cache_dir is not None:
            raise ConfigError("pass either store= or cache_dir=, not both")
        self.locator_config = locator or LocatorConfig()
        self.consumer_config = consumer or ConsumerConfig()
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.store = store if store is not None else build_store(self.cache_dir)
        self._stats: dict[str, CacheStats] = {n: CacheStats() for n in _CACHE_NAMES}
        self._fleets: dict[str, ShardFleet] = {}
        self._degradations: list[dict[str, Any]] = []

    def close(self) -> None:
        """Shut down any warm shard fleets this engine spawned.

        Fleets (worker pools for partitioned incremental updates) are
        created lazily by :meth:`update` and kept warm for chaining;
        they hold OS resources, so long-lived callers should close the
        engine when done.  Safe to call repeatedly; the engine remains
        usable (fleets respawn on demand).
        """
        for fleet in self._fleets.values():
            fleet.close()
        self._fleets.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _fleet(self, config: LocatorConfig) -> ShardFleet:
        """The warm :class:`ShardFleet` for ``config`` (lazily built)."""
        key = config_digest(config)
        fleet = self._fleets.get(key)
        if fleet is None:
            fleet = self._fleets.setdefault(key, ShardFleet(config))
        return fleet

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _memo(self, kind: str, key: str, compute) -> Any:
        """Route one artifact lookup through the store stack.

        A hit in *any* tier counts as an engine-level hit; a miss means
        ``compute()`` actually ran (and its result was written through
        to every tier handling the kind).
        """
        value = self.store.get(kind, key)
        if value is not MISS:
            self._stats[kind].hits += 1
            return value
        self._stats[kind].misses += 1
        value = compute()
        self.store.put(kind, key, value)
        return value

    def cache_stats(self) -> dict[str, CacheStats]:
        """Engine-level hit/miss counters per artifact kind (live view).

        Hits count lookups satisfied by any tier (memory or disk);
        misses count artifacts actually computed.  Per-tier counters
        are available from :meth:`tier_stats`.
        """
        return dict(self._stats)

    def tier_stats(self) -> dict[str, dict[str, CacheStats]]:
        """Per-tier, per-kind lookup counters from the store stack."""
        return self.store.stats()

    def clear(self, *, disk: bool = False) -> None:
        """Drop cached artifacts and reset the counters.

        By default only non-persistent tiers are cleared (the seed
        behaviour: reset this process's memoization).  The disk tier
        may be shared with concurrent workers, other invocations or
        other hosts, so destroying it requires ``disk=True`` (the CLI
        equivalent is ``repro cache clear``).

        The :class:`CacheStats` objects are reset in place so views
        previously returned by :meth:`cache_stats` stay live.
        """
        tiers = self.store.tiers if isinstance(self.store, TieredStore) else (self.store,)
        for tier in tiers:
            if disk or not tier.persistent:
                tier.clear()
        for name in _CACHE_NAMES:
            self._stats[name].hits = 0
            self._stats[name].misses = 0

    def _merge_stats(self, delta: dict[str, tuple[int, int]]) -> None:
        """Fold a worker's (hits, misses) deltas into this engine's stats."""
        for kind, (hits, misses) in delta.items():
            stats = self._stats.setdefault(kind, CacheStats())
            stats.hits += hits
            stats.misses += misses

    @property
    def degradations(self) -> list[dict[str, Any]]:
        """Fault-recovery events this engine absorbed (live view).

        Each entry records one degradation a sweep survived instead of
        failing — e.g. ``{"event": "broken_process_pool", ...}`` when a
        pool worker died (OOM-killed, SIGKILLed) and the lost units
        were re-run serially, or ``{"event": "queue_worker_exit", ...}``
        when a driven queue worker exited abnormally and the
        coordinator drained the remainder inline.  Empty on a clean
        run; the CLI surfaces these next to :meth:`cache_stats`.
        """
        return self._degradations

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def dataset(
        self,
        name: str,
        *,
        scale: float | None = None,
        seed: int = 7,
        with_features: bool = False,
    ) -> Dataset:
        """Cached :func:`repro.graph.load_dataset`.

        The key canonicalises the name (paper codes included) and
        resolves ``scale=None`` to the per-dataset default, so
        ``dataset("cr")`` and ``dataset("cora", scale=1.0)`` share one
        entry — in memory and on disk.
        """
        canonical = canonical_name(name)
        effective_scale = (
            scale if scale is not None else DATASETS[canonical].default_scale
        )
        key = (
            f"{canonical}|scale={float(effective_scale)!r}|seed={seed}"
            f"|features={int(bool(with_features))}"
        )
        return self._memo(
            "dataset",
            key,
            lambda: load_dataset(
                canonical, scale=effective_scale, seed=seed,
                with_features=with_features,
            ),
        )

    def clean_graph(self, graph: CSRGraph) -> CSRGraph:
        """Cached self-loop-free copy of ``graph``."""
        key = graph_fingerprint(graph)
        return self._memo("clean_graph", key, graph.without_self_loops)

    def islandization(
        self, graph: CSRGraph, config: LocatorConfig | None = None
    ) -> IslandizationResult:
        """Cached Island Locator result for (graph, locator config).

        ``graph`` may still carry self-loops; the cached clean copy is
        islandized, mirroring ``IGCNAccelerator.islandize``.  The key
        is the clean graph's fingerprint + the locator config digest,
        so engines with different configs sharing one disk tier never
        collide.

        A config with ``incremental=True`` routes through
        :meth:`islandization_state`, so the result's updatable
        bookkeeping is recorded (and cached) alongside it.
        """
        config = config or self.locator_config
        if config.incremental:
            return self.islandization_state(graph, config)[0]
        clean = self.clean_graph(graph)
        key = f"{graph_fingerprint(clean)}|loc={config_digest(config)}"
        return self._memo(
            "islandization", key,
            lambda: islandize(clean, config, store=self.store),
        )

    def islandization_state(
        self, graph: CSRGraph, config: LocatorConfig | None = None
    ) -> tuple[
        IslandizationResult, IncrementalState | PartitionedIncrementalState
    ]:
        """Cached (result, incremental state) pair for (graph, config).

        The pair is produced by one
        :func:`~repro.core.islandizer_incremental.record_islandization`
        run and stored under the *same* key in two kinds
        ("islandization" and "ilstate"), so a disk tier always serves
        matching halves.  A half-present pair (one kind evicted) is
        re-recorded whole — the result side of a recording run is
        identical to a plain islandization, so nothing downstream can
        observe the recompute.  With ``partitions > 1`` the recording
        runs through the shard fleet and the state half is a
        :class:`~repro.core.islandizer_pincremental.PartitionedIncrementalState`
        (the ``ilstate`` codec dispatches on the serialized format).

        Requires a config with ``incremental=True`` (the flag is part
        of the config digest, keeping these entries distinct from
        plain islandizations of the same graph).
        """
        config = config or self.locator_config
        if not config.incremental:
            raise ConfigError(
                "islandization_state needs a LocatorConfig with "
                "incremental=True (the recording flag is part of the "
                "cache key)"
            )
        clean = self.clean_graph(graph)
        key = f"{graph_fingerprint(clean)}|loc={config_digest(config)}"
        result = self.store.get("islandization", key)
        state = self.store.get("ilstate", key)
        if result is not MISS and state is not MISS:
            self._stats["islandization"].hits += 1
            self._stats["ilstate"].hits += 1
            return result, state
        self._stats["islandization"].misses += 1
        self._stats["ilstate"].misses += 1
        result, state = record_islandization(clean, config)
        self.store.put("islandization", key, result)
        self.store.put("ilstate", key, state)
        return result, state

    def update(
        self,
        graph: CSRGraph,
        delta: GraphDelta,
        config: LocatorConfig | None = None,
        *,
        max_dirty_fraction: float = 0.5,
    ) -> IncrementalUpdate | PartitionedIncrementalUpdate:
        """Maintain a cached islandization under an edge delta.

        Fetches (or records) the (result, state) pair for ``graph``,
        applies ``delta`` via
        :func:`~repro.core.islandizer_incremental.update_islandization`,
        and stores the updated pair under the *mutated* graph's
        fingerprint — so updates chain: ``engine.update(upd.result.graph,
        next_delta)`` starts from a warm cache, never re-islandizing.
        The mutated clean graph is cached under its own fingerprint
        too, keeping :meth:`clean_graph`/:meth:`islandization` lookups
        on it O(1).

        ``delta`` is applied to the cached *clean* copy of ``graph``
        (islandization is defined on self-loop-free graphs).  Returns
        the full :class:`~repro.core.islandizer_incremental.IncrementalUpdate`
        (result, refreshed state, dirty-region telemetry, and whether
        the update fell back to a recording rebuild) — or its
        partitioned counterpart when the state is shard-routed, in
        which case the delta runs through this engine's warm
        :class:`~repro.core.islandizer_pincremental.ShardFleet` so
        chained updates reuse one worker pool (see :meth:`close`).
        """
        config = config or self.locator_config
        cached, state = self.islandization_state(graph, config)
        clean = self.clean_graph(graph)
        applied = clean.apply_delta(delta, with_changes=True)
        if isinstance(state, PartitionedIncrementalState):
            upd = update_islandization_partitioned(
                clean, cached, state, delta, config,
                max_dirty_fraction=max_dirty_fraction, applied=applied,
                fleet=self._fleet(config),
            )
        else:
            upd = update_islandization(
                clean, cached, state, delta, config,
                max_dirty_fraction=max_dirty_fraction, applied=applied,
            )
        new_graph = upd.result.graph
        new_key = f"{graph_fingerprint(new_graph)}|loc={config_digest(config)}"
        self.store.put("clean_graph", graph_fingerprint(new_graph), new_graph)
        self.store.put("islandization", new_key, upd.result)
        self.store.put("ilstate", new_key, upd.state)
        return upd

    def workload(
        self, graph: CSRGraph, model: ModelConfig, *, feature_density: float = 1.0
    ) -> Workload:
        """Cached operation-count workload for (graph, model, density)."""
        key = (
            f"{graph_fingerprint(graph)}|model={config_digest(model)}"
            f"|fd={float(feature_density)!r}"
        )
        return self._memo(
            "workload",
            key,
            lambda: build_workload(graph, model, feature_density=feature_density),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _resolve_cell(
        self, data: Dataset | CSRGraph, model: ModelConfig | None,
        feature_density: float | None,
    ) -> tuple[CSRGraph, ModelConfig, float]:
        """Shared (graph, model, density) resolution for one sweep cell."""
        ds = data if isinstance(data, Dataset) else None
        graph = ds.graph if ds is not None else data
        if model is None:
            if ds is None:
                raise SimulationError(
                    "simulate() needs an explicit model when given a raw graph"
                )
            model = _model_for(ds, "gcn")
        if feature_density is None:
            feature_density = ds.feature_density if ds is not None else 1.0
        return graph, model, feature_density

    def _cell_key(
        self, platform: str, graph: CSRGraph, model: ModelConfig,
        feature_density: float,
    ) -> str:
        """Stable cache key of one (platform, graph, model, density) cell.

        For platforms that consume islandizations (``uses_locator``,
        currently igcn — unknown simulator classes are treated as
        locator-dependent to be safe) the key includes the engine's
        effective locator *and* consumer config digests: two engines
        with different :class:`LocatorConfig`/:class:`ConsumerConfig`
        values sharing a disk tier must not serve each other's
        reports/summaries.  Locator-independent baselines omit both,
        so their cached rows are shared across those settings instead
        of being pointlessly recomputed.
        """
        name = resolve_name(platform)
        parts = [
            name,
            graph_fingerprint(graph),
            f"model={config_digest(model)}",
            f"fd={float(feature_density)!r}",
        ]
        if getattr(get_simulator(name), "uses_locator", True):
            parts.append(f"loc={config_digest(self.locator_config)}")
            parts.append(f"con={config_digest(self.consumer_config)}")
        return "|".join(parts)

    def simulate(
        self,
        platform: str,
        data: Dataset | CSRGraph,
        model: ModelConfig | None = None,
        *,
        feature_density: float | None = None,
        **opts: Any,
    ) -> BaseReport:
        """Run ``platform`` on a dataset or raw graph through the registry.

        When ``data`` is a :class:`Dataset`, the model defaults to the
        paper's 2-layer GCN at the dataset's dimensions and
        ``feature_density`` to the published value.  Reports of
        option-free runs are cached (live objects, memory tiers only —
        the serialized cross-process artifact is the *summary*, see
        :meth:`summary`).
        """
        graph, model, feature_density = self._resolve_cell(
            data, model, feature_density
        )
        if opts:
            # Functional runs etc. carry unhashable payloads: bypass the
            # report cache entirely (no stats — this is not a lookup).
            return self._run(platform, graph, model, feature_density, opts)
        key = self._cell_key(platform, graph, model, feature_density)
        return self._memo(
            "report", key, lambda: self._run(platform, graph, model, feature_density, {})
        )

    def summary(
        self,
        platform: str,
        data: Dataset | CSRGraph,
        model: ModelConfig | None = None,
        *,
        feature_density: float | None = None,
    ) -> dict[str, object]:
        """Cached shared-schema summary row of one cell.

        Unlike live reports, summary rows are JSON-serializable and
        persist through the disk tier — a warm-started sweep reads them
        back without simulating (or islandizing) anything.  Returns a
        fresh dict copy so callers can annotate rows freely.
        """
        graph, model, feature_density = self._resolve_cell(
            data, model, feature_density
        )
        key = self._cell_key(platform, graph, model, feature_density)
        row = self._memo(
            "summary",
            key,
            lambda: self.simulate(
                platform, data, model, feature_density=feature_density
            ).base_summary(),
        )
        return dict(row)

    def _run(
        self,
        platform: str,
        graph: CSRGraph,
        model: ModelConfig,
        feature_density: float,
        opts: dict[str, Any],
    ) -> BaseReport:
        simulator = get_simulator(platform)
        return simulator.simulate(
            graph, model, feature_density=feature_density, engine=self, **opts
        )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        datasets: Sequence[str],
        platforms: Sequence[str],
        *,
        models: Sequence[str] = ("gcn",),
        variant: str = "algo",
        scale: float | None = None,
        seed: int = 7,
        parallel: int | bool | None = None,
        queue: Any | None = None,
    ) -> list[dict[str, object]]:
        """Batched cross-product sweep: datasets × models × platforms.

        Returns one shared-schema summary row (see
        :data:`repro.report.SUMMARY_FIELDS`) per cell, ordered
        dataset-major, then model, then platform — deterministically,
        whether serial or parallel, cold or warm-started from disk.

        ``parallel`` — ``None``/``0``/``False`` runs serially in this
        process (sharing this engine's caches across all cells);
        ``True`` or a worker count fans the (dataset, model) units out
        over a process pool.  Workers share this engine's disk tier
        (when ``cache_dir`` is configured) and their cache hit/miss
        deltas are folded back into :meth:`cache_stats`.  Rows are
        identical either way.  A worker death (OOM kill, SIGKILL) does
        not lose the sweep: the broken pool's unfinished units are
        re-run serially in this process and the event is recorded in
        :attr:`degradations`.

        ``queue`` — a path (or
        :class:`~repro.runtime.queue.ExperimentQueue`) routes the sweep
        through the durable experiment queue instead of an in-process
        job list: the grid is submitted once (idempotently — a restart
        resumes, ``done`` cells are never re-run), ``parallel`` local
        worker processes drain it (plus an inline drain by this
        process, which also finishes the grid if every worker dies),
        and the table folds back into the identical rows.  Cells that
        exhaust their retry budget raise, quoting the quarantined
        errors.
        """
        platforms = [resolve_name(p) for p in platforms]
        max_workers = None if parallel is True or not parallel else int(parallel)
        if max_workers is not None and max_workers < 1:
            raise ConfigError(
                f"parallel must be a positive worker count (got {parallel})"
            )
        if queue is not None:
            return self._sweep_queued(
                queue, datasets, platforms, models, variant, scale, seed,
                num_workers=(0 if not parallel else
                             (max_workers or os.cpu_count() or 1)),
            )
        worker_cache_dir = self._worker_cache_dir()
        jobs = [
            (
                name, scale, seed, spec, variant, tuple(platforms),
                self.locator_config, self.consumer_config, worker_cache_dir,
            )
            for name in datasets
            for spec in models
        ]
        if not parallel:
            rows: list[dict[str, object]] = []
            for job in jobs:
                rows.extend(self._sweep_unit(job))
            return rows
        chunks: list[tuple[list[dict[str, object]], dict] | None] = [None] * len(jobs)
        lost: list[int] = []
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_sweep_worker, job) for job in jobs]
            for i, future in enumerate(futures):
                try:
                    chunks[i] = future.result()
                except BrokenProcessPool:
                    # A worker died (OOM killer, SIGKILL, segfault) and
                    # took the pool with it.  Don't lose the sweep: the
                    # unfinished units re-run serially below.
                    lost.append(i)
        if lost:
            self._degradations.append({
                "event": "broken_process_pool",
                "lost_units": len(lost),
                "total_units": len(jobs),
            })
            for i in lost:
                chunks[i] = (self._sweep_unit(jobs[i]), {})
        rows = []
        for chunk, delta in chunks:
            rows.extend(chunk)
            self._merge_stats(delta)
        return rows

    def _sweep_queued(
        self,
        queue: Any,
        datasets: Sequence[str],
        platforms: Sequence[str],
        models: Sequence[str],
        variant: str,
        scale: float | None,
        seed: int,
        *,
        num_workers: int,
    ) -> list[dict[str, object]]:
        """Run one sweep grid through the durable experiment queue.

        Submit is idempotent, so re-running the same sweep against the
        same queue (a coordinator restart) folds already-``done`` cells
        straight from the table — zero re-simulation.  The inline drain
        after the workers exit guarantees completion even if every
        worker process is killed: this process claims whatever is left
        (waiting out orphaned leases) exactly like any other worker.
        """
        # Local import: repro.runtime.queue imports Engine from here.
        from repro.runtime.queue import ExperimentQueue, work

        own = not isinstance(queue, ExperimentQueue)
        q = ExperimentQueue(queue) if own else queue
        try:
            cache_dir = self._worker_cache_dir()
            submitted = q.submit(
                datasets, platforms, models=models, variant=variant,
                scale=scale, seed=seed, locator=self.locator_config,
                consumer=self.consumer_config, cache_dir=cache_dir,
            )
            if num_workers:
                ctx = multiprocessing.get_context()
                procs = [
                    ctx.Process(
                        target=work, args=(q.path,),
                        kwargs={"cache_dir": cache_dir}, daemon=True,
                    )
                    for _ in range(num_workers)
                ]
                for proc in procs:
                    proc.start()
                for proc in procs:
                    proc.join()
                died = sum(1 for proc in procs if proc.exitcode != 0)
                if died:
                    self._degradations.append({
                        "event": "queue_worker_exit",
                        "workers_died": died,
                        "workers_total": num_workers,
                    })
            # Inline drain: serial sweeps run the whole grid here (on
            # this engine, sharing its memory tier like a plain serial
            # sweep); parallel sweeps use it as the crash backstop.
            work(q.path, cache_dir=cache_dir, engine=self)
            return q.results(submitted.cell_ids)
        finally:
            if own:
                q.close()

    def _sweep_unit(self, job: tuple) -> list[dict[str, object]]:
        """All platform rows of one (dataset, model) sweep cell."""
        (name, scale, seed, spec, variant, platforms,
         _locator, _consumer, _cache_dir) = job
        ds = self.dataset(name, scale=scale, seed=seed)
        model = _model_for(ds, spec, variant)
        return [self.summary(platform, ds, model) for platform in platforms]

    def _worker_cache_dir(self) -> str | None:
        """Disk-tier directory sweep workers should attach to.

        An engine built with ``cache_dir=`` forwards it directly; one
        built with an explicit ``store=`` stack forwards the root of
        its first :class:`DiskStore` tier (if any), so workers still
        share the persistent tier.  Stores without a recognisable disk
        tier make the workers run memory-only.
        """
        if self.cache_dir is not None:
            return self.cache_dir
        tiers = self.store.tiers if isinstance(self.store, TieredStore) else (self.store,)
        for tier in tiers:
            if isinstance(tier, DiskStore):
                return str(tier.root)
        return None

    def _stats_snapshot(self) -> dict[str, tuple[int, int]]:
        return {kind: (s.hits, s.misses) for kind, s in self._stats.items()}


#: Per-worker-process engines, keyed by (locator config, consumer
#: config, cache dir), so sweep units that land in the same pool worker
#: share datasets and islandizations just like the serial path does —
#: and, with a cache dir, share the persistent disk tier with every
#: other worker.
_WORKER_ENGINES: dict[
    tuple[LocatorConfig, ConsumerConfig, str | None], Engine
] = {}


def _sweep_worker(
    job: tuple,
) -> tuple[list[dict[str, object]], dict[str, tuple[int, int]]]:
    """Process-pool entry: run one sweep unit in this worker's engine.

    Returns the unit's rows plus the engine's cache-stats *delta* for
    the unit, so the coordinating engine can aggregate hit/miss
    counters across workers.

    Fault injection: ``_REPRO_KILL_SWEEP_WORKER=<dataset>`` SIGKILLs
    the pool worker that picks up that dataset's unit — only here, in
    pool workers, so the coordinator's serial recovery path survives.
    The crash tests use it to break the pool deterministically.
    """
    if os.environ.get("_REPRO_KILL_SWEEP_WORKER") == job[0]:
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    locator, consumer, cache_dir = job[-3], job[-2], job[-1]
    engine = _WORKER_ENGINES.get((locator, consumer, cache_dir))
    if engine is None:
        engine = _WORKER_ENGINES.setdefault(
            (locator, consumer, cache_dir),
            Engine(locator=locator, consumer=consumer, cache_dir=cache_dir),
        )
    before = engine._stats_snapshot()
    rows = engine._sweep_unit(job)
    after = engine._stats_snapshot()
    delta = {
        kind: (hits - before.get(kind, (0, 0))[0], misses - before.get(kind, (0, 0))[1])
        for kind, (hits, misses) in after.items()
    }
    return rows, delta


def sweep(
    datasets: Sequence[str],
    platforms: Iterable[str],
    **kwargs: Any,
) -> list[dict[str, object]]:
    """One-shot convenience wrapper: ``Engine().sweep(...)``."""
    return Engine().sweep(datasets, list(platforms), **kwargs)
