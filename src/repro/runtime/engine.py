"""The simulation Engine: cached artifacts and batched sweeps.

The expensive parts of reproducing the paper's cross-platform tables
are *shared* between cells: five datasets × many platforms × several
model variants all reuse the same dataset surrogates, the same
self-loop-free graph copies, the same
:class:`~repro.core.types.IslandizationResult` per (graph, locator
config), and the same :class:`~repro.models.workload.Workload` per
(graph, model).  Previously each caller kept its own ad-hoc
``lru_cache`` state; :class:`Engine` centralises it behind explicit,
inspectable caches (``engine.cache_stats()``) and layers a batched
sweep API on top::

    from repro.runtime import Engine

    engine = Engine()
    rows = engine.sweep(["cora", "citeseer"], ["igcn", "awb"])
    # deterministic dataset-major × model × platform row order

``sweep(..., parallel=4)`` fans the per-(dataset, model) work units out
over a ``concurrent.futures`` process pool; each worker re-derives the
shared artifacts once for its unit, and the row order is identical to
the serial path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.config import LocatorConfig
from repro.core.islandizer import IslandLocator
from repro.core.types import IslandizationResult
from repro.errors import ConfigError, SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset, load_dataset
from repro.models.configs import ModelConfig, build_model
from repro.models.workload import Workload, build_workload
from repro.report import BaseReport
from repro.runtime.registry import get_simulator, resolve_name

__all__ = ["CacheStats", "Engine", "graph_fingerprint", "sweep"]

#: Artifact caches maintained by the Engine, in dependency order.
_CACHE_NAMES = ("dataset", "clean_graph", "islandization", "workload", "report")


@dataclass
class CacheStats:
    """Hit/miss counters for one artifact cache."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        """All lookups."""
        return self.hits + self.misses


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content digest of a graph (structure + name), usable as a key.

    :class:`CSRGraph` holds numpy arrays and is not hashable;
    :meth:`CSRGraph.fingerprint` digests the CSR bytes once per
    instance (graphs are immutable), so repeated cache lookups stay
    O(1) while still distinguishing reordered/cleaned variants that
    share a name.
    """
    return graph.fingerprint()


def _model_for(ds: Dataset, spec: str, default_variant: str = "algo") -> ModelConfig:
    """Build the model a sweep cell asks for.

    ``spec`` is ``"family"`` or ``"family:variant"`` (e.g. ``"gcn"``,
    ``"gcn:hy"``, ``"gin"``); only families with variants accept the
    suffix — anything else is an error rather than a silent drop.
    """
    family, _, variant = spec.partition(":")
    kwargs: dict[str, Any] = {}
    if family in ("gcn", "graphsage"):
        kwargs["variant"] = variant or default_variant
    elif variant:
        raise ConfigError(
            f"model family {family!r} takes no ':variant' suffix (got {spec!r})"
        )
    return build_model(family, ds.num_features, ds.num_classes, **kwargs)


class Engine:
    """Memoizing façade over the simulator registry.

    Parameters
    ----------
    locator:
        Default Island Locator configuration used for islandization
        artifacts (a simulator with a different locator config gets its
        own cache entries — the config is part of the key).
    """

    def __init__(self, *, locator: LocatorConfig | None = None) -> None:
        self.locator_config = locator or LocatorConfig()
        self._caches: dict[str, dict[Any, Any]] = {n: {} for n in _CACHE_NAMES}
        self._stats: dict[str, CacheStats] = {n: CacheStats() for n in _CACHE_NAMES}

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _memo(self, cache: str, key: Any, compute) -> Any:
        store = self._caches[cache]
        stats = self._stats[cache]
        if key in store:
            stats.hits += 1
            return store[key]
        stats.misses += 1
        value = compute()
        store[key] = value
        return value

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss counters per artifact cache (a live view)."""
        return dict(self._stats)

    def clear(self) -> None:
        """Drop every cached artifact and reset the counters.

        The :class:`CacheStats` objects are reset in place so views
        previously returned by :meth:`cache_stats` stay live.
        """
        for name in _CACHE_NAMES:
            self._caches[name].clear()
            self._stats[name].hits = 0
            self._stats[name].misses = 0

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def dataset(
        self,
        name: str,
        *,
        scale: float | None = None,
        seed: int = 7,
        with_features: bool = False,
    ) -> Dataset:
        """Cached :func:`repro.graph.load_dataset`."""
        key = (name, scale, seed, with_features)
        return self._memo(
            "dataset",
            key,
            lambda: load_dataset(
                name, scale=scale, seed=seed, with_features=with_features
            ),
        )

    def clean_graph(self, graph: CSRGraph) -> CSRGraph:
        """Cached self-loop-free copy of ``graph``."""
        key = graph_fingerprint(graph)
        return self._memo("clean_graph", key, graph.without_self_loops)

    def islandization(
        self, graph: CSRGraph, config: LocatorConfig | None = None
    ) -> IslandizationResult:
        """Cached Island Locator result for (graph, locator config).

        ``graph`` may still carry self-loops; the cached clean copy is
        islandized, mirroring ``IGCNAccelerator.islandize``.
        """
        config = config or self.locator_config
        clean = self.clean_graph(graph)
        key = (graph_fingerprint(clean), config)
        return self._memo(
            "islandization", key, lambda: IslandLocator(config).run(clean)
        )

    def workload(
        self, graph: CSRGraph, model: ModelConfig, *, feature_density: float = 1.0
    ) -> Workload:
        """Cached operation-count workload for (graph, model, density)."""
        key = (graph_fingerprint(graph), model, feature_density)
        return self._memo(
            "workload",
            key,
            lambda: build_workload(graph, model, feature_density=feature_density),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        platform: str,
        data: Dataset | CSRGraph,
        model: ModelConfig | None = None,
        *,
        feature_density: float | None = None,
        **opts: Any,
    ) -> BaseReport:
        """Run ``platform`` on a dataset or raw graph through the registry.

        When ``data`` is a :class:`Dataset`, the model defaults to the
        paper's 2-layer GCN at the dataset's dimensions and
        ``feature_density`` to the published value.  Reports of
        option-free runs are cached, so experiments sharing a cell get
        the same object back.
        """
        ds = data if isinstance(data, Dataset) else None
        graph = ds.graph if ds is not None else data
        if model is None:
            if ds is None:
                raise SimulationError(
                    "simulate() needs an explicit model when given a raw graph"
                )
            model = _model_for(ds, "gcn")
        if feature_density is None:
            feature_density = ds.feature_density if ds is not None else 1.0

        key = (resolve_name(platform), graph_fingerprint(graph), model, feature_density)
        if opts:
            # Functional runs etc. carry unhashable payloads: bypass the
            # report cache entirely (no stats — this is not a lookup).
            return self._run(platform, graph, model, feature_density, opts)
        return self._memo(
            "report", key, lambda: self._run(platform, graph, model, feature_density, {})
        )

    def _run(
        self,
        platform: str,
        graph: CSRGraph,
        model: ModelConfig,
        feature_density: float,
        opts: dict[str, Any],
    ) -> BaseReport:
        simulator = get_simulator(platform)
        return simulator.simulate(
            graph, model, feature_density=feature_density, engine=self, **opts
        )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        datasets: Sequence[str],
        platforms: Sequence[str],
        *,
        models: Sequence[str] = ("gcn",),
        variant: str = "algo",
        scale: float | None = None,
        seed: int = 7,
        parallel: int | bool | None = None,
    ) -> list[dict[str, object]]:
        """Batched cross-product sweep: datasets × models × platforms.

        Returns one shared-schema summary row (see
        :data:`repro.report.SUMMARY_FIELDS`) per cell, ordered
        dataset-major, then model, then platform — deterministically,
        whether serial or parallel.

        ``parallel`` — ``None``/``0``/``False`` runs serially in this
        process (sharing this engine's caches across all cells);
        ``True`` or a worker count fans the (dataset, model) units out
        over a process pool.  Rows are identical either way.
        """
        platforms = [resolve_name(p) for p in platforms]
        jobs = [
            (name, scale, seed, spec, variant, tuple(platforms), self.locator_config)
            for name in datasets
            for spec in models
        ]
        if not parallel:
            rows: list[dict[str, object]] = []
            for job in jobs:
                rows.extend(self._sweep_unit(job))
            return rows
        max_workers = None if parallel is True else int(parallel)
        if max_workers is not None and max_workers < 1:
            raise ConfigError(
                f"parallel must be a positive worker count (got {parallel})"
            )
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            chunks = list(pool.map(_sweep_worker, jobs))
        return [row for chunk in chunks for row in chunk]

    def _sweep_unit(self, job: tuple) -> list[dict[str, object]]:
        """All platform rows of one (dataset, model) sweep cell."""
        name, scale, seed, spec, variant, platforms, _locator = job
        ds = self.dataset(name, scale=scale, seed=seed)
        model = _model_for(ds, spec, variant)
        return [
            self.simulate(platform, ds, model).base_summary()
            for platform in platforms
        ]


#: Per-worker-process engines, keyed by locator config, so sweep units
#: that land in the same pool worker share datasets and islandizations
#: just like the serial path does.
_WORKER_ENGINES: dict[LocatorConfig, Engine] = {}


def _sweep_worker(job: tuple) -> list[dict[str, object]]:
    """Process-pool entry: run one sweep unit in this worker's engine."""
    locator = job[-1]
    engine = _WORKER_ENGINES.get(locator)
    if engine is None:
        engine = _WORKER_ENGINES.setdefault(locator, Engine(locator=locator))
    return engine._sweep_unit(job)


def sweep(
    datasets: Sequence[str],
    platforms: Iterable[str],
    **kwargs: Any,
) -> list[dict[str, object]]:
    """One-shot convenience wrapper: ``Engine().sweep(...)``."""
    return Engine().sweep(datasets, list(platforms), **kwargs)
