"""Durable experiment queue: fault-tolerant sweep-as-a-service.

``Engine.sweep`` runs the paper's evaluation grid (§4: datasets ×
models × platforms) as one in-process job list — fine on a laptop,
fatal at fleet scale: a single OOM-killed pool worker raises
``BrokenProcessPool``, and nothing survives a coordinator crash.  This
module turns the grid into a *persistent* queue à la py_experimenter:

* :class:`ExperimentQueue` — a SQLite (WAL-mode) table whose rows are
  ``(dataset, model, platform, config-digest)`` cells with status
  (``pending``/``claimed``/``done``/``error``), owner, lease deadline,
  attempt count, error text and a result-summary column.  The grid is
  defined once (:meth:`ExperimentQueue.submit`, idempotent); any number
  of worker processes — on any host sharing the disk artifact store —
  claim cells via one atomic ``UPDATE … RETURNING`` transaction,
  heartbeat their lease while computing, and write the summary row
  back.
* Crash recovery — a claim whose lease expires (worker SIGKILLed,
  wedged, or partitioned away) is *reaped*: the cell returns to
  ``pending`` with its attempt count bumped and an exponential backoff,
  so the next claimant retries it.  Cells that exhaust their retry
  budget are quarantined as ``error`` rows with the failure text
  preserved — never silently dropped.  Completion and heartbeats are
  fenced by ``(owner, status)`` guards, so a reaped worker that wakes
  up late cannot overwrite a retry's result.
* :func:`work` — the worker loop (``repro queue work``): claim →
  heartbeat → simulate through a normal :class:`~repro.runtime.Engine`
  (sharing the content-addressed disk store, so retries warm-start) →
  complete/fail, until the queue drains.

``Engine.sweep(..., queue=path)`` submits the grid, drives local
workers, and folds the table back into the exact rows the in-process
path produces — byte-identically, in the same deterministic
dataset-major order (``tests/test_queue.py`` pins this, SIGKILL
included).

Fault injection: setting ``REPRO_QUEUE_CELL_DELAY`` (seconds) makes a
worker sleep inside each claimed cell — the hook the crash-recovery
tests and CI's queue-smoke job use to kill a worker reliably mid-cell.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import sqlite3
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.core.config import ConsumerConfig, LocatorConfig
from repro.errors import ConfigError, SimulationError
from repro.runtime.engine import Engine, _model_for
from repro.runtime.registry import resolve_name
from repro.serialize import config_digest

__all__ = [
    "CELL_STATUSES",
    "ClaimedCell",
    "ExperimentQueue",
    "QueueStatus",
    "SubmitReport",
    "WorkReport",
    "default_queue_path",
    "work",
]

#: Cell lifecycle states.  ``pending → claimed → done`` is the happy
#: path; ``claimed → pending`` on failure/lease expiry (attempts
#: permitting), ``claimed → error`` once the retry budget is spent.
CELL_STATUSES = ("pending", "claimed", "done", "error")

#: Fault-injection hook: seconds each worker sleeps inside a claimed
#: cell (under heartbeat).  Lets tests and CI SIGKILL a worker
#: deterministically mid-cell.
CELL_DELAY_ENV = "REPRO_QUEUE_CELL_DELAY"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS configs (
    digest   TEXT PRIMARY KEY,
    locator  TEXT NOT NULL,
    consumer TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    id             INTEGER PRIMARY KEY,
    ordinal        INTEGER NOT NULL,
    dataset        TEXT NOT NULL,
    model          TEXT NOT NULL,
    platform       TEXT NOT NULL,
    scale          TEXT NOT NULL,
    seed           INTEGER NOT NULL,
    variant        TEXT NOT NULL,
    config_digest  TEXT NOT NULL REFERENCES configs(digest),
    status         TEXT NOT NULL DEFAULT 'pending',
    owner          TEXT,
    lease_deadline REAL,
    not_before     REAL NOT NULL DEFAULT 0,
    attempts       INTEGER NOT NULL DEFAULT 0,
    error          TEXT,
    result         TEXT,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL,
    UNIQUE (dataset, model, platform, scale, seed, variant, config_digest)
);
CREATE INDEX IF NOT EXISTS idx_cells_claim
    ON cells (status, not_before, ordinal);
"""

#: Whether this interpreter's SQLite speaks ``UPDATE … RETURNING``
#: (3.35+, 2021).  Older libraries fall back to a select-then-update
#: inside the same immediate transaction — equally atomic, two steps.
_HAS_RETURNING = sqlite3.sqlite_version_info >= (3, 35, 0)


def default_queue_path() -> str:
    """The conventional queue location.

    ``REPRO_QUEUE_DB`` wins when set; otherwise ``.repro-queue.sqlite``
    in the working directory (a queue is an experiment-campaign
    artifact, not a per-user cache, so it defaults alongside the run).
    """
    return os.environ.get("REPRO_QUEUE_DB") or ".repro-queue.sqlite"


def _pair_digest(locator: LocatorConfig, consumer: ConsumerConfig) -> str:
    """Stable digest of one (locator, consumer) configuration pair."""
    return f"{config_digest(locator)}:{config_digest(consumer)}"


@dataclass(frozen=True)
class ClaimedCell:
    """One leased experiment cell, as handed to a worker."""

    id: int
    ordinal: int
    dataset: str
    model: str
    platform: str
    scale: float | None
    seed: int
    variant: str
    config_digest: str
    attempts: int
    lease_deadline: float


@dataclass(frozen=True)
class SubmitReport:
    """What one grid submission did.

    ``cell_ids`` lists the grid's cells in deterministic sweep order
    (dataset-major, then model, then platform) whether each cell was
    inserted by this call or already present — the fold order
    :meth:`ExperimentQueue.results` reproduces.
    """

    cell_ids: tuple[int, ...]
    added: int
    reused: int


@dataclass(frozen=True)
class QueueStatus:
    """Point-in-time queue summary (``repro queue status``)."""

    path: str
    counts: dict[str, int]
    total: int
    expired: int
    errors: list[dict[str, Any]]

    @property
    def drained(self) -> bool:
        """No runnable work left (every cell is done or quarantined)."""
        return self.counts["pending"] == 0 and self.counts["claimed"] == 0


@dataclass
class WorkReport:
    """What one :func:`work` loop did before exiting."""

    owner: str
    done: int = 0
    failed: int = 0
    lost: int = 0
    cell_ids: list[int] = field(default_factory=list)


class ExperimentQueue:
    """SQLite-backed durable grid of experiment cells.

    Parameters
    ----------
    path:
        Queue database file.  Created (WAL mode) on first use; any
        number of processes/hosts sharing the file (and the disk
        artifact store) may open it concurrently.
    lease_s / max_attempts / backoff_s:
        Queue-wide policy: default claim lease, per-cell retry budget
        (attempts beyond it quarantine the cell as ``error``), and the
        base of the exponential retry backoff (``backoff_s * 2**(n-1)``
        after the n-th failure).  Persisted in the queue's ``meta``
        table on first set, so every worker sees one policy; passing a
        value on an existing queue updates it.

    Thread-safety: one instance may be shared across threads (the
    worker's heartbeat thread does); every statement runs under an
    internal lock on one autocommit connection, with multi-statement
    operations wrapped in ``BEGIN IMMEDIATE`` transactions.
    """

    _DEFAULTS = {"lease_s": 60.0, "max_attempts": 3, "backoff_s": 0.5}

    def __init__(
        self,
        path: str | Path,
        *,
        lease_s: float | None = None,
        max_attempts: int | None = None,
        backoff_s: float | None = None,
    ) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False,
            isolation_level=None,
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
        for key, value in (
            ("lease_s", lease_s),
            ("max_attempts", max_attempts),
            ("backoff_s", backoff_s),
        ):
            if value is None:
                continue
            if float(value) <= 0:
                raise ConfigError(f"{key} must be positive (got {value})")
            self._meta_set(key, repr(float(value)) if key != "max_attempts"
                           else repr(int(value)))

    def close(self) -> None:
        """Close the underlying connection (the file remains)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ExperimentQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Meta / policy
    # ------------------------------------------------------------------
    def _meta_set(self, key: str, value: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, value),
            )

    def _meta_get(self, key: str) -> str | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key=?", (key,)
            ).fetchone()
        return None if row is None else row["value"]

    def _policy(self, key: str) -> float:
        raw = self._meta_get(key)
        return self._DEFAULTS[key] if raw is None else float(raw)

    @property
    def lease_s(self) -> float:
        """Default claim lease in seconds."""
        return self._policy("lease_s")

    @property
    def max_attempts(self) -> int:
        """Retry budget: attempts beyond this quarantine the cell."""
        return int(self._policy("max_attempts"))

    @property
    def backoff_s(self) -> float:
        """Base of the exponential retry backoff."""
        return self._policy("backoff_s")

    @property
    def cache_dir(self) -> str | None:
        """Disk-store hint recorded at submit time (workers default to it)."""
        return self._meta_get("cache_dir")

    # ------------------------------------------------------------------
    # Grid definition
    # ------------------------------------------------------------------
    def submit(
        self,
        datasets: Sequence[str],
        platforms: Sequence[str],
        *,
        models: Sequence[str] = ("gcn",),
        variant: str = "algo",
        scale: float | None = None,
        seed: int = 7,
        locator: LocatorConfig | None = None,
        consumer: ConsumerConfig | None = None,
        cache_dir: str | None = None,
    ) -> SubmitReport:
        """Define (or re-assert) one sweep grid; idempotent.

        Every ``dataset × model × platform`` cell is inserted once —
        resubmitting the same grid (a coordinator restart, a second
        host joining) finds the existing cells, whatever their status,
        and never duplicates or resets them.  Returns the grid's cell
        ids in deterministic sweep order, the fold order of
        :meth:`results`.
        """
        locator = locator or LocatorConfig()
        consumer = consumer or ConsumerConfig()
        platforms = [resolve_name(p) for p in platforms]
        digest = _pair_digest(locator, consumer)
        scale_key = "" if scale is None else repr(float(scale))
        now = time.time()
        cell_ids: list[int] = []
        added = 0
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR IGNORE INTO configs (digest, locator, consumer) "
                    "VALUES (?, ?, ?)",
                    (
                        digest,
                        json.dumps(dataclasses.asdict(locator), sort_keys=True),
                        json.dumps(dataclasses.asdict(consumer), sort_keys=True),
                    ),
                )
                row = self._conn.execute(
                    "SELECT COALESCE(MAX(ordinal), -1) AS top FROM cells"
                ).fetchone()
                ordinal = int(row["top"]) + 1
                for dataset in datasets:
                    for spec in models:
                        for platform in platforms:
                            identity = (dataset, spec, platform, scale_key,
                                        int(seed), variant, digest)
                            cur = self._conn.execute(
                                "INSERT OR IGNORE INTO cells (ordinal, dataset,"
                                " model, platform, scale, seed, variant,"
                                " config_digest, created_at, updated_at)"
                                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                                (ordinal, *identity, now, now),
                            )
                            if cur.rowcount:
                                added += 1
                                ordinal += 1
                            found = self._conn.execute(
                                "SELECT id FROM cells WHERE dataset=? AND"
                                " model=? AND platform=? AND scale=? AND"
                                " seed=? AND variant=? AND config_digest=?",
                                identity,
                            ).fetchone()
                            cell_ids.append(int(found["id"]))
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        if cache_dir is not None:
            self._meta_set("cache_dir", str(cache_dir))
        return SubmitReport(
            cell_ids=tuple(cell_ids), added=added,
            reused=len(cell_ids) - added,
        )

    def configs_for(self, digest: str) -> tuple[LocatorConfig, ConsumerConfig]:
        """Rebuild the (locator, consumer) pair a cell was submitted with."""
        with self._lock:
            row = self._conn.execute(
                "SELECT locator, consumer FROM configs WHERE digest=?",
                (digest,),
            ).fetchone()
        if row is None:
            raise SimulationError(
                f"queue {self.path}: no config recorded for digest {digest!r}"
            )
        return (
            LocatorConfig(**json.loads(row["locator"])),
            ConsumerConfig(**json.loads(row["consumer"])),
        )

    # ------------------------------------------------------------------
    # Claim / lease state machine
    # ------------------------------------------------------------------
    def claim(
        self, owner: str, *, lease_s: float | None = None,
        now: float | None = None,
    ) -> ClaimedCell | None:
        """Atomically claim the next runnable cell, or ``None``.

        Expired leases are reaped first (every claimant doubles as the
        reaper, so a SIGKILLed worker's cell is retried by whoever
        claims next — no dedicated daemon required).  The claim itself
        is a single ``UPDATE … RETURNING`` against the oldest
        ``pending`` cell whose backoff has elapsed; concurrent
        claimants racing one cell serialize on SQLite's write lock and
        exactly one wins.
        """
        now = time.time() if now is None else now
        lease = self.lease_s if lease_s is None else float(lease_s)
        self.reap(now=now)
        fields = ("id, ordinal, dataset, model, platform, scale, seed,"
                  " variant, config_digest, attempts, lease_deadline")
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if _HAS_RETURNING:
                    row = self._conn.execute(
                        "UPDATE cells SET status='claimed', owner=?,"
                        " lease_deadline=?, updated_at=?"
                        " WHERE id = (SELECT id FROM cells WHERE"
                        "  status='pending' AND not_before<=?"
                        "  ORDER BY ordinal LIMIT 1)"
                        f" RETURNING {fields}",
                        (owner, now + lease, now, now),
                    ).fetchone()
                else:  # pragma: no cover - SQLite < 3.35
                    row = self._conn.execute(
                        "SELECT id FROM cells WHERE status='pending' AND"
                        " not_before<=? ORDER BY ordinal LIMIT 1",
                        (now,),
                    ).fetchone()
                    if row is not None:
                        self._conn.execute(
                            "UPDATE cells SET status='claimed', owner=?,"
                            " lease_deadline=?, updated_at=? WHERE id=?",
                            (owner, now + lease, now, row["id"]),
                        )
                        row = self._conn.execute(
                            f"SELECT {fields} FROM cells WHERE id=?",
                            (row["id"],),
                        ).fetchone()
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        if row is None:
            return None
        return ClaimedCell(
            id=int(row["id"]),
            ordinal=int(row["ordinal"]),
            dataset=row["dataset"],
            model=row["model"],
            platform=row["platform"],
            scale=float(row["scale"]) if row["scale"] else None,
            seed=int(row["seed"]),
            variant=row["variant"],
            config_digest=row["config_digest"],
            attempts=int(row["attempts"]),
            lease_deadline=float(row["lease_deadline"]),
        )

    def heartbeat(
        self, cell_id: int, owner: str, *, lease_s: float | None = None,
        now: float | None = None,
    ) -> bool:
        """Extend a claim's lease; False means the lease was lost.

        Fenced on ``(owner, status='claimed')``: a worker whose cell
        was reaped (and possibly re-claimed by someone else) gets
        ``False`` and must discard its in-flight result.
        """
        now = time.time() if now is None else now
        lease = self.lease_s if lease_s is None else float(lease_s)
        with self._lock:
            cur = self._conn.execute(
                "UPDATE cells SET lease_deadline=?, updated_at=?"
                " WHERE id=? AND owner=? AND status='claimed'",
                (now + lease, now, cell_id, owner),
            )
        return cur.rowcount == 1

    def complete(self, cell_id: int, owner: str, row: dict[str, Any]) -> bool:
        """Record a cell's summary row and mark it ``done``.

        Same fencing as :meth:`heartbeat`; a late completion after a
        reap returns False and writes nothing.
        """
        payload = json.dumps(row)
        with self._lock:
            cur = self._conn.execute(
                "UPDATE cells SET status='done', result=?, error=NULL,"
                " lease_deadline=NULL, updated_at=?"
                " WHERE id=? AND owner=? AND status='claimed'",
                (payload, time.time(), cell_id, owner),
            )
        return cur.rowcount == 1

    def fail(
        self, cell_id: int, owner: str, error: str, *,
        now: float | None = None,
    ) -> str | None:
        """Record a cell failure; returns the cell's new status.

        Within the retry budget the cell goes back to ``pending`` with
        an exponential backoff (``backoff_s * 2**(attempts-1)``); once
        the budget is spent it is quarantined as ``error`` with the
        failure text preserved.  Returns ``None`` when the lease was
        already lost (fenced like :meth:`complete`).
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT attempts FROM cells WHERE id=? AND owner=?"
                    " AND status='claimed'",
                    (cell_id, owner),
                ).fetchone()
                if row is None:
                    status = None
                else:
                    status = self._requeue(cell_id, int(row["attempts"]) + 1,
                                           error, now)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return status

    def _requeue(self, cell_id: int, attempts: int, error: str,
                 now: float) -> str:
        """Shared failure bookkeeping (caller holds the transaction)."""
        if attempts >= self.max_attempts:
            status, not_before = "error", 0.0
        else:
            status = "pending"
            not_before = now + self.backoff_s * 2 ** (attempts - 1)
        self._conn.execute(
            "UPDATE cells SET status=?, owner=NULL, lease_deadline=NULL,"
            " not_before=?, attempts=?, error=?, updated_at=? WHERE id=?",
            (status, not_before, attempts, error, now, cell_id),
        )
        return status

    def reap(self, *, now: float | None = None) -> list[int]:
        """Reclaim every claimed cell whose lease expired.

        A reaped lease costs an attempt, exactly like an in-worker
        failure — a cell that keeps killing its workers ends up
        quarantined instead of crash-looping the fleet forever.
        Returns the reclaimed cell ids.
        """
        now = time.time() if now is None else now
        reaped: list[int] = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._conn.execute(
                    "SELECT id, owner, attempts FROM cells WHERE"
                    " status='claimed' AND lease_deadline < ?",
                    (now,),
                ).fetchall()
                for row in rows:
                    self._requeue(
                        int(row["id"]), int(row["attempts"]) + 1,
                        f"lease expired (owner {row['owner']}, "
                        f"attempt {int(row['attempts']) + 1})",
                        now,
                    )
                    reaped.append(int(row["id"]))
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return reaped

    def retry(self) -> int:
        """Requeue every quarantined ``error`` cell; returns the count.

        Attempts reset to zero (the operator asked for a fresh budget);
        the old error text stays on the row until the retry resolves.
        """
        with self._lock:
            cur = self._conn.execute(
                "UPDATE cells SET status='pending', owner=NULL,"
                " lease_deadline=NULL, not_before=0, attempts=0,"
                " updated_at=? WHERE status='error'",
                (time.time(),),
            )
        return cur.rowcount

    # ------------------------------------------------------------------
    # Inspection / folding
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Cells per status (all four statuses always present)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM cells GROUP BY status"
            ).fetchall()
        out = {status: 0 for status in CELL_STATUSES}
        for row in rows:
            out[row["status"]] = int(row["n"])
        return out

    def status(self, *, now: float | None = None) -> QueueStatus:
        """Counts plus quarantined-cell detail (``repro queue status``)."""
        now = time.time() if now is None else now
        counts = self.counts()
        with self._lock:
            expired = self._conn.execute(
                "SELECT COUNT(*) AS n FROM cells WHERE status='claimed'"
                " AND lease_deadline < ?",
                (now,),
            ).fetchone()
            errors = self._conn.execute(
                "SELECT id, dataset, model, platform, attempts, error"
                " FROM cells WHERE status='error' ORDER BY ordinal"
            ).fetchall()
        return QueueStatus(
            path=self.path,
            counts=counts,
            total=sum(counts.values()),
            expired=int(expired["n"]),
            errors=[dict(row) for row in errors],
        )

    def results(self, cell_ids: Sequence[int] | None = None) -> list[dict[str, Any]]:
        """Fold ``done`` cells back into summary rows.

        With ``cell_ids`` (a :class:`SubmitReport`'s grid) rows come
        back in that order; without, every done cell in ordinal order.
        Raises :class:`SimulationError` — quarantined errors quoted,
        never silent — if any requested cell is not ``done``.
        """
        with self._lock:
            if cell_ids is None:
                rows = self._conn.execute(
                    "SELECT id, status, result, error FROM cells"
                    " ORDER BY ordinal"
                ).fetchall()
            else:
                marks = ",".join("?" * len(cell_ids))
                fetched = self._conn.execute(
                    f"SELECT id, status, result, error FROM cells"
                    f" WHERE id IN ({marks})",
                    tuple(cell_ids),
                ).fetchall()
                by_id = {int(row["id"]): row for row in fetched}
                missing = [i for i in cell_ids if i not in by_id]
                if missing:
                    raise SimulationError(
                        f"queue {self.path}: {len(missing)} grid cells "
                        f"missing from the table (ids {missing[:5]}…)"
                    )
                rows = [by_id[i] for i in cell_ids]
        incomplete = [row for row in rows if row["status"] != "done"]
        if incomplete:
            detail = "; ".join(
                f"cell {int(row['id'])} {row['status']}"
                + (f": {row['error'].splitlines()[-1]}" if row["error"] else "")
                for row in incomplete[:3]
            )
            raise SimulationError(
                f"queue {self.path}: {len(incomplete)} cells not done "
                f"({detail})"
            )
        return [json.loads(row["result"]) for row in rows]


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
class _Heartbeat(threading.Thread):
    """Extends one claim's lease until stopped; flags a lost lease."""

    def __init__(self, queue: ExperimentQueue, cell_id: int, owner: str,
                 lease_s: float) -> None:
        super().__init__(daemon=True)
        self._queue = queue
        self._cell_id = cell_id
        self._owner = owner
        self._lease_s = lease_s
        self._halt = threading.Event()  # _stop would shadow Thread._stop
        self.lost = False

    def run(self) -> None:
        interval = max(self._lease_s / 3.0, 0.05)
        while not self._halt.wait(interval):
            if not self._queue.heartbeat(
                self._cell_id, self._owner, lease_s=self._lease_s
            ):
                self.lost = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join()


def _default_owner() -> str:
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


def _execute_cell(engine: Engine, cell: ClaimedCell) -> dict[str, Any]:
    """Compute one cell's summary row (module-level for test injection)."""
    ds = engine.dataset(cell.dataset, scale=cell.scale, seed=cell.seed)
    model = _model_for(ds, cell.model, cell.variant)
    return engine.summary(cell.platform, ds, model)


def work(
    path: str | Path,
    *,
    cache_dir: str | None = None,
    owner: str | None = None,
    lease_s: float | None = None,
    max_cells: int | None = None,
    poll_s: float = 0.2,
    wait: bool = True,
    cell_delay: float | None = None,
    engine: Engine | None = None,
    timeout_s: float | None = None,
) -> WorkReport:
    """Drain a queue: claim, heartbeat, simulate, complete — repeat.

    Exits when the queue is drained (no ``pending`` or ``claimed``
    cells left — with ``wait=True``, the default, a worker outlives
    other claimants' leases, so a fleet survivor finishes a SIGKILLed
    sibling's cells), after ``max_cells``, or at ``timeout_s``.

    ``cache_dir`` defaults to the hint recorded at submit time, so
    every worker — and every retry — shares the content-addressed disk
    store and warm-starts instead of re-simulating.  ``engine``
    short-circuits engine construction for cells whose config digest
    matches (the coordinator's inline drain uses this so a serial
    ``queue=`` sweep shares its memory tier exactly like a plain
    serial sweep).

    ``cell_delay`` (or the ``REPRO_QUEUE_CELL_DELAY`` environment
    variable) sleeps inside each claimed cell under heartbeat — the
    fault-injection hook crash tests hang a victim worker on.
    """
    queue = ExperimentQueue(path)
    owner = owner or _default_owner()
    lease = queue.lease_s if lease_s is None else float(lease_s)
    if cell_delay is None:
        raw = os.environ.get(CELL_DELAY_ENV)
        cell_delay = float(raw) if raw else 0.0
    if cache_dir is None:
        cache_dir = queue.cache_dir
    engines: dict[str, Engine] = {}
    if engine is not None:
        engines[_pair_digest(engine.locator_config, engine.consumer_config)] = engine
    report = WorkReport(owner=owner)
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    try:
        while max_cells is None or report.done + report.failed < max_cells:
            if deadline is not None and time.monotonic() > deadline:
                break
            cell = queue.claim(owner, lease_s=lease)
            if cell is None:
                counts = queue.counts()
                if counts["pending"] == 0 and (
                    counts["claimed"] == 0 or not wait
                ):
                    break
                time.sleep(poll_s)
                continue
            cell_engine = engines.get(cell.config_digest)
            if cell_engine is None:
                locator, consumer = queue.configs_for(cell.config_digest)
                cell_engine = engines.setdefault(
                    cell.config_digest,
                    Engine(locator=locator, consumer=consumer,
                           cache_dir=cache_dir),
                )
            beat = _Heartbeat(queue, cell.id, owner, lease)
            beat.start()
            try:
                if cell_delay:
                    time.sleep(cell_delay)
                row = _execute_cell(cell_engine, cell)
            except Exception:
                beat.stop()
                status = queue.fail(cell.id, owner, traceback.format_exc())
                if status is None:
                    report.lost += 1
                else:
                    report.failed += 1
                continue
            beat.stop()
            if beat.lost or not queue.complete(cell.id, owner, row):
                # The lease was reaped mid-run; someone else owns the
                # retry now.  Discard — the disk store already holds
                # the artifacts, so the retry warm-starts anyway.
                report.lost += 1
            else:
                report.done += 1
                report.cell_ids.append(cell.id)
    finally:
        queue.close()
    return report
