"""Pluggable artifact stores: memory, content-addressed disk, tiers.

The paper computes its islandizations once per graph and reuses them
across every layer and experiment (§3.1's locality story); this module
is that idea applied to the simulator's own artifacts.  The Engine's
caches are backed by an :class:`ArtifactStore` — a plain
``(kind, key) → artifact`` mapping with three implementations:

* :class:`MemoryStore` — per-process dicts; holds live Python objects
  (this is the seed Engine's behaviour, now behind the protocol).
* :class:`DiskStore` — content-addressed files under a cache directory
  (``~/.cache/repro`` by default, or ``REPRO_CACHE_DIR`` /
  ``--cache-dir``).  Artifact kinds with a stable serialization
  (datasets, clean graphs, islandizations, workloads → npz; report
  summaries → JSON) persist across processes and hosts; kinds without
  one (live report objects) are simply not handled by the tier.
* :class:`TieredStore` — a memory-over-disk stack: reads walk the
  tiers in order and *promote* lower-tier hits upward, writes go to
  every tier that handles the kind.

Keys are stable strings (graph fingerprints + config digests — see
``repro.runtime.engine``), so a disk tier populated by one process —
or one parallel sweep worker — warm-starts every later one.  Filenames
are a blake2b digest of ``kind + key``; writes are atomic
(tmp-file + ``os.replace``), which makes a shared disk tier safe under
concurrent sweep workers.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import tempfile
import warnings

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, IO

from repro.core.islandizer_pincremental import load_ilstate
from repro.core.types import IslandizationResult
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset
from repro.graph.partition import GraphShard
from repro.models.workload import Workload

__all__ = [
    "MISS",
    "ARTIFACT_KINDS",
    "CacheStats",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
    "VerifyReport",
    "GCReport",
    "default_cache_dir",
    "build_store",
]

#: Sentinel returned by ``get`` when an artifact is absent.
MISS = object()

#: Artifact kinds the Engine routes through the store, in dependency
#: order.  "report" holds live report objects (memory tiers only);
#: "summary" holds their JSON-able shared-schema rows (disk-cacheable);
#: "shard" holds graph partition shards that the partitioned
#: islandizer's worker fleet memory-maps straight off the disk tier;
#: "ilstate" holds the incremental-islandization bookkeeping
#: (``IncrementalState``) recorded alongside an "islandization" under
#: the *same key*, so the pair travels together through every tier.
ARTIFACT_KINDS = (
    "dataset", "clean_graph", "shard", "islandization", "ilstate",
    "workload", "report", "summary",
)


@dataclass
class CacheStats:
    """Hit/miss counters for one artifact kind (at one tier or overall)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        """All lookups."""
        return self.hits + self.misses


class ArtifactStore:
    """Abstract ``(kind, key) → artifact`` mapping.

    ``kind`` is one of :data:`ARTIFACT_KINDS`; ``key`` is a stable
    string.  Implementations keep per-kind :class:`CacheStats` for
    every ``get`` on a kind they handle.
    """

    #: Tier label used in stats reporting.
    name = "store"

    #: True for tiers whose contents outlive the process and may be
    #: shared with other processes/hosts — ``Engine.clear()`` spares
    #: them unless explicitly asked.
    persistent = False

    def __init__(self) -> None:
        self._stats: dict[str, CacheStats] = {}

    def handles(self, kind: str) -> bool:
        """Whether this store can hold artifacts of ``kind``."""
        return True

    def get(self, kind: str, key: str) -> Any:
        """The stored artifact, or :data:`MISS`."""
        raise NotImplementedError

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store ``value`` (a no-op for unhandled kinds)."""
        raise NotImplementedError

    def clear(self, kind: str | None = None) -> None:
        """Drop every artifact (of ``kind``, or all kinds)."""
        raise NotImplementedError

    def stats(self) -> dict[str, dict[str, CacheStats]]:
        """Per-tier, per-kind lookup counters: ``{tier: {kind: stats}}``."""
        return {self.name: dict(self._stats)}

    def _record(self, kind: str, *, hit: bool) -> None:
        stats = self._stats.setdefault(kind, CacheStats())
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1


class MemoryStore(ArtifactStore):
    """In-process store holding live Python objects (no serialization)."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._data: dict[str, dict[str, Any]] = {}

    def get(self, kind: str, key: str) -> Any:
        bucket = self._data.get(kind)
        if bucket is not None and key in bucket:
            self._record(kind, hit=True)
            return bucket[key]
        self._record(kind, hit=False)
        return MISS

    def put(self, kind: str, key: str, value: Any) -> None:
        self._data.setdefault(kind, {})[key] = value

    def clear(self, kind: str | None = None) -> None:
        if kind is None:
            self._data.clear()
        else:
            self._data.pop(kind, None)

    def entries(self) -> dict[str, int]:
        """Artifact count per kind (for inspection)."""
        return {kind: len(bucket) for kind, bucket in self._data.items() if bucket}


# ----------------------------------------------------------------------
# Disk store
# ----------------------------------------------------------------------
def _npz_codec(cls) -> tuple[str, Callable, Callable]:
    return (
        ".npz",
        lambda value, fh: value.to_npz(fh),
        lambda fh: cls.from_npz(fh),
    )


def _json_encode(value: Any, fh: IO[bytes]) -> None:
    fh.write(json.dumps(value, sort_keys=False).encode())


def _json_decode(fh: IO[bytes]) -> Any:
    return json.loads(fh.read().decode())


class DiskStore(ArtifactStore):
    """Content-addressed on-disk store under one root directory.

    Layout: ``<root>/<kind>/<blake2b(kind + key)>.{npz,json}``.  Writes
    are atomic (same-directory tmp file + ``os.replace``); unreadable
    or truncated files are treated as misses and deleted, so a corrupt
    cache degrades to a cold one instead of failing the run.
    """

    name = "disk"
    persistent = True

    #: Key-space version, folded into every filename digest.  Bump it
    #: whenever artifact *semantics* change without the cache key
    #: changing (locator algorithm tweaks, cost-model fixes, codec
    #: layout changes): old files then miss instead of silently serving
    #: results computed by previous code.  2: island ids became
    #: positional (IslandizationResult npz format 2 dropped the
    #: "island_ids" array).
    VERSION = 2

    #: kind → (extension, encode(value, fh), decode(fh)).
    CODECS: dict[str, tuple[str, Callable, Callable]] = {
        "dataset": _npz_codec(Dataset),
        "clean_graph": _npz_codec(CSRGraph),
        "shard": _npz_codec(GraphShard),
        "islandization": _npz_codec(IslandizationResult),
        # ilstate decodes through a format dispatcher: format 1 is the
        # monolithic IncrementalState, format 2 the partitioned pair.
        "ilstate": (".npz", lambda value, fh: value.to_npz(fh), load_ilstate),
        "workload": _npz_codec(Workload),
        "summary": (".json", _json_encode, _json_decode),
    }

    #: Reachability index: one ``kind/filename`` line appended per
    #: completed put().  Advisory — reads never consult it; only
    #: :meth:`gc` does, to tell current-key-space artifacts from files
    #: stranded by a :data:`VERSION` bump (which are well-named and
    #: decodable, so :meth:`verify` rightly calls them intact, yet no
    #: present-day key can ever address them again).
    _INDEX_NAME = "index.log"

    #: Advisory ``fcntl`` lockfile serialising index appends against
    #: the gc sweep's index rewrite (see :meth:`_index_lock`).
    _LOCK_NAME = ".index.lock"

    def __init__(self, root: str | Path) -> None:
        super().__init__()
        # The directory is created lazily by put() so read-only paths
        # (cache stats, a warm get on a cold machine) have no side
        # effects — a typo'd --cache-dir stays visibly absent.
        self.root = Path(root).expanduser()

    def handles(self, kind: str) -> bool:
        return kind in self.CODECS

    def _path(self, kind: str, key: str) -> Path:
        ext = self.CODECS[kind][0]
        digest = hashlib.blake2b(
            f"v{self.VERSION}\x00{kind}\x00{key}".encode(), digest_size=16
        ).hexdigest()
        return self.root / kind / f"{digest}{ext}"

    def path_for(self, kind: str, key: str) -> Path:
        """On-disk location of ``(kind, key)`` — existing or not.

        This is the store's *out-of-core read path*: the partitioned
        islandizer hands worker processes this path so they can
        memory-map the artifact instead of deserializing a copy.
        """
        if not self.handles(kind):
            raise ConfigError(f"disk store has no codec for kind {kind!r}")
        return self._path(kind, key)

    def get(self, kind: str, key: str) -> Any:
        if not self.handles(kind):
            return MISS
        path = self._path(kind, key)
        if not path.exists():
            self._record(kind, hit=False)
            return MISS
        decode = self.CODECS[kind][2]
        try:
            with open(path, "rb") as fh:
                value = decode(fh)
        except Exception:
            path.unlink(missing_ok=True)
            self._record(kind, hit=False)
            return MISS
        self._record(kind, hit=True)
        return value

    def put(self, kind: str, key: str, value: Any) -> None:
        if not self.handles(kind):
            return
        path = self._path(kind, key)
        # A concurrent clear() may rmtree the kind directory between
        # our mkdir and the final rename; the second attempt re-creates
        # it.  Losing the race twice forfeits only this cache entry —
        # the computed artifact itself is already in the caller's hands.
        for attempt in (0, 1):
            try:
                self._write(kind, path, value)
                return
            except FileNotFoundError:
                if attempt:
                    return

    def _write(self, kind: str, path: Path, value: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        encode = self.CODECS[kind][1]
        # The ".tmp-" prefix keeps half-written files (e.g. a worker
        # killed mid-put) out of entries()/clear() accounting.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                encode(value, fh)
            # Publish + index under the advisory lock: without it, a
            # concurrent gc on a shared mount can walk the tree before
            # this rename lands yet rewrite the index after this append
            # lands — compacting the new line away and stranding the
            # artifact for the *next* sweep.  Holding the lock across
            # both steps makes a put land entirely before or entirely
            # after any gc's walk-and-rewrite.
            with self._index_lock():
                os.replace(tmp, path)
                self._index_add(kind, path.name)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _index_path(self) -> Path:
        return self.root / self._INDEX_NAME

    @contextlib.contextmanager
    def _index_lock(self):
        """Advisory cross-process lock over index writes and gc sweeps.

        ``fcntl.flock`` on ``<root>/.index.lock``.  Yields whether the
        lock is actually held: platforms without ``fcntl``, unwritable
        roots, flock-less filesystems (some network mounts) and
        pre-lock readers all yield ``False`` and degrade to the old
        unserialised behaviour instead of failing the operation —
        put() accepts that (the forfeit is one cache entry), while the
        *destructive* gc sweep refuses to run unlocked (see
        :meth:`gc`).
        """
        if fcntl is None or not self.root.is_dir():
            yield False
            return
        try:
            fh = open(self.root / self._LOCK_NAME, "a+b")
        except OSError:
            yield False
            return
        try:
            try:
                fcntl.flock(fh, fcntl.LOCK_EX)
            except OSError:
                yield False
                return
            yield True
        finally:
            with contextlib.suppress(OSError):
                fcntl.flock(fh, fcntl.LOCK_UN)
            fh.close()

    def _index_add(self, kind: str, name: str) -> None:
        """Append one reachability line (``v<N> <kind>/<name>``).

        One short O_APPEND write per line keeps concurrent sweep
        workers from interleaving.  The index is advisory, so an
        unwritable one degrades :meth:`gc` to its conservative sweep
        instead of failing the put.
        """
        try:
            with open(self._index_path(), "a") as fh:
                fh.write(f"v{self.VERSION} {kind}/{name}\n")
        except OSError:
            pass

    def _read_index(self) -> set[str] | None:
        """Current-version ``kind/name`` entries, or None if no index.

        Crash-tolerant: a writer SIGKILLed mid-append (or a torn page
        on a shared mount) leaves a truncated or garbled trailing line.
        Such lines are *skipped with a warning* — never an abort — so
        gc keeps working against the readable remainder; the next
        non-dry-run gc compacts the garbage away.  The skipped line's
        artifact (if its line was the one torn) is forfeited to the
        sweep — the same single-entry forfeit put() itself accepts on
        lockless stores.
        """
        path = self._index_path()
        try:
            data = path.read_bytes()
        except OSError:
            return None
        entries: set[str] = set()
        corrupt = 0
        prefix = f"v{self.VERSION} "
        for raw in data.split(b"\n"):
            if not raw:
                continue
            try:
                line = raw.decode("ascii")
            except UnicodeDecodeError:
                corrupt += 1
                continue
            if not self._valid_index_line(line):
                corrupt += 1
                continue
            if line.startswith(prefix):
                entries.add(line[len(prefix):])
        if corrupt:
            warnings.warn(
                f"{path}: skipped {corrupt} corrupt index line(s) — "
                f"likely a writer crashed mid-append; gc will compact "
                f"the index",
                RuntimeWarning,
                stacklevel=3,
            )
        return entries

    def _valid_index_line(self, line: str) -> bool:
        """Whether one index line has the shape ``_index_add`` writes.

        Current-version lines are checked strictly (known kind, a
        filename put() would produce); other-version lines — legacy
        content a later gc is entitled to ignore — only for shape.
        """
        head, sep, rest = line.partition(" ")
        if not sep or not head.startswith("v") or not head[1:].isdigit():
            return False
        kind, sep2, name = rest.partition("/")
        if not sep2 or not kind or not name or "/" in name:
            return False
        if int(head[1:]) != self.VERSION:
            return True
        if kind not in self.CODECS:
            return False
        return self._well_named(Path(name), self.CODECS[kind][0])

    @staticmethod
    def _artifact_files(directory: Path) -> list[Path]:
        """Completed artifact files in one kind directory (no tmp debris)."""
        return [
            p for p in directory.iterdir()
            if p.is_file() and not p.name.startswith(".tmp-")
        ]

    def clear(self, kind: str | None = None) -> int:
        """Delete cached files; returns how many artifacts were removed.

        Orphaned tmp files are deleted too (the whole kind directory
        goes), but only completed artifacts are counted.
        """
        kinds = [kind] if kind is not None else list(self.CODECS)
        removed = 0
        for name in kinds:
            directory = self.root / name
            if directory.is_dir():
                removed += len(self._artifact_files(directory))
                shutil.rmtree(directory)
        if kind is None:
            # Full clears drop the reachability index too; per-kind
            # clears leave stale lines for gc() to compact (they only
            # vouch for files that exist, so they resurrect nothing).
            with contextlib.suppress(OSError):
                self._index_path().unlink()
        return removed

    def entries(self) -> dict[str, tuple[int, int]]:
        """Per-kind (artifact count, total bytes) currently on disk."""
        out: dict[str, tuple[int, int]] = {}
        for kind in self.CODECS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            files = self._artifact_files(directory)
            if files:
                out[kind] = (len(files), sum(p.stat().st_size for p in files))
        return out

    def verify(self, repair: bool = False) -> "VerifyReport":
        """Integrity sweep over the cache directory.

        Classifies every file under the root:

        * **ok** — a completed artifact of a known kind that its codec
          can decode;
        * **corrupt** — right name and place, but the codec rejects it
          (truncated npz, bad digest, malformed JSON, …);
        * **orphaned** — everything else: ``.tmp-`` debris from killed
          writers, files whose name is not a digest this store would
          produce, wrong extensions, and files inside directories that
          are not artifact kinds.

        With ``repair=True`` corrupt and orphaned files are deleted
        (artifacts re-materialize on the next miss; a live writer's
        in-flight tmp file dying with them costs only that one put).
        Returns a :class:`VerifyReport`; the sweep itself never raises
        on file contents.
        """
        ok = 0
        orphaned: list[Path] = []
        corrupt: list[Path] = []
        if self.root.is_dir():
            for entry in sorted(self.root.iterdir()):
                if not entry.is_dir():
                    if entry.name not in (self._INDEX_NAME, self._LOCK_NAME):
                        orphaned.append(entry)
                    continue
                known = entry.name in self.CODECS
                ext = self.CODECS[entry.name][0] if known else ""
                decode = self.CODECS[entry.name][2] if known else None
                for path in sorted(entry.iterdir()):
                    if not path.is_file() or not known:
                        orphaned.append(path)
                    elif not self._well_named(path, ext):
                        orphaned.append(path)
                    elif self._decodes(path, decode):
                        ok += 1
                    else:
                        corrupt.append(path)
        removed = 0
        if repair:
            for path in orphaned + corrupt:
                try:
                    if path.is_dir():
                        shutil.rmtree(path)
                    else:
                        path.unlink()
                except OSError:
                    continue  # raced or unremovable: report, don't count
                removed += 1
        return VerifyReport(
            root=str(self.root),
            ok=ok,
            orphaned=[str(p) for p in orphaned],
            corrupt=[str(p) for p in corrupt],
            removed=removed,
        )

    @staticmethod
    def _well_named(path: Path, ext: str) -> bool:
        """Whether ``path`` is a filename this store's put() produces."""
        if path.name.startswith(".tmp-") or path.suffix != ext:
            return False
        stem = path.name[: -len(ext)]
        return len(stem) == 32 and all(c in "0123456789abcdef" for c in stem)

    @staticmethod
    def _decodes(path: Path, decode: Callable) -> bool:
        try:
            with open(path, "rb") as fh:
                decode(fh)
        except Exception:
            return False
        return True

    def gc(self, *, dry_run: bool = False, force: bool = False) -> "GCReport":
        """Collect unreachable files from the cache directory.

        :meth:`verify` judges files by *shape* (name, place, decodes);
        ``gc`` judges them by *reachability*.  A file is garbage when
        no ``(kind, key)`` lookup in the current key space can ever
        return it:

        * ``.tmp-`` debris and ill-named/foreign files (verify's
          orphans — including whole non-kind directories);
        * artifacts stranded by a :data:`VERSION` bump: perfectly
          decodable, but addressed by a digest no current put/get
          computes — these are invisible to ``verify`` and the reason
          ``gc`` exists.

        Stranded artifacts are recognised through the put-time
        reachability index (``index.log``).  A store with *no* index
        (populated by an older build) is swept conservatively — only
        shape-orphans go — and its surviving artifacts are adopted
        into a fresh index, so the *next* gc after a VERSION bump has
        full precision.  ``dry_run=True`` reports what would be
        removed without touching anything (index included).

        Races: the whole sweep — walk, index read, deletions, index
        rewrite — runs under the advisory ``fcntl`` index lock, so a
        concurrent writer's put (which publishes file + index line
        under the same lock) lands entirely before the walk or
        entirely after the rewrite; on shared mounts neither side can
        strand the other's artifacts.  When the lock *cannot* be held
        (``fcntl`` missing on this platform, or a filesystem that
        rejects ``flock`` — common on network mounts) a destructive
        sweep could strand a live writer's artifacts, so gc **refuses**
        with :class:`~repro.errors.ConfigError` unless the caller
        passes ``dry_run=True`` (read-only, always safe) or
        ``force=True`` (explicitly accepting the unlocked race; only
        sensible when no other writer shares the root).
        """
        if not self.root.is_dir():
            # Nothing to sweep and nothing to race: empty report,
            # no lock needed (the lockfile would have to be created
            # under a root that doesn't exist).
            return self._gc_locked(dry_run=dry_run)
        with self._index_lock() as locked:
            if not locked and not (dry_run or force):
                why = (
                    "the fcntl module is unavailable on this platform"
                    if fcntl is None else
                    f"the index lock at {self.root / self._LOCK_NAME} "
                    f"could not be acquired (unsupported or shared "
                    f"filesystem?)"
                )
                raise ConfigError(
                    f"refusing destructive gc of {self.root}: {why}. "
                    f"A concurrent writer could lose artifacts. "
                    f"Re-run with dry_run (repro cache gc --dry-run) "
                    f"to preview, or force=True (--force) if no other "
                    f"process writes to this cache."
                )
            return self._gc_locked(dry_run=dry_run)

    def _gc_locked(self, *, dry_run: bool) -> "GCReport":
        doomed: list[Path] = []
        kept: list[tuple[str, Path]] = []
        if self.root.is_dir():
            for entry in sorted(self.root.iterdir()):
                if not entry.is_dir():
                    if entry.name not in (self._INDEX_NAME, self._LOCK_NAME):
                        doomed.append(entry)
                    continue
                known = entry.name in self.CODECS
                ext = self.CODECS[entry.name][0] if known else ""
                for path in sorted(entry.iterdir()):
                    if (not path.is_file() or not known
                            or not self._well_named(path, ext)):
                        doomed.append(path)
                    else:
                        kept.append((entry.name, path))
        # Read the index only after the walk (see the race note above).
        index = self._read_index()
        if index is not None:
            reachable = [
                (kind, path) for kind, path in kept
                if f"{kind}/{path.name}" in index
            ]
            doomed.extend(path for kind, path in kept
                          if f"{kind}/{path.name}" not in index)
            kept = reachable
        freed = sum(self._size_of(path) for path in doomed)
        removed = 0
        if not dry_run:
            for path in doomed:
                try:
                    if path.is_dir():
                        shutil.rmtree(path)
                    else:
                        path.unlink()
                except OSError:
                    continue  # raced or unremovable: report, don't count
                removed += 1
            if kept or index is not None:
                # Compact (or, for a legacy store, adopt) the index.
                self._rewrite_index(kept)
        return GCReport(
            root=str(self.root),
            live=len(kept),
            removed=[str(p) for p in doomed],
            freed=freed,
            removed_count=removed,
            dry_run=dry_run,
            indexed=index is not None,
        )

    def _rewrite_index(self, kept: list[tuple[str, Path]]) -> None:
        """Atomically replace the index with the surviving entries."""
        lines = "".join(
            f"v{self.VERSION} {kind}/{path.name}\n" for kind, path in kept
        )
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
            with os.fdopen(fd, "w") as fh:
                fh.write(lines)
            os.replace(tmp, self._index_path())
        except OSError:
            with contextlib.suppress(OSError, UnboundLocalError):
                os.unlink(tmp)

    @staticmethod
    def _size_of(path: Path) -> int:
        try:
            if path.is_dir():
                return sum(
                    p.stat().st_size for p in path.rglob("*") if p.is_file()
                )
            return path.stat().st_size
        except OSError:
            return 0

    def evict(self, max_bytes: int) -> tuple[int, int]:
        """Evict least-recently-used artifacts until ≤ ``max_bytes``.

        Recency is file mtime — a read does not touch it, so this is
        LRU by *write/promotion* time, which is the granularity a
        shared sweep store needs: long campaigns keep their freshest
        islandizations and shed the oldest first.  Returns ``(removed
        artifact count, removed bytes)``.  Files vanishing concurrently
        (another worker's evict, a clear) just count as already gone.
        """
        if max_bytes < 0:
            raise ConfigError("max_bytes must be non-negative")
        files: list[tuple[float, int, Path]] = []
        for kind in self.CODECS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in self._artifact_files(directory):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                files.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in files)
        removed = freed = 0
        for _, size, path in sorted(files, key=lambda f: f[0]):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # raced with another worker's evict/clear: gone anyway
            except OSError:
                continue  # still on disk (permissions?): keep it in `total`
            else:
                removed += 1
                freed += size
            total -= size
        return removed, freed


@dataclass(frozen=True)
class VerifyReport:
    """What :meth:`DiskStore.verify` found (and, on repair, removed)."""

    root: str
    ok: int
    orphaned: list[str]
    corrupt: list[str]
    removed: int

    @property
    def clean(self) -> bool:
        """True when every file on disk is a decodable artifact."""
        return not self.orphaned and not self.corrupt


@dataclass(frozen=True)
class GCReport:
    """What :meth:`DiskStore.gc` found (and, unless dry-run, removed)."""

    root: str
    #: Reachable artifacts left in place.
    live: int
    #: Paths judged garbage (removal targets on a dry run).
    removed: list[str]
    #: Bytes those paths occupy.
    freed: int
    #: Files actually deleted (0 on a dry run or if removals raced).
    removed_count: int
    dry_run: bool
    #: Whether a reachability index existed; without one the sweep is
    #: conservative (shape-orphans only) and adopts the survivors.
    indexed: bool


class TieredStore(ArtifactStore):
    """A stack of stores: reads promote upward, writes go everywhere.

    ``get`` consults tiers in order and copies a lower-tier hit into
    every faster tier above it (so one disk read seeds the memory tier
    for the rest of the process).  ``put`` writes through to every
    tier handling the kind.
    """

    name = "tiered"

    def __init__(self, *tiers: ArtifactStore) -> None:
        super().__init__()
        if not tiers:
            raise ConfigError("TieredStore needs at least one tier")
        self.tiers = tuple(tiers)

    def handles(self, kind: str) -> bool:
        return any(tier.handles(kind) for tier in self.tiers)

    def get(self, kind: str, key: str) -> Any:
        for i, tier in enumerate(self.tiers):
            if not tier.handles(kind):
                continue
            value = tier.get(kind, key)
            if value is not MISS:
                for upper in self.tiers[:i]:
                    if upper.handles(kind):
                        upper.put(kind, key, value)
                return value
        return MISS

    def put(self, kind: str, key: str, value: Any) -> None:
        for tier in self.tiers:
            if tier.handles(kind):
                tier.put(kind, key, value)

    def clear(self, kind: str | None = None) -> None:
        for tier in self.tiers:
            tier.clear(kind)

    def stats(self) -> dict[str, dict[str, CacheStats]]:
        merged: dict[str, dict[str, CacheStats]] = {}
        for tier in self.tiers:
            for name, kinds in tier.stats().items():
                # Stacks may repeat a tier type (two DiskStores, say);
                # suffix duplicates so no tier's counters are dropped.
                label, n = name, 2
                while label in merged:
                    label = f"{name}{n}"
                    n += 1
                merged[label] = kinds
        return merged


def default_cache_dir() -> str:
    """The conventional disk-store location.

    ``REPRO_CACHE_DIR`` wins when set; otherwise ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def build_store(cache_dir: str | Path | None = None) -> ArtifactStore:
    """The Engine's default store stack.

    Without ``cache_dir``: a bare :class:`MemoryStore` (the seed
    behaviour — nothing touches disk).  With one: memory over disk.
    """
    if cache_dir is None:
        return MemoryStore()
    return TieredStore(MemoryStore(), DiskStore(cache_dir))
