"""Unified simulation runtime: registry, cached artifacts, sweeps.

The runtime is the load-bearing layer every front-end (CLI, experiment
registry, benchmarks, future serving paths) goes through:

* :func:`get_simulator` / :func:`register_simulator` — one string-keyed
  registry over every platform (``igcn``, ``awb``, ``hygcn``,
  ``sigma``, ``push``, ``pull``, and the CPU/GPU framework models),
  each exposing ``simulate(graph, model, **opts) -> BaseReport``.
* :class:`Engine` — memoizes datasets, self-loop-free graph copies,
  islandizations and workloads, and exposes ``sweep(datasets ×
  models × platforms)`` with optional process-parallel execution and
  deterministic row ordering.
"""

from repro.report import SUMMARY_FIELDS, BaseReport
from repro.runtime.engine import CacheStats, Engine, graph_fingerprint, sweep
from repro.runtime.registry import (
    IGCNSimulator,
    Simulator,
    WrappedSimulator,
    get_simulator,
    register_simulator,
    resolve_name,
    simulator_aliases,
    simulator_names,
)

__all__ = [
    "BaseReport",
    "SUMMARY_FIELDS",
    "CacheStats",
    "Engine",
    "graph_fingerprint",
    "sweep",
    "Simulator",
    "IGCNSimulator",
    "WrappedSimulator",
    "get_simulator",
    "register_simulator",
    "resolve_name",
    "simulator_names",
    "simulator_aliases",
]
