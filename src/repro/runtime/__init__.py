"""Unified simulation runtime: registry, tiered artifact store, sweeps.

This layer has no direct counterpart in the paper — it is the tooling
that makes the paper's *evaluation* (§4: five datasets × many
platforms × model variants) reproducible at scale, applying the
compute-once/reuse-everywhere locality story of §3.1 to the artifacts
themselves.  The runtime is the load-bearing layer every front-end
(CLI, experiment registry, benchmarks, future serving paths) goes
through:

* :func:`get_simulator` / :func:`register_simulator` — one string-keyed
  registry over every platform (``igcn``, ``awb``, ``hygcn``,
  ``sigma``, ``push``, ``pull``, and the CPU/GPU framework models),
  each exposing ``simulate(graph, model, **opts) -> BaseReport``.
* :class:`Engine` — memoizes datasets, self-loop-free graph copies,
  islandizations, workloads, reports and summary rows behind a
  pluggable :class:`ArtifactStore` stack, and exposes ``sweep(datasets
  × models × platforms)`` with optional process-parallel execution and
  deterministic row ordering.
* :class:`MemoryStore` / :class:`DiskStore` / :class:`TieredStore` —
  the store implementations: in-process dicts, a content-addressed
  persistent cache (``--cache-dir`` / ``REPRO_CACHE_DIR``), and the
  memory-over-disk stack the Engine composes them into so repeated
  CLI invocations and parallel sweep workers warm-start.
* :class:`ExperimentQueue` / :func:`work` — the durable
  sweep-as-a-service layer (``repro queue``): a SQLite-backed grid of
  experiment cells with leases, retries and crash recovery, drained
  by any number of worker processes sharing the disk store;
  ``Engine.sweep(queue=...)`` folds it back into the identical rows.
"""

from repro.report import SUMMARY_FIELDS, BaseReport
from repro.runtime.engine import CacheStats, Engine, graph_fingerprint, sweep
from repro.runtime.queue import (
    ClaimedCell,
    ExperimentQueue,
    QueueStatus,
    SubmitReport,
    WorkReport,
    default_queue_path,
    work,
)
from repro.runtime.registry import (
    IGCNSimulator,
    Simulator,
    WrappedSimulator,
    get_simulator,
    register_simulator,
    resolve_name,
    simulator_aliases,
    simulator_names,
)
from repro.runtime.store import (
    ARTIFACT_KINDS,
    MISS,
    ArtifactStore,
    DiskStore,
    GCReport,
    MemoryStore,
    TieredStore,
    VerifyReport,
    build_store,
    default_cache_dir,
)

__all__ = [
    "BaseReport",
    "SUMMARY_FIELDS",
    "CacheStats",
    "Engine",
    "graph_fingerprint",
    "sweep",
    "ClaimedCell",
    "ExperimentQueue",
    "QueueStatus",
    "SubmitReport",
    "WorkReport",
    "default_queue_path",
    "work",
    "Simulator",
    "IGCNSimulator",
    "WrappedSimulator",
    "get_simulator",
    "register_simulator",
    "resolve_name",
    "simulator_names",
    "simulator_aliases",
    "ARTIFACT_KINDS",
    "MISS",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
    "VerifyReport",
    "GCReport",
    "build_store",
    "default_cache_dir",
]
