"""Simulator protocol and string-keyed platform registry.

Every simulated platform of the paper's evaluation (§4.2: the I-GCN
accelerator, the AWB-GCN / HyGCN / SIGMA accelerator baselines, naive
push/pull dataflows, and the CPU/GPU framework models of Table 2) sits
behind one uniform entry point::

    from repro.runtime import get_simulator

    report = get_simulator("awb").simulate(graph, model,
                                           feature_density=0.01)

``simulate`` always returns a :class:`~repro.report.BaseReport`
subclass, so ``report.summary()`` has the same core schema regardless
of platform.  Pass ``engine=`` (an :class:`~repro.runtime.engine.Engine`)
to reuse cached intermediate artifacts (islandizations, workloads)
across calls.

New platforms register themselves with :func:`register_simulator`; the
registry is the single extension point future backends (e.g. a
HyGCN-style hybrid or GPU kernel models) plug into.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.baselines.awb_gcn import AWBGCNAccelerator
from repro.baselines.hygcn import HyGCNAccelerator
from repro.baselines.platforms import PLATFORMS, get_platform
from repro.baselines.pull import PullAccelerator
from repro.baselines.push import PushAccelerator
from repro.baselines.sigma import SigmaAccelerator
from repro.core.accelerator import IGCNAccelerator
from repro.core.config import ConsumerConfig, LocatorConfig
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.hw.config import IGCN_DEFAULT, HardwareConfig
from repro.models.configs import ModelConfig
from repro.report import BaseReport

__all__ = [
    "Simulator",
    "IGCNSimulator",
    "WrappedSimulator",
    "register_simulator",
    "resolve_name",
    "get_simulator",
    "simulator_names",
    "simulator_aliases",
]


@runtime_checkable
class Simulator(Protocol):
    """Anything that can simulate one inference on one platform."""

    name: str

    def simulate(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        feature_density: float = 1.0,
        engine: Any | None = None,
        **opts: Any,
    ) -> BaseReport:
        """Run ``model`` over ``graph`` and return a uniform report."""
        ...  # pragma: no cover - protocol


class IGCNSimulator:
    """Registry adapter for :class:`IGCNAccelerator`.

    When an ``engine`` is supplied, the islandization is fetched from
    (and stored in) the engine's artifact cache, so repeated
    simulations of the same graph — different models, variants, or
    sweep cells — islandize exactly once.
    """

    name = "igcn"

    #: This simulator consumes Engine islandizations, so its cached
    #: reports/summaries must be keyed by the effective LocatorConfig.
    uses_locator = True

    def __init__(
        self,
        hw: HardwareConfig | None = None,
        locator: LocatorConfig | None = None,
        consumer: ConsumerConfig | None = None,
    ) -> None:
        self._hw = hw
        #: None means "no explicit config": an Engine's locator/consumer
        #: configs take precedence so Engine(locator=..., consumer=...)
        #: behaves as documented.
        self._explicit_locator = locator
        self._explicit_consumer = consumer
        self.accelerator = IGCNAccelerator(hw=hw, locator=locator, consumer=consumer)

    def simulate(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        feature_density: float = 1.0,
        engine: Any | None = None,
        islandization=None,
        **opts: Any,
    ) -> BaseReport:
        """Simulate one I-GCN inference (see :meth:`IGCNAccelerator.run`)."""
        accelerator = self.accelerator
        if engine is not None:
            locator = (
                self._explicit_locator
                if self._explicit_locator is not None
                else engine.locator_config
            )
            consumer = (
                self._explicit_consumer
                if self._explicit_consumer is not None
                else engine.consumer_config
            )
            if (
                locator != accelerator.locator_config
                or consumer != accelerator.consumer_config
            ):
                accelerator = IGCNAccelerator(
                    hw=self._hw, locator=locator, consumer=consumer
                )
        if islandization is None and engine is not None:
            islandization = engine.islandization(
                graph, accelerator.locator_config
            )
        return accelerator.run(
            graph,
            model,
            feature_density=feature_density,
            islandization=islandization,
            **opts,
        )


class WrappedSimulator:
    """Registry adapter for baseline models with a ``run(...)`` method.

    Works for both :class:`~repro.baselines.common.AcceleratorModel`
    subclasses and :class:`~repro.baselines.platforms.PlatformModel`;
    when an ``engine`` is supplied, the operation-count workload is
    served from the engine's cache.
    """

    #: Baseline models never islandize: their results are independent
    #: of the engine's LocatorConfig, so cache keys omit it (no
    #: spurious re-simulation across engines with different locators).
    uses_locator = False

    def __init__(self, name: str, model: Any) -> None:
        self.name = name
        self.model = model

    def simulate(
        self,
        graph: CSRGraph,
        model: ModelConfig,
        *,
        feature_density: float = 1.0,
        engine: Any | None = None,
        workload=None,
        **opts: Any,
    ) -> BaseReport:
        """Simulate one inference on the wrapped baseline.

        An explicitly supplied ``workload`` wins over the engine cache.
        """
        if workload is None and engine is not None:
            workload = engine.workload(graph, model, feature_density=feature_density)
        return self.model.run(
            graph, model, feature_density=feature_density, workload=workload, **opts
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[..., Simulator]] = {}
_ALIASES: dict[str, str] = {}
_INSTANCES: dict[str, Simulator] = {}


def register_simulator(
    name: str,
    factory: Callable[..., Simulator],
    *,
    aliases: tuple[str, ...] = (),
) -> None:
    """Register ``factory`` under ``name`` (plus optional aliases).

    Re-registering a canonical name replaces it; an alias that would
    shadow a *different* registered platform is rejected, since
    resolve_name consults aliases first and the hijack would be silent.
    """
    key = name.strip().lower()
    for alias in aliases:
        akey = alias.strip().lower()
        taken = akey in _FACTORIES or akey in _ALIASES
        if taken and akey != key and _ALIASES.get(akey) != key:
            raise SimulationError(
                f"alias {alias!r} collides with registered platform "
                f"{_ALIASES.get(akey, akey)!r}"
            )
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)
    _ALIASES.pop(key, None)  # a canonical name wins over any stale alias
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = key


def resolve_name(name: str) -> str:
    """Canonical registry key for ``name`` (raises on unknown)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise SimulationError(
            f"unknown platform {name!r}; available: {', '.join(_FACTORIES)}"
        )
    return key


def get_simulator(name: str, **kwargs: Any) -> Simulator:
    """Look up (or construct) the simulator registered under ``name``.

    Without ``kwargs`` a shared default-configured instance is returned
    (simulators are stateless).  With ``kwargs`` a fresh instance is
    constructed — e.g. ``get_simulator("igcn", locator=LocatorConfig(
    c_max=32))``.
    """
    key = resolve_name(name)
    if kwargs:
        return _FACTORIES[key](**kwargs)
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def simulator_names() -> list[str]:
    """Canonical names of every registered platform, in registry order."""
    return list(_FACTORIES)


def simulator_aliases() -> list[str]:
    """Registered alias names (each resolves to a canonical platform)."""
    return list(_ALIASES)


def _make_pull(**kwargs: Any) -> Simulator:
    hw = kwargs.pop("hw", None) or IGCN_DEFAULT
    return WrappedSimulator("pull", PullAccelerator(hw, **kwargs))


def _make_push(**kwargs: Any) -> Simulator:
    hw = kwargs.pop("hw", None) or IGCN_DEFAULT
    return WrappedSimulator("push", PushAccelerator(hw, **kwargs))


def _make_platform(name: str, **kwargs: Any) -> Simulator:
    if kwargs:
        # PlatformModel instances are fixed calibrated rooflines; silently
        # dropping configuration would run defaults behind the caller's back.
        raise SimulationError(
            f"platform {name!r} accepts no configuration kwargs "
            f"(got {sorted(kwargs)})"
        )
    return WrappedSimulator(name, get_platform(name))


register_simulator("igcn", IGCNSimulator, aliases=("i-gcn",))
register_simulator(
    "awb",
    lambda **kw: WrappedSimulator("awb", AWBGCNAccelerator(**kw)),
    aliases=("awb-gcn",),
)
register_simulator(
    "hygcn", lambda **kw: WrappedSimulator("hygcn", HyGCNAccelerator(**kw))
)
register_simulator(
    "sigma", lambda **kw: WrappedSimulator("sigma", SigmaAccelerator(**kw))
)
register_simulator("pull", _make_pull, aliases=("pull-row-wise",))
register_simulator("push", _make_push, aliases=("push-column-wise",))
for _platform_name in PLATFORMS:
    register_simulator(
        _platform_name,
        lambda name=_platform_name, **kw: _make_platform(name, **kw),
    )
