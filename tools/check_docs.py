"""Markdown hygiene checker: local links must resolve.

Scans the repo's documentation surface — README.md, ROADMAP.md,
CHANGES.md, and everything under docs/ — for markdown links (inline
``[text](target)``
images included) and fails when a *local* target does not exist on
disk.  External links (http/https/mailto) and pure in-page anchors are
out of scope: the point is that docs referring to files in this repo
cannot rot when files move, not to probe the network from CI.

Usage::

    python tools/check_docs.py            # check the default doc set
    python tools/check_docs.py FILE...    # check specific files

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link).  CI's docs-check job runs this; ``tests/test_docs.py`` runs the
same check in the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files checked when no arguments are given.
DEFAULT_DOCS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs")

#: Inline markdown links/images: [text](target) / ![alt](target).
#: Reference-style definitions ([id]: target) are rare here and skipped.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not local files.
_EXTERNAL = re.compile(r"^(https?|ftp|mailto):", re.IGNORECASE)


def iter_doc_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into the markdown files to check."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md" and path.exists():
            files.append(path)
    return files


def broken_links(doc: Path) -> list[tuple[int, str]]:
    """(line number, target) pairs of unresolvable local links in ``doc``."""
    problems: list[tuple[int, str]] = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target) or target.startswith("#"):
                continue
            # Strip an in-page anchor from a file target.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (doc.parent / file_part).resolve()
            if not resolved.exists():
                problems.append((lineno, target))
    return problems


def check(paths: list[Path]) -> list[str]:
    """Human-readable problem lines for every broken link under ``paths``."""
    problems: list[str] = []
    for doc in iter_doc_files(paths):
        for lineno, target in broken_links(doc):
            rel = doc.relative_to(REPO_ROOT) if doc.is_relative_to(REPO_ROOT) else doc
            problems.append(f"{rel}:{lineno}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        paths = [Path(arg) for arg in argv]
        # Explicitly named paths must be checkable — a typo'd filename
        # silently yielding "all links resolve" would be a false pass.
        unusable = [
            p for p in paths
            if not p.is_dir() and not (p.suffix == ".md" and p.exists())
        ]
        if unusable:
            for path in unusable:
                reason = (
                    "not found" if not path.exists() else "not a .md file"
                )
                print(f"error: cannot check {path}: {reason}", file=sys.stderr)
            return 1
    else:
        paths = [REPO_ROOT / name for name in DEFAULT_DOCS]
    files = iter_doc_files(paths)
    if not files:
        print("error: no markdown files to check", file=sys.stderr)
        return 1
    problems = check(paths)
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        return 1
    print(f"checked {len(files)} markdown files: all local links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
