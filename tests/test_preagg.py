"""Unit tests for pre-aggregation and the 1×k window scan."""

import numpy as np
import pytest

from repro.core.preagg import ScanCounts, group_layout, scan_aggregate, scan_costs


class TestGroupLayout:
    def test_plain_tiling(self):
        starts, widths = group_layout(10, 4)
        assert starts.tolist() == [0, 4, 8]
        assert widths.tolist() == [4, 4, 2]

    def test_boundary_restarts_tiling(self):
        starts, widths = group_layout(10, 4, boundary=3)
        assert starts.tolist() == [0, 3, 7]
        assert widths.tolist() == [3, 4, 3]

    def test_empty(self):
        starts, widths = group_layout(0, 4)
        assert len(starts) == 0

    def test_boundary_at_zero_is_noop(self):
        a = group_layout(8, 4, boundary=0)
        b = group_layout(8, 4)
        assert np.array_equal(a[0], b[0])


class TestScanCosts:
    def test_full_window_costs_one(self):
        bitmap = np.ones((1, 4), dtype=bool)
        counts = scan_costs(bitmap, 4)
        assert counts.baseline_ops == 4
        assert counts.scan_ops == 1
        assert counts.windows_full == 1

    def test_subtract_path(self):
        bitmap = np.array([[1, 1, 1, 0]], dtype=bool)
        counts = scan_costs(bitmap, 4)
        # reuse = 1 + 1 = 2 < direct 3
        assert counts.scan_ops == 2
        assert counts.windows_subtract == 1

    def test_direct_path_when_sparse(self):
        bitmap = np.array([[1, 0, 0, 0]], dtype=bool)
        counts = scan_costs(bitmap, 4)
        assert counts.scan_ops == 1
        assert counts.windows_direct == 1

    def test_empty_window_skipped(self):
        bitmap = np.zeros((2, 4), dtype=bool)
        counts = scan_costs(bitmap, 4)
        assert counts.scan_ops == 0
        assert counts.windows_skipped == 2

    def test_half_full_picks_cheaper(self):
        # z=2, w=4: direct 2 vs reuse 3 -> direct.
        bitmap = np.array([[1, 1, 0, 0]], dtype=bool)
        counts = scan_costs(bitmap, 4)
        assert counts.scan_ops == 2
        assert counts.windows_direct == 1

    def test_preagg_build_cost(self):
        bitmap = np.ones((1, 8), dtype=bool)
        counts = scan_costs(bitmap, 4)
        assert counts.preagg_build_ops == 6  # two groups of 4: 3 + 3

    def test_width_one_groups_never_reuse(self):
        bitmap = np.ones((3, 1), dtype=bool)
        counts = scan_costs(bitmap, 4)
        assert counts.scan_ops == 3
        assert counts.windows_full == 0
        assert counts.preagg_build_ops == 0

    def test_boundary_prevents_straddle(self):
        # 2 hub cols (full) + 4 member cols (full): with boundary the
        # member block is one full window instead of straddling.
        bitmap = np.ones((1, 6), dtype=bool)
        with_boundary = scan_costs(bitmap, 4, boundary=2)
        without = scan_costs(bitmap, 4)
        assert with_boundary.scan_ops <= without.scan_ops
        assert with_boundary.windows_full == 2

    def test_pruning_rate_definition(self):
        counts = ScanCounts(baseline_ops=10, scan_ops=4, preagg_build_ops=1)
        assert counts.total_ops == 5
        assert counts.pruned_ops == 5
        assert counts.pruning_rate == pytest.approx(0.5)

    def test_merge_accumulates(self):
        a = ScanCounts(baseline_ops=5, scan_ops=3)
        b = ScanCounts(baseline_ops=2, scan_ops=1, windows_full=1)
        a.merge(b)
        assert a.baseline_ops == 7
        assert a.scan_ops == 4
        assert a.windows_full == 1

    def test_empty_bitmap(self):
        counts = scan_costs(np.zeros((0, 0), dtype=bool), 4)
        assert counts.baseline_ops == 0

    def test_never_worse_than_baseline(self, rng):
        for _ in range(20):
            bitmap = rng.random((8, 13)) < rng.random()
            counts = scan_costs(bitmap, 4, boundary=3)
            assert counts.scan_ops <= counts.baseline_ops


class TestScanAggregate:
    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    @pytest.mark.parametrize("boundary", [0, 2, 5])
    def test_lossless_vs_direct_matmul(self, rng, k, boundary):
        """Group reuse must reproduce bitmap @ xw exactly."""
        bitmap = rng.random((7, 9)) < 0.6
        xw = rng.normal(size=(9, 5))
        acc, counts = scan_aggregate(bitmap, k, xw, boundary=boundary)
        expected = bitmap.astype(float) @ xw
        assert np.allclose(acc, expected, atol=1e-12)

    def test_counts_match_cost_model(self, rng):
        """Functional and counting paths must agree op-for-op."""
        bitmap = rng.random((6, 11)) < 0.5
        xw = rng.normal(size=(11, 3))
        _, functional = scan_aggregate(bitmap, 4, xw, boundary=3)
        counting = scan_costs(bitmap, 4, boundary=3)
        assert functional.baseline_ops == counting.baseline_ops
        assert functional.scan_ops == counting.scan_ops
        assert functional.preagg_build_ops == counting.preagg_build_ops
        assert functional.windows_full == counting.windows_full
        assert functional.windows_subtract == counting.windows_subtract
        assert functional.windows_direct == counting.windows_direct

    def test_dense_island_saves_heavily(self):
        bitmap = np.ones((8, 8), dtype=bool)
        _, counts = scan_aggregate(bitmap, 4, np.ones((8, 2)))
        # 8 rows x 2 full windows = 16 ops + 6 build vs 64 baseline.
        assert counts.total_ops == 22
        assert counts.pruning_rate > 0.6

    def test_empty_bitmap_functional(self):
        acc, counts = scan_aggregate(np.zeros((0, 0), dtype=bool), 2, np.zeros((0, 3)))
        assert acc.shape == (0, 3)
        assert counts.baseline_ops == 0
