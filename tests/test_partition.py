"""Tests for graph partitioning and partitioned islandization.

Covers the partitioner's invariants (vertex-separator correctness,
shard extraction, validation), the shard serialization paths the
worker fleet depends on (npz round-trip, memory-mapped reads, the
artifact store's ``shard`` kind), the ``partitions=1`` exact-equality
oracle, and the degenerate shapes a partitioner must survive: empty
shards, all-boundary graphs, isolated nodes, and more requested parts
than components.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core import LocatorConfig, islandize, islandize_partitioned, quality_metrics
from repro.core.islandizer import IslandLocator
from repro.errors import ConfigError
from repro.graph import (
    CSRGraph,
    GraphBuilder,
    GraphPartition,
    GraphShard,
    PartitionError,
    hub_island_graph,
    partition_graph,
)
from repro.graph.generators import CommunityProfile
from repro.runtime import DiskStore
from repro.serialize import config_digest


@pytest.fixture(scope="module")
def medium_graph():
    """A hub-island graph big enough to produce non-trivial shards."""
    graph, _ = hub_island_graph(
        1200,
        CommunityProfile(island_size_mean=12.0, island_size_max=32,
                         background_fraction=0.02),
        seed=11,
        name="part-medium",
    )
    return graph.without_self_loops()


@pytest.fixture(scope="module")
def mono_result(medium_graph):
    return islandize(medium_graph, LocatorConfig())


def shard_roundtrips(shard: GraphShard, tmp_path) -> None:
    """Assert a shard survives npz, mmap, and store round-trips."""
    buf = io.BytesIO()
    shard.to_npz(buf)
    buf.seek(0)
    back = GraphShard.from_npz(buf)
    assert back.part_id == shard.part_id
    assert np.array_equal(back.global_nodes, shard.global_nodes)
    assert np.array_equal(back.graph.indptr, shard.graph.indptr)
    assert np.array_equal(back.graph.indices, shard.graph.indices)

    store = DiskStore(tmp_path / "store")
    key = f"shard-{shard.part_id}"
    store.put("shard", key, shard)
    path = store.path_for("shard", key)
    assert path.exists()
    mapped = GraphShard.from_npz_mmap(str(path))
    assert np.array_equal(mapped.global_nodes, shard.global_nodes)
    assert np.array_equal(mapped.graph.indptr, shard.graph.indptr)
    assert np.array_equal(mapped.graph.indices, shard.graph.indices)
    # The whole point of the mmap path: arrays are file-backed views
    # (CSRGraph re-wraps them as base-class ndarrays, so follow the
    # base chain to the memmap), not heap copies.
    if len(mapped.graph.indices):
        base = mapped.graph.indices
        while base.base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)


class TestPartitioner:
    @pytest.mark.parametrize("strategy", ["separator", "range"])
    def test_partition_validates(self, medium_graph, strategy):
        part = partition_graph(medium_graph, 4, strategy=strategy)
        part.validate(medium_graph)
        assert part.num_parts == 4
        owned = sum(s.num_nodes for s in part.shards) + part.num_boundary
        assert owned == medium_graph.num_nodes

    def test_separator_blocks_cross_shard_edges(self, medium_graph):
        part = partition_graph(medium_graph, 4)
        rows = np.repeat(
            np.arange(medium_graph.num_nodes, dtype=np.int64),
            medium_graph.degrees,
        )
        src = part.part_of[rows]
        dst = part.part_of[medium_graph.indices]
        assert not ((src >= 0) & (dst >= 0) & (src != dst)).any()

    def test_trivial_partition_shares_arrays(self, medium_graph):
        part = partition_graph(medium_graph, 1)
        assert part.num_parts == 1
        assert part.num_boundary == 0
        assert part.shards[0].graph is medium_graph

    def test_tampered_part_of_is_caught(self, medium_graph):
        part = partition_graph(medium_graph, 4)
        bad = part.part_of.copy()
        # Move one interior node to another shard without re-extracting.
        interior = np.flatnonzero(bad >= 0)
        bad[interior[0]] = (bad[interior[0]] + 1) % 4
        tampered = GraphPartition(
            num_nodes=part.num_nodes,
            boundary_nodes=part.boundary_nodes,
            part_of=bad,
            shards=part.shards,
            stats=part.stats,
        )
        with pytest.raises(PartitionError):
            tampered.validate(medium_graph)

    def test_bad_arguments(self, medium_graph):
        with pytest.raises(PartitionError):
            partition_graph(medium_graph, 0)
        with pytest.raises(PartitionError):
            partition_graph(medium_graph, 2, strategy="metis")

    def test_shards_roundtrip_all_paths(self, medium_graph, tmp_path):
        part = partition_graph(medium_graph, 3)
        for shard in part.shards:
            shard_roundtrips(shard, tmp_path)


class TestDegenerateShapes:
    """Satellite battery: the shapes that break naive partitioners.

    Every case validates the partition, round-trips each shard through
    the mmap shard store, and checks the partitioned islandization
    still satisfies the exact-coverage contract.
    """

    def run_case(self, graph, parts, tmp_path):
        part = partition_graph(graph, parts)
        part.validate(graph)
        for shard in part.shards:
            shard_roundtrips(shard, tmp_path)
        config = LocatorConfig(partitions=parts)
        result = islandize_partitioned(graph, config)
        result.validate()
        return part, result

    def test_empty_shard(self, tmp_path):
        # Two components, four parts: at least two shards stay empty.
        graph = (
            GraphBuilder(6, name="two-triangles")
            .add_clique([0, 1, 2])
            .add_clique([3, 4, 5])
            .build()
        )
        part, result = self.run_case(graph, 4, tmp_path)
        assert min(s.num_nodes for s in part.shards) == 0
        # The decaying threshold reaches the triangles' degree before
        # any island forms — monolithic behaves identically.
        mono = islandize(graph, LocatorConfig())
        assert result.num_islands == mono.num_islands == 0
        assert result.num_hubs == mono.num_hubs == 6

    def test_all_hubs_graph_means_only_boundary(self, tmp_path):
        # K6: every degree ties the default threshold, so the whole
        # graph becomes separator and every shard is empty.
        graph = GraphBuilder(6, name="k6").add_clique(range(6)).build()
        part, result = self.run_case(graph, 3, tmp_path)
        assert part.num_boundary == 6
        assert all(s.num_nodes == 0 for s in part.shards)
        assert result.num_islands == 0
        assert result.num_hubs == 6

    def test_star_boundary_hub(self, tmp_path):
        # The hub is boundary; the leaves are six one-node components.
        graph = GraphBuilder(7, name="star").add_star(0, range(1, 7)).build()
        part, result = self.run_case(graph, 2, tmp_path)
        assert 0 in part.boundary_nodes
        assert result.num_hubs >= 1

    def test_isolated_nodes_more_parts_than_components(self, tmp_path):
        graph = GraphBuilder(5, name="isolated").build()
        part, result = self.run_case(graph, 9, tmp_path)
        assert sum(s.num_nodes for s in part.shards) == 5
        assert result.num_islands == 5  # singleton islands

    def test_empty_graph(self, tmp_path):
        graph = GraphBuilder(0, name="empty").build()
        part, result = self.run_case(graph, 3, tmp_path)
        assert part.num_boundary == 0
        assert result.num_islands == 0
        assert result.num_hubs == 0

    def test_single_edge_many_parts(self, tmp_path):
        graph = GraphBuilder(2, name="edge").add_edge(0, 1).build()
        part, result = self.run_case(graph, 5, tmp_path)
        mono = islandize(graph, LocatorConfig())
        assert result.num_islands == mono.num_islands
        assert result.num_hubs == mono.num_hubs


class TestPartitionedEquality:
    """The partitions=1 oracle and the quality contract above it."""

    def test_single_partition_equals_monolithic(self, medium_graph,
                                                mono_result):
        part_result = islandize_partitioned(medium_graph, LocatorConfig())
        assert part_result.equals(mono_result)
        assert part_result.graph is medium_graph

    def test_single_partition_through_dispatch(self, medium_graph,
                                               mono_result):
        # islandize() keeps partitions=1 on the monolithic in-process
        # path; explicitly requesting the partitioned pipeline with one
        # shard must produce the identical result.
        assert islandize(
            medium_graph, LocatorConfig(partitions=1)
        ).equals(mono_result)

    @pytest.mark.parametrize("parts", [2, 4])
    def test_multi_partition_validates_and_replays(self, medium_graph,
                                                   parts):
        config = LocatorConfig(partitions=parts)
        result = islandize_partitioned(graph=medium_graph, config=config,
                                       max_workers=2)
        result.validate()
        # Round replay must cover every island exactly once, in
        # non-decreasing round order (the streamed consumer's contract).
        seen = 0
        last_round = -1
        for chunk in result.iter_rounds():
            assert chunk.round_id >= last_round
            last_round = chunk.round_id
            seen += len(chunk.islands)
        assert seen == result.num_islands

    def test_quality_metrics_shape(self, medium_graph, mono_result):
        part_result = islandize_partitioned(
            medium_graph, LocatorConfig(partitions=4)
        )
        for metrics in (quality_metrics(mono_result),
                        quality_metrics(part_result)):
            assert set(metrics) == {
                "islands", "islanded_nodes", "hubs", "hub_fraction",
                "classified_edge_ratio",
            }
            assert 0.0 <= metrics["classified_edge_ratio"] <= 1.0
        # Partitioning trades hubs for wall clock; it must never
        # *invent* classified edges beyond the monolithic run on this
        # graph family.
        assert (
            quality_metrics(part_result)["hub_fraction"]
            >= quality_metrics(mono_result)["hub_fraction"]
        )

    def test_range_strategy_still_exact_coverage(self, medium_graph):
        result = islandize_partitioned(
            medium_graph,
            LocatorConfig(partitions=3, partition_strategy="range"),
        )
        result.validate()

    def test_scalar_backend_shards(self, medium_graph):
        # Workers honour the configured TP-BFS backend.
        batched = islandize_partitioned(
            medium_graph, LocatorConfig(partitions=2)
        )
        scalar = islandize_partitioned(
            medium_graph, LocatorConfig(partitions=2, backend="scalar")
        )
        assert scalar.equals(batched)

    def test_rejects_self_loops(self):
        with_loops = CSRGraph.from_edges(
            3, np.array([0, 0, 1, 0]), np.array([0, 1, 2, 2])
        )
        from repro.errors import IslandizationError
        with pytest.raises(IslandizationError):
            islandize_partitioned(with_loops, LocatorConfig(partitions=2))


class TestConfigPlumbing:
    def test_partition_knobs_validated(self):
        with pytest.raises(ConfigError):
            LocatorConfig(partitions=0)
        with pytest.raises(ConfigError):
            LocatorConfig(partition_strategy="metis")

    def test_partition_knobs_rotate_digest(self):
        base = config_digest(LocatorConfig())
        assert config_digest(LocatorConfig(partitions=4)) != base
        assert config_digest(
            LocatorConfig(partition_strategy="range")
        ) != base

    def test_dispatch_uses_partitioned_pipeline(self, medium_graph):
        result = islandize(medium_graph, LocatorConfig(partitions=2))
        result.validate()
        # Partitioned runs start with the synthetic partition round 0.
        assert result.rounds[0].round_id == 0
        mono = IslandLocator(LocatorConfig()).run(medium_graph)
        assert result.num_hubs >= mono.num_hubs
