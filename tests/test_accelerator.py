"""Unit tests for the top-level I-GCN accelerator and pipeline model."""

import numpy as np
import pytest

from repro.core import ConsumerConfig, IGCNAccelerator, LocatorConfig
from repro.core.pipeline import pipelined_makespan
from repro.errors import SimulationError
from repro.models import (
    gcn_model,
    gin_model,
    graphsage_model,
    init_weights,
    reference_forward,
)


class TestPipelineMakespan:
    def test_consumer_bound(self):
        # Work released early: makespan = total work.
        assert pipelined_makespan([0.0, 1.0], [10.0, 10.0]) == 20.0

    def test_locator_bound(self):
        # Work released late: makespan = last release + its work.
        assert pipelined_makespan([100.0, 200.0], [1.0, 1.0]) == 201.0

    def test_empty(self):
        assert pipelined_makespan([], []) == 0.0

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            pipelined_makespan([0.0], [1.0, 2.0])

    def test_rejects_decreasing_releases(self):
        with pytest.raises(ValueError):
            pipelined_makespan([5.0, 1.0], [1.0, 1.0])

    def test_mixed_case(self):
        # Release 0: 5 work; release 8: 2 work -> max(0+7, 8+2) = 10.
        assert pipelined_makespan([0.0, 8.0], [5.0, 2.0]) == 10.0


class TestFunctionalEquivalence:
    """The islandized schedule must be numerically lossless."""

    @pytest.mark.parametrize("family,kwargs", [
        ("gcn", {}),
        ("sage", {}),
        ("gin", {}),
    ])
    def test_matches_reference(self, tiny_cora, family, kwargs):
        builders = {
            "gcn": gcn_model,
            "sage": graphsage_model,
            "gin": gin_model,
        }
        model = builders[family](tiny_cora.num_features, tiny_cora.num_classes)
        weights = init_weights(model, seed=9)
        acc = IGCNAccelerator()
        report = acc.run(
            tiny_cora.graph, model,
            features=tiny_cora.features, weights=weights, functional=True,
            feature_density=tiny_cora.feature_density,
        )
        reference = reference_forward(
            tiny_cora.graph.without_self_loops(), model,
            tiny_cora.features, weights,
        )
        assert np.allclose(report.outputs, reference, atol=1e-9)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_lossless_for_any_k(self, tiny_cora, k):
        model = gcn_model(tiny_cora.num_features, tiny_cora.num_classes)
        weights = init_weights(model, seed=2)
        acc = IGCNAccelerator(consumer=ConsumerConfig(preagg_k=k))
        report = acc.run(
            tiny_cora.graph, model,
            features=tiny_cora.features, weights=weights, functional=True,
            feature_density=tiny_cora.feature_density,
        )
        reference = reference_forward(
            tiny_cora.graph.without_self_loops(), model,
            tiny_cora.features, weights,
        )
        assert np.allclose(report.outputs, reference, atol=1e-9)

    def test_functional_needs_features(self, tiny_cora):
        model = gcn_model(tiny_cora.num_features, tiny_cora.num_classes)
        with pytest.raises(SimulationError):
            IGCNAccelerator().run(tiny_cora.graph, model, functional=True)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.graph import load_dataset

        ds = load_dataset("cora", scale=0.2, seed=3)
        model = gcn_model(ds.num_features, ds.num_classes)
        return IGCNAccelerator().run(
            ds.graph, model, feature_density=ds.feature_density
        )

    def test_pruning_rates_in_unit_interval(self, report):
        assert 0.0 <= report.aggregation_pruning_rate < 1.0
        assert 0.0 <= report.overall_pruning_rate < report.aggregation_pruning_rate + 1e-9

    def test_actual_macs_below_baseline(self, report):
        assert report.total_macs <= report.total_baseline_macs

    def test_latency_positive(self, report):
        assert report.latency_us > 0
        assert report.total_cycles >= report.consumer_cycles

    def test_energy_consistent(self, report):
        assert report.graphs_per_kj == pytest.approx(
            1000.0 / report.energy.total_j
        )

    def test_traffic_categories(self, report):
        breakdown = report.meter.breakdown()
        assert "features" in breakdown
        assert "adjacency" in breakdown
        assert "results" in breakdown

    def test_summary_keys(self, report):
        s = report.summary()
        assert {"graph", "latency_us", "prune_agg", "rounds"} <= set(s)

    def test_islandize_shortcut(self):
        from repro.graph import load_dataset

        ds = load_dataset("cora", scale=0.1, seed=3)
        res = IGCNAccelerator().islandize(ds.graph)
        res.validate()

    def test_precomputed_islandization_reused(self):
        from repro.graph import load_dataset

        ds = load_dataset("cora", scale=0.1, seed=3)
        acc = IGCNAccelerator()
        isl = acc.islandize(ds.graph)
        model = gcn_model(ds.num_features, ds.num_classes)
        rep = acc.run(
            ds.graph, model, feature_density=ds.feature_density,
            islandization=isl,
        )
        assert rep.islandization is isl


class TestAblationKnobs:
    def test_wider_k_changes_pruning(self, tiny_cora):
        model = gcn_model(tiny_cora.num_features, tiny_cora.num_classes)
        rates = []
        for k in (2, 6):
            acc = IGCNAccelerator(consumer=ConsumerConfig(preagg_k=k))
            rep = acc.run(
                tiny_cora.graph, model,
                feature_density=tiny_cora.feature_density,
            )
            rates.append(rep.aggregation_pruning_rate)
        assert rates[0] != rates[1]

    def test_cmax_one_degrades_pruning(self, tiny_cora):
        model = gcn_model(tiny_cora.num_features, tiny_cora.num_classes)
        small = IGCNAccelerator(locator=LocatorConfig(c_max=1)).run(
            tiny_cora.graph, model, feature_density=tiny_cora.feature_density
        )
        normal = IGCNAccelerator().run(
            tiny_cora.graph, model, feature_density=tiny_cora.feature_density
        )
        assert small.aggregation_pruning_rate <= normal.aggregation_pruning_rate


class TestDegenerateGraphs:
    """Zero-round inputs must not break the latency pipeline model."""

    @pytest.mark.parametrize("num_nodes", [0, 3])
    def test_edgeless_graph_simulates_cleanly(self, num_nodes):
        from repro.graph import CSRGraph

        graph = CSRGraph.empty(num_nodes, name="degenerate")
        model = gcn_model(4, 2)
        report = IGCNAccelerator().run(graph, model)
        # 0 nodes means zero locator rounds: no locator work, and the
        # total is just the consumer plus the pipeline fill.
        if num_nodes == 0:
            assert report.islandization.num_rounds == 0
            assert report.locator_cycles == 0.0
            assert report.total_cycles == pytest.approx(
                report.consumer_cycles + 64.0
            )
            assert report.total_macs == 0
        else:
            # Isolated nodes become singleton islands; the GCN's A+I
            # self-loop still aggregates each node with itself.
            assert report.islandization.num_islands == num_nodes
            assert report.total_macs > 0
        assert np.isfinite(report.latency_us)
        assert report.summary()["macs"] == report.total_macs
