"""Unit tests for the hardware models: config, memory, cycles, energy,
area, ring."""

import pytest

from repro.errors import ConfigError
from repro.hw import (
    AreaModel,
    CacheModel,
    HardwareConfig,
    IGCN_DEFAULT,
    LatencyModel,
    RingNetwork,
    TrafficMeter,
    compute_cycles,
    estimate_energy,
    memory_cycles,
)
from repro.hw.memory import effective_offchip_bytes


class TestHardwareConfig:
    def test_default_envelope_matches_paper(self):
        assert IGCN_DEFAULT.num_macs == 4096
        assert IGCN_DEFAULT.frequency_hz == pytest.approx(330e6)

    def test_bytes_per_cycle(self):
        hw = HardwareConfig(offchip_bandwidth_bps=330e6 * 100, frequency_hz=330e6)
        assert hw.bytes_per_cycle == pytest.approx(100)

    def test_cycles_to_us(self):
        assert IGCN_DEFAULT.cycles_to_us(330) == pytest.approx(1.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            HardwareConfig(num_macs=0)
        with pytest.raises(ConfigError):
            HardwareConfig(compute_utilization=1.5)


class TestTrafficMeter:
    def test_read_write_accumulate(self):
        m = TrafficMeter()
        m.read("features", 100)
        m.read("features", 50)
        m.write("results", 30)
        assert m.total_read_bytes == 150
        assert m.total_write_bytes == 30
        assert m.total_bytes == 180

    def test_breakdown_sorted(self):
        m = TrafficMeter()
        m.read("a", 10)
        m.read("b", 100)
        assert list(m.breakdown()) == ["b", "a"]

    def test_merge(self):
        a, b = TrafficMeter(), TrafficMeter()
        a.read("x", 5)
        b.read("x", 7)
        b.write("y", 3)
        a.merge(b)
        assert a.reads["x"] == 12
        assert a.writes["y"] == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficMeter().read("x", -1)


class TestCacheModel:
    def test_no_miss_when_fits(self):
        c = CacheModel("c", 1000)
        c.fit(500)
        assert c.miss_ratio == 0.0
        assert c.access(10, bytes_per_access=4) == 0.0

    def test_miss_ratio_formula(self):
        c = CacheModel("c", 250)
        c.fit(1000)
        assert c.miss_ratio == pytest.approx(0.75)

    def test_spill_charged_to_meter(self):
        c = CacheModel("c", 0)
        c.fit(100)
        m = TrafficMeter()
        spilled = c.access(10, bytes_per_access=4, meter=m, category="spill")
        assert spilled == 40
        assert m.reads["spill"] == 40

    def test_effective_offchip_discount(self):
        m = TrafficMeter()
        m.read("features", 1000)
        m.write("results", 500)
        assert effective_offchip_bytes(m, 2000) == 500
        assert effective_offchip_bytes(m, 300) == 1200

    def test_hidden_results_resident_eligible(self):
        m = TrafficMeter()
        m.write("hidden-results", 400)
        m.write("results", 100)
        assert effective_offchip_bytes(m, 10_000) == 100


class TestCycles:
    def test_compute_cycles(self):
        hw = HardwareConfig(num_macs=100, compute_utilization=0.5)
        assert compute_cycles(1000, hw) == pytest.approx(20.0)

    def test_memory_cycles(self):
        hw = HardwareConfig(offchip_bandwidth_bps=330e6 * 10, frequency_hz=330e6)
        assert memory_cycles(100, hw) == pytest.approx(10.0)

    def test_phase_total_overlaps(self):
        model = LatencyModel(IGCN_DEFAULT)
        phase = model.phase("p", macs=4096 * 0.8 * 100, dram_bytes=0)
        assert phase.total == pytest.approx(100.0)
        assert phase.bound == "compute"

    def test_sequential_vs_overlapped(self):
        model = LatencyModel(IGCN_DEFAULT)
        a = model.phase("a", macs=4096 * 0.8 * 10)
        b = model.phase("b", macs=4096 * 0.8 * 20)
        assert model.sequential(a, b) == pytest.approx(30.0)
        assert model.overlapped(a, b) == pytest.approx(20.0)


class TestEnergy:
    def test_static_dominates_at_paper_scale(self):
        rep = estimate_energy(
            IGCN_DEFAULT, latency_s=1.3e-6, macs=1.4e6, dram_bytes=1e5
        )
        assert rep.static_j > rep.mac_j
        assert rep.graphs_per_kj == pytest.approx(1000 / rep.total_j)

    def test_cora_ee_band(self):
        """Back-solve check: paper Cora EE ~7.1e6 Graph/kJ at 1.3 µs."""
        rep = estimate_energy(
            IGCN_DEFAULT, latency_s=1.3e-6, macs=1.4e6, dram_bytes=0
        )
        assert rep.graphs_per_kj == pytest.approx(7.1e6, rel=0.25)

    def test_zero_latency(self):
        rep = estimate_energy(IGCN_DEFAULT, latency_s=0.0, macs=0, dram_bytes=0)
        assert rep.graphs_per_kj == float("inf")


class TestArea:
    def test_paper_split(self):
        b = AreaModel(4096, 64, 8, 8).breakdown()
        assert b.locator_fraction == pytest.approx(0.34, abs=0.02)
        assert b.consumer_fraction == pytest.approx(0.66, abs=0.02)

    def test_fractions_sum_to_one(self):
        b = AreaModel().breakdown()
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_more_engines_grow_locator(self):
        small = AreaModel(num_bfs_engines=16).breakdown().locator_fraction
        big = AreaModel(num_bfs_engines=128).breakdown().locator_fraction
        assert big > small

    def test_more_macs_grow_consumer(self):
        small = AreaModel(num_macs=1024).breakdown().consumer_fraction
        big = AreaModel(num_macs=8192).breakdown().consumer_fraction
        assert big > small


class TestRing:
    def test_local_bank_no_hops(self):
        ring = RingNetwork(4)
        hops = ring.send(1, 5)  # 5 % 4 == 1: local
        assert hops == 0
        assert ring.stats.hops_travelled == 0

    def test_hop_count_wraps(self):
        ring = RingNetwork(4)
        hops = ring.send(3, 1)  # (1 - 3) mod 4 = 2
        assert hops == 2

    def test_in_network_reduction(self):
        ring = RingNetwork(4)
        ring.send(0, 2)
        reduced_hops = ring.send(0, 2)  # same link, same hub
        assert reduced_hops == 0
        assert ring.stats.in_network_reductions == 1

    def test_drain_clears_reduction_state(self):
        ring = RingNetwork(4)
        ring.send(0, 2)
        ring.drain()
        ring.send(0, 2)
        assert ring.stats.in_network_reductions == 0

    def test_invalid_pe_rejected(self):
        with pytest.raises(ValueError):
            RingNetwork(4).send(9, 0)

    def test_cycles_estimate(self):
        ring = RingNetwork(4)
        ring.send(0, 2)
        ring.send(1, 3)
        assert ring.stats.cycles_estimate(4) == pytest.approx(
            ring.stats.hops_travelled / 4
        )
