"""Unit tests for model configs, normalisation, reference forward pass."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ConfigError
from repro.models import (
    LayerSpec,
    ModelConfig,
    build_model,
    build_workload,
    gcn_model,
    gin_model,
    graphsage_model,
    init_weights,
    normalization_for,
    normalized_adjacency,
    reference_forward,
    reference_layer,
)


class TestConfigs:
    def test_gcn_algo_dims(self):
        m = gcn_model(1433, 7, variant="algo")
        assert m.layer_dims() == [(1433, 16), (16, 7)]
        assert m.aggregation == "gcn-sym"

    def test_gcn_hy_dims(self):
        m = gcn_model(1433, 7, variant="hy")
        assert m.layer_dims() == [(1433, 128), (128, 7)]

    def test_graphsage(self):
        m = graphsage_model(500, 3)
        assert m.num_layers == 2
        assert m.aggregation == "sage-mean"

    def test_gin_three_layers(self):
        m = gin_model(100, 10)
        assert m.num_layers == 3
        assert m.aggregation == "gin-sum"
        assert m.gin_eps == pytest.approx(0.1)

    def test_hidden_relu_final_none(self):
        m = gcn_model(10, 3)
        assert m.layers[0].activation == "relu"
        assert m.layers[-1].activation == "none"

    def test_build_model_dispatch(self):
        assert build_model("gcn", 10, 2).name == "gcn-algo"
        assert build_model("gin", 10, 2).name == "gin"

    def test_unknown_family(self):
        with pytest.raises(ConfigError):
            build_model("transformer", 10, 2)

    def test_unknown_variant(self):
        with pytest.raises(ConfigError):
            gcn_model(10, 2, variant="huge")

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad",
                aggregation="gcn-sym",
                layers=(LayerSpec(4, 8), LayerSpec(9, 2)),
            )

    def test_bad_activation_rejected(self):
        with pytest.raises(ConfigError):
            LayerSpec(4, 8, activation="tanh")

    def test_bad_aggregation_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(name="bad", aggregation="max", layers=(LayerSpec(4, 2),))


class TestNormalization:
    def test_gcn_sym_matches_formula(self, fig2):
        a_hat = normalized_adjacency(fig2, "gcn-sym").toarray()
        dense = fig2.to_dense() + np.eye(6)
        d = dense.sum(axis=1)
        expected = dense / np.sqrt(np.outer(d, d))
        assert np.allclose(a_hat, expected)

    def test_sage_mean_rows_sum_to_one(self, fig2):
        a_hat = normalized_adjacency(fig2, "sage-mean")
        assert np.allclose(a_hat.sum(axis=1), 1.0)

    def test_gin_sum_diagonal(self, fig2):
        a_hat = normalized_adjacency(fig2, "gin-sum", gin_eps=0.25).toarray()
        assert np.allclose(np.diag(a_hat), 1.25)

    def test_factorisation_consistent(self, fig2):
        """b_v * a_u must reconstruct every edge weight exactly."""
        spec = normalization_for(fig2, "gcn-sym")
        a_hat = normalized_adjacency(fig2, "gcn-sym").toarray()
        adj = fig2.with_self_loops().to_dense()
        rebuilt = (
            spec.target_scale[:, None] * adj * spec.source_scale[None, :]
        )
        assert np.allclose(rebuilt, a_hat)

    def test_unknown_kind(self, fig2):
        with pytest.raises(ConfigError):
            normalization_for(fig2, "max-pool")


class TestReferenceForward:
    def test_output_shape(self, fig2):
        m = gcn_model(8, 3)
        x = np.random.default_rng(0).random((6, 8))
        out = reference_forward(fig2, m, x)
        assert out.shape == (6, 3)

    def test_sparse_features_equal_dense(self, fig2):
        m = gcn_model(8, 3)
        x = np.random.default_rng(0).random((6, 8))
        x[x < 0.7] = 0.0
        w = init_weights(m, seed=1)
        dense = reference_forward(fig2, m, x, w)
        sp = reference_forward(fig2, m, sparse.csr_matrix(x), w)
        assert np.allclose(dense, sp)

    def test_deterministic_weights(self):
        m = gcn_model(8, 3)
        w1 = init_weights(m, seed=4)
        w2 = init_weights(m, seed=4)
        for a, b in zip(w1, w2):
            assert np.array_equal(a, b)

    def test_relu_applied_between_layers(self, fig2):
        m = gcn_model(4, 2)
        x = -np.ones((6, 4))
        w = [np.eye(4, 16), np.full((16, 2), 1.0)]
        a_hat = normalized_adjacency(fig2, "gcn-sym")
        hidden = reference_layer(a_hat, x, w[0], activation="relu")
        assert hidden.min() >= 0.0

    def test_weight_shape_validated(self, fig2):
        m = gcn_model(8, 3)
        x = np.zeros((6, 8))
        with pytest.raises(ConfigError):
            reference_forward(fig2, m, x, [np.zeros((3, 3)), np.zeros((16, 3))])

    def test_wrong_weight_count(self, fig2):
        m = gcn_model(8, 3)
        with pytest.raises(ConfigError):
            reference_forward(fig2, m, np.zeros((6, 8)), [np.zeros((8, 16))])

    def test_gin_self_term(self):
        """A single isolated node: GIN output = (1+eps) * x @ w."""
        from repro.graph import CSRGraph

        g = CSRGraph.empty(1)
        m = gin_model(4, 2, hidden=4, eps=0.5)
        x = np.ones((1, 4))
        w = [np.eye(4), np.eye(4), np.ones((4, 2))]
        out = reference_forward(g, m, x, w)
        assert np.allclose(out, 1.5**3 * 4)


class TestWorkload:
    def test_combination_macs(self, fig2):
        m = gcn_model(10, 2)
        w = build_workload(fig2, m, feature_density=0.5)
        layer0 = w.layers[0]
        assert layer0.feature_nnz == 6 * 10 * 0.5
        assert layer0.combination_macs == layer0.feature_nnz * 16

    def test_aggregation_includes_self_loops(self, fig2):
        m = gcn_model(10, 2)
        w = build_workload(fig2, m)
        assert w.layers[0].adjacency_nnz == fig2.num_edges + 6

    def test_gin_self_axpy_counted(self, fig2):
        m = gin_model(10, 2)
        w = build_workload(fig2, m)
        assert w.layers[0].adjacency_nnz == fig2.num_edges + 6

    def test_hidden_layers_dense(self, fig2):
        m = gcn_model(10, 2)
        w = build_workload(fig2, m, feature_density=0.1)
        assert w.layers[1].feature_nnz == 6 * 16

    def test_aggregation_fraction_in_unit_interval(self, fig2):
        m = gcn_model(100, 10)
        w = build_workload(fig2, m)
        assert 0.0 < w.aggregation_fraction < 1.0

    def test_total_macs_additive(self, fig2):
        m = gcn_model(10, 2)
        w = build_workload(fig2, m)
        assert w.total_macs == w.combination_macs + w.aggregation_macs
