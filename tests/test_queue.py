"""Durable experiment queue: leases, retries, crash recovery, folding.

The contract under test (ISSUE 9 acceptance): with any number of
workers on one queue, SIGKILLing a worker mid-cell leaves no stuck
cells — the reaper reclaims the lease, the cell is retried, and the
folded rows are byte-identical to a serial in-process ``Engine.sweep``
of the same grid; a coordinator restart resumes without re-running
``done`` cells.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import threading
import time

import pytest

from repro.cli import main
from repro.core import ConsumerConfig, LocatorConfig
from repro.errors import ConfigError, SimulationError
from repro.runtime import Engine, ExperimentQueue, work
from repro.runtime import queue as queue_mod

DATASETS = ("cora", "citeseer")
PLATFORMS = ("igcn", "awb")
GRID = {"scale": 0.15, "seed": 3}


def submit_grid(queue, **kw):
    return queue.submit(DATASETS, PLATFORMS, **{**GRID, **kw})


def serial_rows():
    return Engine().sweep(DATASETS, PLATFORMS, **GRID)


class TestSubmit:
    def test_idempotent_resubmit(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite") as q:
            first = submit_grid(q)
            again = submit_grid(q)
        assert first.added == 4 and first.reused == 0
        assert again.added == 0 and again.reused == 4
        assert again.cell_ids == first.cell_ids

    def test_cell_ids_in_sweep_order(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite") as q:
            report = submit_grid(q)
            cells = [q.claim("o") for _ in report.cell_ids]
        # Claim order == ordinal order == dataset-major sweep order.
        assert [(c.dataset, c.platform) for c in cells] == [
            ("cora", "igcn"), ("cora", "awb"),
            ("citeseer", "igcn"), ("citeseer", "awb"),
        ]

    def test_platform_aliases_resolve(self, tmp_path):
        # "awb-gcn" (the printed name) and "awb" are one cell, not two.
        with ExperimentQueue(tmp_path / "q.sqlite") as q:
            first = q.submit(("cora",), ("awb",), **GRID)
            alias = q.submit(("cora",), ("awb-gcn",), **GRID)
        assert alias.cell_ids == first.cell_ids and alias.added == 0

    def test_distinct_configs_make_distinct_cells(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite") as q:
            base = submit_grid(q)
            other = submit_grid(q, locator=LocatorConfig(c_max=32))
        assert other.added == 4
        assert not set(other.cell_ids) & set(base.cell_ids)

    def test_policy_persists_across_opens(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with ExperimentQueue(path, lease_s=5.0, max_attempts=7,
                             backoff_s=0.25):
            pass
        with ExperimentQueue(path) as q:
            assert q.lease_s == 5.0
            assert q.max_attempts == 7
            assert q.backoff_s == 0.25

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ExperimentQueue(tmp_path / "q.sqlite", lease_s=0)


class TestLeaseStateMachine:
    """Pure queue mechanics — explicit clocks, no simulation."""

    def test_claim_exhaustion(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite") as q:
            submit_grid(q)
            assert all(q.claim("o") is not None for _ in range(4))
            assert q.claim("o") is None

    def test_complete_roundtrip(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite") as q:
            ids = q.submit(("cora",), ("igcn",), **GRID).cell_ids
            cell = q.claim("o")
            assert q.complete(cell.id, "o", {"latency_us": 1.5})
            assert q.counts() == {"pending": 0, "claimed": 0,
                                  "done": 1, "error": 0}
            assert q.results(ids) == [{"latency_us": 1.5}]
            assert q.status().drained

    def test_heartbeat_extends_and_fences(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite", lease_s=10.0) as q:
            submit_grid(q)
            cell = q.claim("alice", now=0.0)
            assert q.heartbeat(cell.id, "alice", now=8.0)
            # The extended lease survives the old deadline...
            assert q.reap(now=11.0) == []
            # ...and a stranger can neither beat nor complete it.
            assert not q.heartbeat(cell.id, "mallory", now=12.0)
            assert not q.complete(cell.id, "mallory", {})

    def test_expired_lease_reaped_and_stale_owner_fenced(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite", lease_s=10.0) as q:
            submit_grid(q)
            cell = q.claim("alice", now=0.0)
            assert q.reap(now=5.0) == []          # still leased
            assert q.reap(now=11.0) == [cell.id]  # expired: requeued
            status = q.status()
            assert status.counts["pending"] == 4
            # The reap cost an attempt and recorded why.
            row = q._conn.execute(
                "SELECT attempts, error FROM cells WHERE id=?", (cell.id,)
            ).fetchone()
            assert row["attempts"] == 1
            assert "lease expired" in row["error"]
            # Alice wakes up late: her writes bounce off the fence.
            assert not q.complete(cell.id, "alice", {"stale": True})
            assert q.fail(cell.id, "alice", "late failure") is None

    def test_claim_reaps_first(self, tmp_path):
        # Every claimant doubles as the reaper: no daemon required.
        with ExperimentQueue(tmp_path / "q.sqlite", backoff_s=0.5) as q:
            q.submit(("cora",), ("igcn",), **GRID)
            dead = q.claim("victim", lease_s=5.0, now=0.0)
            # First claim past the deadline reaps (backoff applies)...
            assert q.claim("heir", now=100.0) is None
            # ...and once the backoff elapses the heir gets the cell.
            cell = q.claim("heir", now=101.0)
        assert cell is not None and cell.id == dead.id
        assert cell.attempts == 1

    def test_concurrent_claimants_one_winner(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with ExperimentQueue(path) as q:
            q.submit(("cora",), ("igcn",), **GRID)
        barrier = threading.Barrier(8)
        wins: list[object] = []

        def racer(i):
            with ExperimentQueue(path) as q:
                barrier.wait()
                cell = q.claim(f"racer-{i}")
                if cell is not None:
                    wins.append(cell)

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_retry_budget_backoff_then_quarantine(self, tmp_path):
        with ExperimentQueue(tmp_path / "q.sqlite", max_attempts=2,
                             backoff_s=100.0) as q:
            ids = q.submit(("cora",), ("igcn",), **GRID).cell_ids
            cell = q.claim("o", now=0.0)
            assert q.fail(cell.id, "o", "boom #1", now=0.0) == "pending"
            # Exponential backoff: not claimable before 100 s.
            assert q.claim("o", now=50.0) is None
            cell = q.claim("o", now=150.0)
            assert cell.attempts == 1
            # Budget spent: quarantined, error text preserved.
            assert q.fail(cell.id, "o", "boom #2", now=150.0) == "error"
            assert q.claim("o", now=1e6) is None
            status = q.status()
            assert status.counts["error"] == 1
            assert "boom #2" in status.errors[0]["error"]
            # Folding never silently drops a quarantined cell.
            with pytest.raises(SimulationError, match="boom #2"):
                q.results(ids)
            # Operator retry: fresh budget, error kept until resolved.
            assert q.retry() == 1
            cell = q.claim("o", now=1e6)
            assert cell is not None and cell.attempts == 0


class TestWorkLoop:
    def test_serial_queue_sweep_matches_inprocess(self, tmp_path):
        db = tmp_path / "q.sqlite"
        with ExperimentQueue(db) as q:
            ids = submit_grid(q).cell_ids
        report = work(db, cache_dir=str(tmp_path / "cache"))
        assert report.done == 4 and report.failed == 0
        with ExperimentQueue(db) as q:
            rows = q.results(ids)
        # Byte-identical fold: same rows, same key order, same JSON.
        assert json.dumps(rows) == json.dumps(serial_rows())

    def test_worker_uses_submitted_configs(self, tmp_path):
        # The worker rebuilds the exact (locator, consumer) pair the
        # grid was submitted with — not defaults.
        db = tmp_path / "q.sqlite"
        locator = LocatorConfig(c_max=32)
        consumer = ConsumerConfig(preagg_k=4)
        with ExperimentQueue(db) as q:
            ids = q.submit(("cora",), ("igcn",), locator=locator,
                           consumer=consumer, **GRID).cell_ids
        work(db)
        with ExperimentQueue(db) as q:
            rows = q.results(ids)
        expected = Engine(locator=locator, consumer=consumer).sweep(
            ("cora",), ("igcn",), **GRID
        )
        assert json.dumps(rows) == json.dumps(expected)

    def test_failing_cells_quarantined_then_retryable(
        self, tmp_path, monkeypatch
    ):
        db = tmp_path / "q.sqlite"
        with ExperimentQueue(db, max_attempts=2, backoff_s=0.01) as q:
            ids = submit_grid(q).cell_ids

        real = queue_mod._execute_cell

        def flaky(engine, cell):
            if cell.dataset == "citeseer":
                raise RuntimeError("injected failure")
            return real(engine, cell)

        monkeypatch.setattr(queue_mod, "_execute_cell", flaky)
        report = work(db, poll_s=0.01)
        assert report.done == 2 and report.failed == 4  # 2 cells x 2 tries
        with ExperimentQueue(db) as q:
            status = q.status()
            assert status.counts == {"pending": 0, "claimed": 0,
                                     "done": 2, "error": 2}
            assert all("injected failure" in e["error"]
                       for e in status.errors)
            with pytest.raises(SimulationError, match="injected failure"):
                q.results(ids)
            assert q.retry() == 2
        monkeypatch.setattr(queue_mod, "_execute_cell", real)
        work(db, poll_s=0.01)
        with ExperimentQueue(db) as q:
            assert json.dumps(q.results(ids)) == json.dumps(serial_rows())

    def test_max_cells_and_no_wait(self, tmp_path):
        db = tmp_path / "q.sqlite"
        with ExperimentQueue(db) as q:
            submit_grid(q)
        assert work(db, max_cells=1).done == 1
        assert work(db, max_cells=3, wait=False).done == 3
        with ExperimentQueue(db) as q:
            assert q.status().drained


class TestCrashRecovery:
    def _await_claim(self, db, timeout=30.0):
        with ExperimentQueue(db) as q:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if q.counts()["claimed"]:
                    return
                time.sleep(0.05)
        pytest.fail("victim worker never claimed a cell")

    def test_sigkilled_worker_cell_is_retried_and_rows_identical(
        self, tmp_path
    ):
        # The acceptance scenario: a worker dies mid-cell (SIGKILL, no
        # cleanup); the reaper reclaims its lease, a healthy worker
        # retries the cell, and the folded rows are byte-identical to
        # the serial in-process sweep.
        db = tmp_path / "q.sqlite"
        expected = serial_rows()
        with ExperimentQueue(db, lease_s=1.0, max_attempts=5) as q:
            ids = submit_grid(q, cache_dir=str(tmp_path / "cache")).cell_ids
        victim = multiprocessing.get_context().Process(
            target=work, args=(str(db),),
            kwargs={"cell_delay": 60.0, "lease_s": 1.0}, daemon=True,
        )
        victim.start()
        self._await_claim(db)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        report = work(db, lease_s=1.0, poll_s=0.05)
        assert report.done == 4
        with ExperimentQueue(db) as q:
            status = q.status()
            assert status.drained and status.counts["error"] == 0
            rows = q.results(ids)
        assert json.dumps(rows) == json.dumps(expected)
        # The kill is on the record: the reaped cell kept its attempt.
        conn = sqlite3.connect(db)
        try:
            (worst,) = conn.execute(
                "SELECT MAX(attempts) FROM cells"
            ).fetchone()
        finally:
            conn.close()
        assert worst >= 1

    def test_engine_queue_sweep_parallel_matches_serial(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path / "cache"))
        rows = engine.sweep(DATASETS, PLATFORMS, **GRID,
                            queue=tmp_path / "q.sqlite", parallel=2)
        assert json.dumps(rows) == json.dumps(serial_rows())

    def test_coordinator_restart_resumes_without_resimulating(
        self, tmp_path
    ):
        db = tmp_path / "q.sqlite"
        cache = str(tmp_path / "cache")
        first = Engine(cache_dir=cache).sweep(DATASETS, PLATFORMS,
                                              **GRID, queue=db)
        resumed_engine = Engine(cache_dir=cache)
        resumed = resumed_engine.sweep(DATASETS, PLATFORMS, **GRID,
                                       queue=db)
        assert json.dumps(resumed) == json.dumps(first)
        # Every cell was already done: the restart folded straight from
        # the table — zero simulations, zero islandizations, anywhere.
        stats = resumed_engine.cache_stats()
        assert stats["islandization"].total == 0
        assert stats["summary"].total == 0


class TestQueueCLI:
    ARGS = ["--datasets", "cora", "--platforms", "igcn",
            "--scale", "0.15", "--seed", "3"]

    def test_submit_work_status_roundtrip(self, tmp_path, capsys):
        db = str(tmp_path / "q.sqlite")
        assert main(["queue", "submit", "--db", db, *self.ARGS]) == 0
        assert "grid of 1 cells (1 added" in capsys.readouterr().out

        assert main(["queue", "submit", "--db", db, *self.ARGS]) == 0
        assert "0 added, 1 already present" in capsys.readouterr().out

        assert main(["queue", "work", "--db", db,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "1 done, 0 failed" in capsys.readouterr().out

        assert main(["queue", "status", "--db", db]) == 0
        assert "queue drained" in capsys.readouterr().out

        assert main(["queue", "status", "--db", db,
                     "--format", "json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["drained"] and status["counts"]["done"] == 1

        assert main(["queue", "retry", "--db", db]) == 0
        assert "requeued 0" in capsys.readouterr().out
        assert main(["queue", "reap", "--db", db]) == 0
        assert "reaped 0" in capsys.readouterr().out

    def test_status_exits_nonzero_on_quarantined_cells(
        self, tmp_path, capsys
    ):
        db = tmp_path / "q.sqlite"
        with ExperimentQueue(db, max_attempts=1) as q:
            q.submit(("cora",), ("igcn",), **GRID)
            cell = q.claim("o")
            q.fail(cell.id, "o", "injected")
        assert main(["queue", "status", "--db", str(db)]) == 1
        out = capsys.readouterr().out
        assert "quarantined cell" in out and "injected" in out

    def test_missing_db_is_a_clean_error(self, tmp_path, capsys):
        db = str(tmp_path / "absent.sqlite")
        for action in ("work", "status", "retry", "reap"):
            assert main(["queue", action, "--db", db]) == 2
            assert "no queue database" in capsys.readouterr().err

    def test_flags_guarded_per_action(self, tmp_path, capsys):
        db = str(tmp_path / "q.sqlite")
        assert main(["queue", "submit", "--db", db, *self.ARGS]) == 0
        capsys.readouterr()
        for argv, flag in (
            (["queue", "status", "--db", db, "--max-cells", "2"],
             "--max-cells"),
            (["queue", "work", "--db", db, "--format", "json"],
             "--format"),
            (["queue", "reap", "--db", db, "--datasets", "cora"],
             "--datasets"),
        ):
            assert main(argv) == 2
            assert f"{flag} only applies" in capsys.readouterr().err

    def test_sweep_queue_flag(self, tmp_path, capsys):
        db = str(tmp_path / "q.sqlite")
        assert main(["sweep", "--datasets", "cora", "--platforms", "igcn",
                     "--scale", "0.15", "--seed", "3", "--queue", db,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "igcn" in out
        status = ExperimentQueue(db).status()
        assert status.drained and status.counts["done"] == 1
