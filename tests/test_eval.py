"""Unit tests for the evaluation harness (tables, spy plots, registry)."""

import pytest

from repro.eval import render_table, spy
from repro.eval.experiments import experiment_fig11, experiment_table1
from repro.eval.spyplot import density_grid
from repro.eval.tables import format_value
from repro.graph import GraphBuilder, CSRGraph


class TestTables:
    def test_render_basic(self):
        out = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "22" in lines[3]  # header, rule, row 1, row 2

    def test_column_union_across_rows(self):
        out = render_table([{"a": 1}, {"b": 2}])
        assert "a" in out and "b" in out

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_title(self):
        assert "=== T ===" in render_table([{"a": 1}], title="T")

    def test_format_large_float(self):
        assert format_value(1.23e7) == "1.23e+07"

    def test_format_int_commas(self):
        assert format_value(1234567) == "1,234,567"

    def test_format_bool(self):
        assert format_value(True) == "yes"


class TestSpyPlot:
    def test_density_grid_counts_all_nnz(self, fig2):
        grid = density_grid(fig2, resolution=4)
        assert grid.sum() == fig2.num_edges

    def test_spy_dimensions(self, fig2):
        art = spy(fig2, resolution=10)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 10 for line in lines)

    def test_spy_empty_graph(self):
        art = spy(CSRGraph.empty(4), resolution=5)
        assert set("".join(art.splitlines())) == {"."}

    def test_anti_diagonal_flip(self):
        g = GraphBuilder(10).add_edge(0, 1).build()
        normal = spy(g, resolution=10)
        flipped = spy(g, resolution=10, anti_diagonal=True)
        assert normal != flipped

    def test_title_included(self, fig2):
        assert spy(fig2, resolution=4, title="hello").startswith("hello")

    def test_dense_block_darker_than_sparse(self):
        g = (
            GraphBuilder(64)
            .add_clique(range(16))       # dense corner
            .add_edge(40, 60)            # lone nnz elsewhere
            .build()
        )
        grid = density_grid(g, resolution=8)
        assert grid[0, 0] > grid[5, 7]


class TestExperimentRegistry:
    def test_fig11_matches_paper_split(self):
        result = experiment_fig11()
        assert result.extras["locator_fraction"] == pytest.approx(0.34, abs=0.02)
        assert result.extras["consumer_fraction"] == pytest.approx(0.66, abs=0.02)

    def test_fig11_renders(self):
        text = experiment_fig11().render()
        assert "Figure 11" in text
        assert "tp_bfs_engines" in text

    def test_table1_rows(self):
        result = experiment_table1("cora")
        methods = [row["method"] for row in result.rows]
        assert len(methods) == 3
        assert any("PULL" in m for m in methods)
        assert any("Islandization" in m for m in methods)

    def test_table1_igcn_least_traffic(self):
        result = experiment_table1("cora")
        traffic = {row["method"]: row["dram_mb"] for row in result.rows}
        igcn = [v for k, v in traffic.items() if "Islandization" in k][0]
        assert igcn <= min(traffic.values())
