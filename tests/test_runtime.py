"""Tests for the unified simulation runtime (registry + engine + sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IGCNReport, LocatorConfig
from repro.errors import SimulationError
from repro.graph import CSRGraph, load_dataset
from repro.models import gcn_model
from repro.report import SUMMARY_FIELDS, BaseReport
from repro.runtime import (
    Engine,
    IGCNSimulator,
    Simulator,
    get_simulator,
    graph_fingerprint,
    simulator_names,
    sweep,
)

ACCELERATORS = ("igcn", "awb", "hygcn", "sigma", "pull", "push")


@pytest.fixture(scope="module")
def small_cora():
    return load_dataset("cora", scale=0.15, seed=3)


@pytest.fixture(scope="module")
def small_model(small_cora):
    return gcn_model(small_cora.num_features, small_cora.num_classes)


class TestRegistry:
    def test_all_platforms_registered(self):
        names = simulator_names()
        for expected in ACCELERATORS + ("pyg-cpu", "dgl-cpu", "pyg-gpu-v100"):
            assert expected in names

    def test_unknown_platform_raises(self):
        with pytest.raises(SimulationError, match="available"):
            get_simulator("tpu-v9")

    def test_aliases_resolve(self):
        assert get_simulator("awb-gcn") is get_simulator("awb")
        assert isinstance(get_simulator("i-gcn"), IGCNSimulator)

    def test_default_instances_are_shared(self):
        assert get_simulator("hygcn") is get_simulator("hygcn")

    def test_kwargs_build_fresh_instance(self):
        custom = get_simulator("igcn", locator=LocatorConfig(c_max=8))
        assert custom is not get_simulator("igcn")
        assert custom.accelerator.locator_config.c_max == 8

    def test_platform_models_reject_config_kwargs(self):
        with pytest.raises(SimulationError, match="no configuration"):
            get_simulator("pyg-cpu", hw=object())

    def test_alias_cannot_shadow_registered_platform(self):
        from repro.runtime import register_simulator

        with pytest.raises(SimulationError, match="collides"):
            register_simulator("mysim", object, aliases=("igcn",))
        with pytest.raises(SimulationError, match="collides"):
            # existing *aliases* are protected too, not just canonical names
            register_simulator("mysim", object, aliases=("i-gcn",))
        # the failed registrations must not have hijacked anything
        assert isinstance(get_simulator("igcn"), IGCNSimulator)
        assert isinstance(get_simulator("i-gcn"), IGCNSimulator)

    def test_explicit_workload_wins(self, small_cora, small_model):
        from repro.models import build_workload

        workload = build_workload(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        report = get_simulator("awb").simulate(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
            workload=workload,
        )
        assert report.macs == workload.total_macs

    def test_simulators_satisfy_protocol(self):
        for name in simulator_names():
            assert isinstance(get_simulator(name), Simulator)

    @pytest.mark.parametrize("name", simulator_names())
    def test_every_platform_simulates(self, name, small_cora, small_model):
        report = get_simulator(name).simulate(
            small_cora.graph,
            small_model,
            feature_density=small_cora.feature_density,
        )
        assert isinstance(report, BaseReport)
        assert report.latency_us > 0

    @pytest.mark.parametrize("name", simulator_names())
    def test_unified_summary_schema(self, name, small_cora, small_model):
        report = get_simulator(name).simulate(
            small_cora.graph,
            small_model,
            feature_density=small_cora.feature_density,
        )
        assert set(SUMMARY_FIELDS) <= set(report.summary())
        assert list(report.base_summary()) == list(SUMMARY_FIELDS)


class TestEngineCaching:
    def test_dataset_cache(self):
        engine = Engine()
        a = engine.dataset("cora", scale=0.1, seed=3)
        b = engine.dataset("cora", scale=0.1, seed=3)
        assert a is b
        stats = engine.cache_stats()["dataset"]
        assert (stats.hits, stats.misses) == (1, 1)
        assert engine.dataset("cora", scale=0.1, seed=4) is not a

    def test_islandization_computed_once_across_models(self, small_cora):
        engine = Engine()
        for variant in ("algo", "hy"):
            model = gcn_model(
                small_cora.num_features, small_cora.num_classes, variant=variant
            )
            report = engine.simulate("igcn", small_cora, model)
            assert isinstance(report, IGCNReport)
        stats = engine.cache_stats()["islandization"]
        assert stats.misses == 1
        assert stats.hits == 1

    def test_islandization_keyed_by_locator_config(self, small_cora):
        engine = Engine()
        default = engine.islandization(small_cora.graph)
        again = engine.islandization(small_cora.graph)
        small = engine.islandization(small_cora.graph, LocatorConfig(c_max=8))
        assert again is default
        assert small is not default

    def test_workload_shared_across_baselines(self, small_cora, small_model):
        engine = Engine()
        engine.simulate("awb", small_cora, small_model)
        engine.simulate("hygcn", small_cora, small_model)
        stats = engine.cache_stats()["workload"]
        assert stats.misses == 1
        assert stats.hits == 1

    def test_report_cache_returns_same_object(self, small_cora, small_model):
        engine = Engine()
        a = engine.simulate("sigma", small_cora, small_model)
        b = engine.simulate("sigma", small_cora, small_model)
        assert a is b

    def test_clear_resets(self, small_cora):
        engine = Engine()
        view = engine.cache_stats()  # held before clear: must stay live
        engine.islandization(small_cora.graph)
        engine.clear()
        assert engine.cache_stats()["islandization"].total == 0
        engine.islandization(small_cora.graph)
        assert view["islandization"].misses == 1

    def test_engine_locator_config_governs_igcn(self, small_cora, small_model):
        from repro.core import IGCNAccelerator

        custom = LocatorConfig(c_max=4)
        via_engine = Engine(locator=custom).simulate("igcn", small_cora, small_model)
        direct = IGCNAccelerator(locator=custom).run(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert (
            via_engine.islandization.num_islands == direct.islandization.num_islands
        )
        assert via_engine.total_cycles == direct.total_cycles
        # An explicitly configured simulator still wins over the engine.
        explicit = get_simulator("igcn", locator=LocatorConfig(c_max=64))
        report = explicit.simulate(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
            engine=Engine(locator=custom),
        )
        assert report.islandization.num_islands != direct.islandization.num_islands

    def test_raw_graph_requires_model(self, small_cora):
        with pytest.raises(SimulationError, match="model"):
            Engine().simulate("igcn", small_cora.graph)

    def test_fingerprint_distinguishes_structure(self, small_cora):
        clean = small_cora.graph.without_self_loops()
        perm = clean.permute(np.random.default_rng(0).permutation(clean.num_nodes))
        assert graph_fingerprint(perm) != graph_fingerprint(clean)

    def test_fingerprint_cached_per_instance(self, small_cora):
        graph = small_cora.graph
        first = graph_fingerprint(graph)
        assert graph.__dict__.get("_fingerprint") == first
        assert graph_fingerprint(graph) is first  # served from the instance


class TestSweep:
    DATASETS = ("cora", "citeseer")
    PLATFORMS = ("igcn", "awb")

    def test_each_islandization_computed_once(self):
        engine = Engine()
        rows = engine.sweep(
            self.DATASETS,
            self.PLATFORMS,
            models=("gcn", "gcn:hy"),
            scale=0.15,
            seed=3,
        )
        assert len(rows) == len(self.DATASETS) * 2 * len(self.PLATFORMS)
        stats = engine.cache_stats()["islandization"]
        assert stats.misses == len(self.DATASETS)
        assert stats.hits == len(self.DATASETS)  # second model variant reuses

    def test_five_datasets_two_platforms_islandize_once_each(self):
        # The acceptance sweep: every dataset's islandization is
        # computed exactly once even though two platforms consume it.
        datasets = ("cora", "citeseer", "pubmed", "nell", "reddit")
        engine = Engine()
        rows = engine.sweep(datasets, ("igcn", "awb"), scale=0.02, seed=3)
        assert len(rows) == len(datasets) * 2
        stats = engine.cache_stats()["islandization"]
        assert stats.misses == len(datasets)

    def test_rows_are_deterministically_ordered(self):
        rows = Engine().sweep(
            self.DATASETS, self.PLATFORMS, scale=0.15, seed=3
        )
        assert [(r["graph"], r["platform"]) for r in rows] == [
            ("cora", "igcn"),
            ("cora", "awb-gcn"),
            ("citeseer", "igcn"),
            ("citeseer", "awb-gcn"),
        ]

    def test_parallel_equals_serial(self):
        serial = Engine().sweep(self.DATASETS, self.PLATFORMS, scale=0.15, seed=3)
        parallel = Engine().sweep(
            self.DATASETS, self.PLATFORMS, scale=0.15, seed=3, parallel=2
        )
        assert parallel == serial

    def test_unified_schema_rows(self):
        rows = Engine().sweep(("cora",), ("igcn", "pyg-cpu"), scale=0.15, seed=3)
        for row in rows:
            assert list(row) == list(SUMMARY_FIELDS)
        # platform models carry no energy model -> graphs_per_kj is None
        assert rows[0]["graphs_per_kj"] is not None
        assert rows[1]["graphs_per_kj"] is None

    def test_module_level_convenience(self):
        rows = sweep(("cora",), ("awb",), scale=0.15, seed=3)
        assert len(rows) == 1 and rows[0]["platform"] == "awb-gcn"

    def test_unknown_platform_rejected_upfront(self):
        with pytest.raises(SimulationError):
            Engine().sweep(("cora",), ("igcn", "nope"), scale=0.15)

    def test_variant_suffix_rejected_for_gin(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="variant"):
            Engine().sweep(("cora",), ("igcn",), models=("gin:hy",), scale=0.15)

    def test_negative_parallel_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="positive worker count"):
            Engine().sweep(("cora",), ("igcn",), scale=0.15, parallel=-1)

    def test_worker_death_does_not_lose_the_sweep(self, monkeypatch):
        # A SIGKILLed pool worker (the OOM killer's signature) breaks
        # the whole ProcessPoolExecutor.  The sweep must recover: the
        # lost units re-run serially, the rows come back identical, and
        # the degradation is on the record.
        serial = Engine().sweep(self.DATASETS, self.PLATFORMS,
                                scale=0.15, seed=3)
        monkeypatch.setenv("_REPRO_KILL_SWEEP_WORKER", "citeseer")
        engine = Engine()
        rows = engine.sweep(self.DATASETS, self.PLATFORMS,
                            scale=0.15, seed=3, parallel=2)
        assert rows == serial
        assert len(engine.degradations) == 1
        event = engine.degradations[0]
        assert event["event"] == "broken_process_pool"
        assert 1 <= event["lost_units"] <= event["total_units"] == 2

    def test_healthy_sweep_records_no_degradation(self):
        engine = Engine()
        engine.sweep(("cora",), ("igcn",), scale=0.15, seed=3, parallel=2)
        assert engine.degradations == []


class TestDegenerateGraphs:
    """0-node and 0-edge graphs must simulate cleanly on every platform."""

    @pytest.mark.parametrize("num_nodes", [0, 7])
    @pytest.mark.parametrize("name", simulator_names())
    def test_edgeless_graphs(self, name, num_nodes):
        graph = CSRGraph.empty(num_nodes, name=f"empty{num_nodes}")
        model = gcn_model(4, 2)
        report = get_simulator(name).simulate(graph, model)
        assert report.latency_us >= 0
        assert report.offchip_bytes >= 0
        assert set(SUMMARY_FIELDS) <= set(report.summary())
