"""Unit tests for baseline accelerator and platform models."""

import pytest

from repro.baselines import (
    AWBGCNAccelerator,
    HyGCNAccelerator,
    PullAccelerator,
    PushAccelerator,
    SigmaAccelerator,
    get_platform,
    platform_names,
)
from repro.graph import load_dataset
from repro.hw import IGCN_DEFAULT
from repro.models import build_workload, gcn_model


@pytest.fixture(scope="module")
def small_cora():
    return load_dataset("cora", scale=0.3, seed=3)


@pytest.fixture(scope="module")
def small_model(small_cora):
    return gcn_model(small_cora.num_features, small_cora.num_classes)


def _run(accel, ds, model):
    return accel.run(ds.graph, model, feature_density=ds.feature_density)


class TestPullPush:
    def test_pull_counts_full_workload(self, small_cora, small_model):
        rep = _run(PullAccelerator(IGCN_DEFAULT), small_cora, small_model)
        workload = build_workload(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert rep.macs == workload.total_macs

    def test_pull_refetches_when_cache_small(self, small_cora, small_model):
        small = PullAccelerator(IGCN_DEFAULT, feature_cache_bytes=1024)
        rep = _run(small, small_cora, small_model)
        assert rep.meter.reads.get("xw-refetch", 0) > 0

    def test_push_repeats_adjacency_per_channel(self, small_cora, small_model):
        push = _run(PushAccelerator(IGCN_DEFAULT), small_cora, small_model)
        pull = _run(PullAccelerator(IGCN_DEFAULT), small_cora, small_model)
        assert push.meter.reads["adjacency"] > pull.meter.reads["adjacency"]

    def test_push_adjacency_resident_variant(self, small_cora, small_model):
        resident = PushAccelerator(IGCN_DEFAULT, adjacency_resident=True)
        naive = PushAccelerator(IGCN_DEFAULT)
        assert (
            _run(resident, small_cora, small_model).meter.reads["adjacency"]
            < _run(naive, small_cora, small_model).meter.reads["adjacency"]
        )


class TestAWB:
    def test_envelope_matches_paper(self):
        awb = AWBGCNAccelerator()
        assert awb.hw.num_macs == 4096
        assert awb.hw.frequency_hz == pytest.approx(330e6)

    def test_no_pruning(self, small_cora, small_model):
        rep = _run(AWBGCNAccelerator(), small_cora, small_model)
        workload = build_workload(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert rep.macs == workload.total_macs

    def test_utilization_sensitivity(self, small_cora, small_model):
        base = AWBGCNAccelerator()
        faster = base.with_utilization(0.9)
        assert (
            _run(faster, small_cora, small_model).latency_us
            < _run(base, small_cora, small_model).latency_us
        )

    def test_energy_reported(self, small_cora, small_model):
        rep = _run(AWBGCNAccelerator(), small_cora, small_model)
        assert rep.graphs_per_kj > 0


class TestHyGCN:
    def test_aggregation_first_costs_more_macs(self, small_cora, small_model):
        hygcn = _run(HyGCNAccelerator(), small_cora, small_model)
        awb = _run(AWBGCNAccelerator(), small_cora, small_model)
        assert hygcn.macs > awb.macs

    def test_hbm_envelope(self):
        assert HyGCNAccelerator().hw.offchip_bandwidth_bps == pytest.approx(256e9)


class TestSigma:
    def test_densified_intermediate_traffic(self, small_cora, small_model):
        rep = _run(SigmaAccelerator(), small_cora, small_model)
        assert rep.meter.reads.get("intermediate", 0) > 0

    def test_dense_second_gemm_dominates(self, small_cora, small_model):
        rep = _run(SigmaAccelerator(), small_cora, small_model)
        workload = build_workload(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        # Aggregation-first densification >> combination-first MACs.
        assert rep.macs > 2 * workload.total_macs


class TestPlatforms:
    def test_five_platforms(self):
        assert len(platform_names()) == 5

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("tpu")

    def test_cpu_slower_than_gpu(self, small_cora, small_model):
        cpu = get_platform("pyg-cpu").run(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        gpu = get_platform("pyg-gpu-v100").run(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert cpu.latency_us > gpu.latency_us

    def test_overhead_floors_latency(self, small_cora, small_model):
        plat = get_platform("pyg-gpu-v100")
        rep = plat.run(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert rep.latency_us >= plat.framework_overhead_s * 1e6

    def test_notes_breakdown(self, small_cora, small_model):
        rep = get_platform("dgl-cpu").run(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert "gemm=" in rep.notes

    def test_summary_dict(self, small_cora, small_model):
        rep = get_platform("dgl-cpu").run(
            small_cora.graph, small_model,
            feature_density=small_cora.feature_density,
        )
        assert rep.summary()["platform"] == "dgl-cpu"


class TestCrossModelShape:
    """The paper's headline ordering must hold on the surrogates."""

    @pytest.mark.parametrize("name", ["cora", "citeseer"])
    def test_igcn_beats_awb(self, name):
        from repro.core import IGCNAccelerator

        ds = load_dataset(name)
        model = gcn_model(ds.num_features, ds.num_classes)
        igcn = IGCNAccelerator().run(
            ds.graph, model, feature_density=ds.feature_density
        )
        awb = _run(AWBGCNAccelerator(), ds, model)
        assert awb.latency_us > igcn.latency_us

    def test_igcn_traffic_below_awb(self):
        from repro.core import IGCNAccelerator

        ds = load_dataset("cora")
        model = gcn_model(ds.num_features, ds.num_classes)
        igcn = IGCNAccelerator().run(
            ds.graph, model, feature_density=ds.feature_density
        )
        awb = _run(AWBGCNAccelerator(), ds, model)
        assert igcn.offchip_bytes < awb.offchip_bytes
