"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, connected_components, graph_stats
from repro.graph.stats import degree_histogram, gini


class TestComponents:
    def test_single_component(self, triangle):
        labels = connected_components(triangle)
        assert len(set(labels.tolist())) == 1

    def test_disconnected(self):
        g = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build()
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_nodes_own_components(self, empty_graph):
        labels = connected_components(empty_graph)
        assert len(set(labels.tolist())) == 5


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.ones(10)) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini(values) > 0.9

    def test_empty_is_zero(self):
        assert gini(np.zeros(0)) == 0.0


class TestStats:
    def test_fig2_stats(self, fig2):
        s = graph_stats(fig2)
        assert s.num_nodes == 6
        assert s.num_edges == 16
        assert s.num_components == 1
        assert s.largest_component == 6

    def test_star_stats(self, star):
        s = graph_stats(star)
        assert s.max_degree == 5
        assert s.degree_p50 == 1.0

    def test_empty_graph_stats(self, empty_graph):
        s = graph_stats(empty_graph)
        assert s.avg_degree == 0.0
        assert s.num_components == 5

    def test_as_dict_keys(self, fig2):
        d = graph_stats(fig2).as_dict()
        assert {"nodes", "nnz", "avg_deg", "gini"} <= set(d)

    def test_degree_histogram_sums_to_n(self, fig2):
        _, counts = degree_histogram(fig2)
        assert counts.sum() == fig2.num_nodes
