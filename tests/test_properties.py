"""Property-based tests (hypothesis) on core invariants.

These are the load-bearing guarantees of the reproduction:

* islandization is a *partition* with exact edge coverage on arbitrary
  graphs, for arbitrary locator parameters;
* the window-scan reuse path is numerically identical to the plain
  per-edge aggregation for arbitrary bitmaps, widths, and boundaries;
* reorderings always emit permutations;
* the pipeline makespan is sandwiched between its lower bounds;
* the discrete-event refinement is sandwiched between the streamed and
  staged models and conserves the consumer's work exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConsumerConfig, IGCNAccelerator, LocatorConfig, islandize
from repro.core.event_sim import simulate_events, validate_trace
from repro.core.preagg import scan_aggregate, scan_costs
from repro.core.pipeline import pipelined_makespan, streamed_schedule
from repro.graph import CSRGraph
from repro.graph.reorder import get_reordering, reordering_names
from repro.models import gcn_model


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_nodes=40, max_edges=120):
    """Arbitrary undirected graphs without self-loops."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=m,
            max_size=m,
        )
    )
    rows = [u for u, v in pairs if u != v]
    cols = [v for u, v in pairs if u != v]
    return CSRGraph.from_edges(
        n, np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)
    )


@st.composite
def bitmaps(draw, max_rows=10, max_cols=14):
    """Arbitrary boolean bitmaps with a feature matrix."""
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    flat = draw(
        st.lists(st.booleans(), min_size=rows * cols, max_size=rows * cols)
    )
    bitmap = np.asarray(flat, dtype=bool).reshape(rows, cols)
    k = draw(st.integers(2, 8))
    boundary = draw(st.integers(0, cols))
    return bitmap, k, boundary


# ----------------------------------------------------------------------
# Islandization invariants
# ----------------------------------------------------------------------
class TestIslandizationProperties:
    @given(graph=graphs(), cmax=st.integers(1, 20), decay=st.floats(0.3, 0.8))
    @settings(max_examples=60, deadline=None)
    def test_partition_and_coverage(self, graph, cmax, decay):
        config = LocatorConfig(c_max=cmax, decay=decay)
        result = islandize(graph, config)
        result.validate()  # partition + closure + exact edge coverage

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_island_sizes_respect_cmax(self, graph):
        config = LocatorConfig(c_max=5)
        result = islandize(graph, config)
        assert all(i.num_members <= 5 for i in result.islands)

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_permutation_is_bijection(self, graph):
        result = islandize(graph)
        perm = result.island_permutation()
        assert np.array_equal(np.sort(perm), np.arange(graph.num_nodes))

    @given(graph=graphs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, graph):
        a = islandize(graph)
        b = islandize(graph)
        assert a.num_islands == b.num_islands
        assert np.array_equal(a.hub_ids, b.hub_ids)


# ----------------------------------------------------------------------
# Window-scan properties
# ----------------------------------------------------------------------
class TestScanProperties:
    @given(case=bitmaps())
    @settings(max_examples=100, deadline=None)
    def test_scan_aggregate_lossless(self, case):
        bitmap, k, boundary = case
        rng = np.random.default_rng(bitmap.sum())
        xw = rng.normal(size=(bitmap.shape[1], 3))
        acc, _ = scan_aggregate(bitmap, k, xw, boundary=boundary)
        assert np.allclose(acc, bitmap.astype(float) @ xw, atol=1e-10)

    @given(case=bitmaps())
    @settings(max_examples=100, deadline=None)
    def test_scan_never_exceeds_baseline(self, case):
        bitmap, k, boundary = case
        counts = scan_costs(bitmap, k, boundary=boundary)
        assert counts.scan_ops <= counts.baseline_ops
        assert counts.baseline_ops == int(bitmap.sum())

    @given(case=bitmaps())
    @settings(max_examples=60, deadline=None)
    def test_functional_and_counting_agree(self, case):
        bitmap, k, boundary = case
        xw = np.ones((bitmap.shape[1], 2))
        _, functional = scan_aggregate(bitmap, k, xw, boundary=boundary)
        counting = scan_costs(bitmap, k, boundary=boundary)
        assert functional.scan_ops == counting.scan_ops
        assert functional.preagg_build_ops == counting.preagg_build_ops

    @given(case=bitmaps())
    @settings(max_examples=60, deadline=None)
    def test_window_classification_partitions(self, case):
        bitmap, k, boundary = case
        c = scan_costs(bitmap, k, boundary=boundary)
        total_windows = (
            c.windows_full + c.windows_subtract + c.windows_direct
            + c.windows_skipped
        )
        from repro.core.preagg import group_layout

        starts, _ = group_layout(bitmap.shape[1], k, boundary=boundary)
        assert total_windows == bitmap.shape[0] * len(starts)


# ----------------------------------------------------------------------
# Reordering properties
# ----------------------------------------------------------------------
class TestReorderingProperties:
    @given(graph=graphs(max_nodes=30, max_edges=60))
    @settings(max_examples=25, deadline=None)
    def test_all_reorderings_emit_permutations(self, graph):
        for name in reordering_names():
            result = get_reordering(name).run(graph)
            assert np.array_equal(
                np.sort(result.permutation), np.arange(graph.num_nodes)
            )

    @given(graph=graphs(max_nodes=30, max_edges=60))
    @settings(max_examples=25, deadline=None)
    def test_reordering_preserves_edge_count(self, graph):
        for name in ("hubsort", "dbg", "rabbit"):
            result = get_reordering(name).run(graph)
            assert result.apply(graph).num_edges == graph.num_edges


# ----------------------------------------------------------------------
# Pipeline makespan properties
# ----------------------------------------------------------------------
class TestPipelineProperties:
    @given(
        data=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_makespan_bounds(self, data):
        releases = np.cumsum([r for r, _ in data]).tolist()
        work = [w for _, w in data]
        makespan = pipelined_makespan(releases, work)
        assert makespan >= sum(work) - 1e-9          # server bound
        assert makespan >= releases[-1] - 1e-9       # release bound
        assert makespan <= releases[-1] + sum(work) + 1e-9  # serial bound

    @given(
        data=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_makespan_sandwich(self, data):
        """The tight two-sided bound the streamed latency model relies on.

        ``max(sum(C), L_last + C_last) <= makespan <= L_last + sum(C)``
        — the lower bound is the better of the work-conserving-server
        and last-release floors, the upper bound is the staged
        (run-everything-after-the-last-release) schedule.
        """
        releases = np.cumsum([r for r, _ in data]).tolist()
        work = [w for _, w in data]
        makespan = pipelined_makespan(releases, work)
        lower = max(sum(work), releases[-1] + work[-1])
        upper = releases[-1] + sum(work)
        assert lower - 1e-9 <= makespan <= upper + 1e-9

    @given(
        data=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        ),
        consumer_cycles=st.floats(0, 1e6),
    )
    @settings(max_examples=80, deadline=None)
    def test_streamed_schedule_conserves_work(self, data, consumer_cycles):
        """Measured schedules distribute exactly the consumer's cycles.

        Releases are the locator's cumulative round starts (first at 0,
        non-decreasing) and the chunks always sum to ``consumer_cycles``
        regardless of the work distribution — including the all-zero
        fallback.
        """
        round_cycles = [r for r, _ in data]
        round_work = [w for _, w in data]
        releases, chunks = streamed_schedule(
            round_cycles, round_work, consumer_cycles
        )
        assert releases[0] == 0.0
        assert releases == sorted(releases)
        assert releases[-1] <= sum(round_cycles) + 1e-9
        assert np.isclose(sum(chunks), consumer_cycles)


# ----------------------------------------------------------------------
# Event-simulator properties
# ----------------------------------------------------------------------
@st.composite
def event_schedules(draw, max_rounds=5, max_islands=4):
    """Arbitrary round schedules for :func:`simulate_events`."""
    rounds = draw(st.integers(1, max_rounds))
    round_cycles = draw(
        st.lists(st.floats(0, 50), min_size=rounds, max_size=rounds)
    )
    round_islands = []
    uid = 0
    for _ in range(rounds):
        k = draw(st.integers(0, max_islands))
        islands = []
        for _ in range(k):
            weight = draw(st.floats(0, 10))
            hubs = tuple(
                draw(
                    st.lists(st.integers(0, 30), min_size=0, max_size=3)
                )
            )
            islands.append((uid, weight, hubs))
            uid += 1
        round_islands.append(islands)
    round_chunks = draw(
        st.lists(st.floats(0, 80), min_size=rounds, max_size=rounds)
    )
    num_pes = draw(st.integers(1, 8))
    return round_cycles, round_islands, round_chunks, num_pes


class TestEventSimProperties:
    """The three-way sandwich and conservation, hypothesis-pinned."""

    @given(schedule=event_schedules())
    @settings(max_examples=80, deadline=None)
    def test_schedule_sandwich_and_conservation(self, schedule):
        """``pipelined_makespan <= event <= L_total + C`` on arbitrary
        schedules — the structural form of ``streamed <= event <=
        staged`` — plus exact work conservation and a clean replay."""
        round_cycles, round_islands, round_chunks, num_pes = schedule
        sim = simulate_events(
            round_cycles, round_islands, round_chunks, num_pes=num_pes
        )
        validate_trace(sim)
        consumed = float(sum(round_chunks))
        carried = sum(
            chunk
            for islands, chunk in zip(round_islands, round_chunks)
            if islands or chunk > 0.0
        )
        assert np.isclose(sim.work_total, carried, atol=1e-6)
        assert np.isclose(
            sim.busy_pe_cycles, num_pes * sim.work_total, atol=1e-6
        )
        # The accelerator composes totals as max(makespan, locator);
        # compare at that level — a zero-work trailing round moves the
        # aggregate lower bound to its release time, which the event
        # model (correctly) has no unit to wait for.
        locator_total = float(sum(round_cycles))
        starts, chunks = streamed_schedule(
            round_cycles, round_chunks, consumed
        )
        lower = max(pipelined_makespan(starts, chunks), locator_total)
        upper = locator_total + consumed
        event_total = max(sim.makespan, locator_total)
        assert lower - 1e-6 <= event_total <= upper + 1e-6

    @given(schedule=event_schedules())
    @settings(max_examples=40, deadline=None)
    def test_schedule_determinism(self, schedule):
        round_cycles, round_islands, round_chunks, num_pes = schedule
        a = simulate_events(
            round_cycles, round_islands, round_chunks, num_pes=num_pes
        )
        b = simulate_events(
            round_cycles, round_islands, round_chunks, num_pes=num_pes
        )
        assert a.trace_bytes() == b.trace_bytes()

    @given(graph=graphs(max_nodes=30, max_edges=80), cmax=st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_modes_sandwich_end_to_end(self, graph, cmax):
        """``streamed <= event <= staged`` on full inferences over
        arbitrary graphs, with the event trace replay-validated and the
        event mode conserving the chunked consumer's cycle tally."""
        model = gcn_model(8, 4)
        reports = {}
        for mode in ("staged", "streamed", "event"):
            accelerator = IGCNAccelerator(
                locator=LocatorConfig(c_max=cmax),
                consumer=ConsumerConfig(pipeline=mode),
            )
            reports[mode] = accelerator.run(graph, model)
        sim = reports["event"].event
        validate_trace(sim)
        assert np.isclose(sim.work_total, sim.consumer_cycles, atol=1e-6)
        assert (
            reports["streamed"].total_cycles - 1e-6
            <= reports["event"].total_cycles
            <= reports["staged"].total_cycles + 1e-6
        )


# ----------------------------------------------------------------------
# CSR round-trip properties
# ----------------------------------------------------------------------
class TestCSRProperties:
    @given(graph=graphs())
    @settings(max_examples=50, deadline=None)
    def test_scipy_roundtrip(self, graph):
        again = CSRGraph.from_scipy(graph.to_scipy())
        assert np.array_equal(again.indptr, graph.indptr)
        assert np.array_equal(again.indices, graph.indices)

    @given(graph=graphs())
    @settings(max_examples=50, deadline=None)
    def test_symmetry_invariant(self, graph):
        assert graph.is_symmetric()

    @given(graph=graphs())
    @settings(max_examples=50, deadline=None)
    def test_self_loop_roundtrip(self, graph):
        with_loops = graph.with_self_loops()
        assert with_loops.num_edges == graph.num_edges + graph.num_nodes
        back = with_loops.without_self_loops()
        assert back.num_edges == graph.num_edges
