"""Property-based tests (hypothesis) on core invariants.

These are the load-bearing guarantees of the reproduction:

* islandization is a *partition* with exact edge coverage on arbitrary
  graphs, for arbitrary locator parameters;
* the window-scan reuse path is numerically identical to the plain
  per-edge aggregation for arbitrary bitmaps, widths, and boundaries;
* reorderings always emit permutations;
* the pipeline makespan is sandwiched between its lower bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LocatorConfig, islandize
from repro.core.preagg import scan_aggregate, scan_costs
from repro.core.pipeline import pipelined_makespan, streamed_schedule
from repro.graph import CSRGraph
from repro.graph.reorder import get_reordering, reordering_names


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_nodes=40, max_edges=120):
    """Arbitrary undirected graphs without self-loops."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=m,
            max_size=m,
        )
    )
    rows = [u for u, v in pairs if u != v]
    cols = [v for u, v in pairs if u != v]
    return CSRGraph.from_edges(
        n, np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)
    )


@st.composite
def bitmaps(draw, max_rows=10, max_cols=14):
    """Arbitrary boolean bitmaps with a feature matrix."""
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    flat = draw(
        st.lists(st.booleans(), min_size=rows * cols, max_size=rows * cols)
    )
    bitmap = np.asarray(flat, dtype=bool).reshape(rows, cols)
    k = draw(st.integers(2, 8))
    boundary = draw(st.integers(0, cols))
    return bitmap, k, boundary


# ----------------------------------------------------------------------
# Islandization invariants
# ----------------------------------------------------------------------
class TestIslandizationProperties:
    @given(graph=graphs(), cmax=st.integers(1, 20), decay=st.floats(0.3, 0.8))
    @settings(max_examples=60, deadline=None)
    def test_partition_and_coverage(self, graph, cmax, decay):
        config = LocatorConfig(c_max=cmax, decay=decay)
        result = islandize(graph, config)
        result.validate()  # partition + closure + exact edge coverage

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_island_sizes_respect_cmax(self, graph):
        config = LocatorConfig(c_max=5)
        result = islandize(graph, config)
        assert all(i.num_members <= 5 for i in result.islands)

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_permutation_is_bijection(self, graph):
        result = islandize(graph)
        perm = result.island_permutation()
        assert np.array_equal(np.sort(perm), np.arange(graph.num_nodes))

    @given(graph=graphs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, graph):
        a = islandize(graph)
        b = islandize(graph)
        assert a.num_islands == b.num_islands
        assert np.array_equal(a.hub_ids, b.hub_ids)


# ----------------------------------------------------------------------
# Window-scan properties
# ----------------------------------------------------------------------
class TestScanProperties:
    @given(case=bitmaps())
    @settings(max_examples=100, deadline=None)
    def test_scan_aggregate_lossless(self, case):
        bitmap, k, boundary = case
        rng = np.random.default_rng(bitmap.sum())
        xw = rng.normal(size=(bitmap.shape[1], 3))
        acc, _ = scan_aggregate(bitmap, k, xw, boundary=boundary)
        assert np.allclose(acc, bitmap.astype(float) @ xw, atol=1e-10)

    @given(case=bitmaps())
    @settings(max_examples=100, deadline=None)
    def test_scan_never_exceeds_baseline(self, case):
        bitmap, k, boundary = case
        counts = scan_costs(bitmap, k, boundary=boundary)
        assert counts.scan_ops <= counts.baseline_ops
        assert counts.baseline_ops == int(bitmap.sum())

    @given(case=bitmaps())
    @settings(max_examples=60, deadline=None)
    def test_functional_and_counting_agree(self, case):
        bitmap, k, boundary = case
        xw = np.ones((bitmap.shape[1], 2))
        _, functional = scan_aggregate(bitmap, k, xw, boundary=boundary)
        counting = scan_costs(bitmap, k, boundary=boundary)
        assert functional.scan_ops == counting.scan_ops
        assert functional.preagg_build_ops == counting.preagg_build_ops

    @given(case=bitmaps())
    @settings(max_examples=60, deadline=None)
    def test_window_classification_partitions(self, case):
        bitmap, k, boundary = case
        c = scan_costs(bitmap, k, boundary=boundary)
        total_windows = (
            c.windows_full + c.windows_subtract + c.windows_direct
            + c.windows_skipped
        )
        from repro.core.preagg import group_layout

        starts, _ = group_layout(bitmap.shape[1], k, boundary=boundary)
        assert total_windows == bitmap.shape[0] * len(starts)


# ----------------------------------------------------------------------
# Reordering properties
# ----------------------------------------------------------------------
class TestReorderingProperties:
    @given(graph=graphs(max_nodes=30, max_edges=60))
    @settings(max_examples=25, deadline=None)
    def test_all_reorderings_emit_permutations(self, graph):
        for name in reordering_names():
            result = get_reordering(name).run(graph)
            assert np.array_equal(
                np.sort(result.permutation), np.arange(graph.num_nodes)
            )

    @given(graph=graphs(max_nodes=30, max_edges=60))
    @settings(max_examples=25, deadline=None)
    def test_reordering_preserves_edge_count(self, graph):
        for name in ("hubsort", "dbg", "rabbit"):
            result = get_reordering(name).run(graph)
            assert result.apply(graph).num_edges == graph.num_edges


# ----------------------------------------------------------------------
# Pipeline makespan properties
# ----------------------------------------------------------------------
class TestPipelineProperties:
    @given(
        data=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_makespan_bounds(self, data):
        releases = np.cumsum([r for r, _ in data]).tolist()
        work = [w for _, w in data]
        makespan = pipelined_makespan(releases, work)
        assert makespan >= sum(work) - 1e-9          # server bound
        assert makespan >= releases[-1] - 1e-9       # release bound
        assert makespan <= releases[-1] + sum(work) + 1e-9  # serial bound

    @given(
        data=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_makespan_sandwich(self, data):
        """The tight two-sided bound the streamed latency model relies on.

        ``max(sum(C), L_last + C_last) <= makespan <= L_last + sum(C)``
        — the lower bound is the better of the work-conserving-server
        and last-release floors, the upper bound is the staged
        (run-everything-after-the-last-release) schedule.
        """
        releases = np.cumsum([r for r, _ in data]).tolist()
        work = [w for _, w in data]
        makespan = pipelined_makespan(releases, work)
        lower = max(sum(work), releases[-1] + work[-1])
        upper = releases[-1] + sum(work)
        assert lower - 1e-9 <= makespan <= upper + 1e-9

    @given(
        data=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        ),
        consumer_cycles=st.floats(0, 1e6),
    )
    @settings(max_examples=80, deadline=None)
    def test_streamed_schedule_conserves_work(self, data, consumer_cycles):
        """Measured schedules distribute exactly the consumer's cycles.

        Releases are the locator's cumulative round starts (first at 0,
        non-decreasing) and the chunks always sum to ``consumer_cycles``
        regardless of the work distribution — including the all-zero
        fallback.
        """
        round_cycles = [r for r, _ in data]
        round_work = [w for _, w in data]
        releases, chunks = streamed_schedule(
            round_cycles, round_work, consumer_cycles
        )
        assert releases[0] == 0.0
        assert releases == sorted(releases)
        assert releases[-1] <= sum(round_cycles) + 1e-9
        assert np.isclose(sum(chunks), consumer_cycles)


# ----------------------------------------------------------------------
# CSR round-trip properties
# ----------------------------------------------------------------------
class TestCSRProperties:
    @given(graph=graphs())
    @settings(max_examples=50, deadline=None)
    def test_scipy_roundtrip(self, graph):
        again = CSRGraph.from_scipy(graph.to_scipy())
        assert np.array_equal(again.indptr, graph.indptr)
        assert np.array_equal(again.indices, graph.indices)

    @given(graph=graphs())
    @settings(max_examples=50, deadline=None)
    def test_symmetry_invariant(self, graph):
        assert graph.is_symmetric()

    @given(graph=graphs())
    @settings(max_examples=50, deadline=None)
    def test_self_loop_roundtrip(self, graph):
        with_loops = graph.with_self_loops()
        assert with_loops.num_edges == graph.num_edges + graph.num_nodes
        back = with_loops.without_self_loops()
        assert back.num_edges == graph.num_edges
