"""Unit + calibration tests for the dataset registry."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (
    DATASETS,
    dataset_names,
    figure2_graph,
    figure7_island_graph,
    load_dataset,
)


class TestRegistry:
    def test_five_paper_datasets(self):
        assert dataset_names() == ["cora", "citeseer", "pubmed", "nell", "reddit"]

    def test_published_statistics(self):
        assert DATASETS["cora"].full_nodes == 2708
        assert DATASETS["cora"].num_features == 1433
        assert DATASETS["cora"].num_classes == 7
        assert DATASETS["citeseer"].full_nodes == 3327
        assert DATASETS["pubmed"].full_nodes == 19717
        assert DATASETS["nell"].full_nodes == 65755
        assert DATASETS["reddit"].full_nodes == 232965

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_two_letter_aliases(self):
        assert load_dataset("CR", scale=0.05).name == "cora"
        assert load_dataset("rd", scale=0.01).name == "reddit"

    def test_bad_scale_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("cora", scale=0.0)
        with pytest.raises(DatasetError):
            load_dataset("cora", scale=2.0)


class TestLoading:
    def test_default_scale_full_for_cora(self):
        ds = load_dataset("cora")
        assert ds.num_nodes == 2708

    def test_scale_shrinks(self):
        ds = load_dataset("cora", scale=0.25)
        assert ds.num_nodes == 677

    def test_deterministic_per_seed(self):
        a = load_dataset("citeseer", scale=0.1, seed=3)
        b = load_dataset("citeseer", scale=0.1, seed=3)
        assert np.array_equal(a.graph.indices, b.graph.indices)

    def test_feature_nnz_estimate(self):
        ds = load_dataset("cora", scale=0.1)
        expected = round(ds.num_nodes * 1433 * 0.0127)
        assert ds.feature_nnz == expected

    def test_materialized_features(self, tiny_cora):
        assert tiny_cora.features is not None
        assert tiny_cora.features.shape == (tiny_cora.num_nodes, 1433)
        assert tiny_cora.labels is not None
        assert tiny_cora.labels.min() >= 0
        assert tiny_cora.labels.max() < 7

    def test_labels_correlate_with_structure(self, tiny_cora):
        labels = tiny_cora.labels
        community = tiny_cora.community
        members = community >= 0
        # Most members carry their island's class (5% label noise).
        expected = community[members] % tiny_cora.num_classes
        agreement = (labels[members] == expected).mean()
        assert agreement > 0.85


class TestCalibration:
    """Surrogates must preserve the character that matters to I-GCN."""

    @pytest.mark.parametrize("name", ["cora", "citeseer", "pubmed", "nell"])
    def test_average_degree_band(self, name):
        """Surrogates trade some degree fidelity for community fidelity.

        The profiles are tuned to land Figure 10's pruning rates (the
        paper's headline), which pushes average degree up to ~2-3x the
        published value on the sparsest graphs; DESIGN.md §6 records
        this.  Guard the band so future retunes do not drift further.
        """
        ds = load_dataset(name)
        measured = ds.graph.avg_degree
        published = ds.spec.full_avg_degree
        assert published * 0.5 <= measured <= published * 3.0, (
            f"{name}: surrogate avg degree {measured:.2f} vs {published:.2f}"
        )

    @pytest.mark.parametrize("name", dataset_names())
    def test_symmetric_no_self_loops(self, name):
        ds = load_dataset(name, scale=min(0.05, DATASETS[name].default_scale))
        assert not ds.graph.has_self_loops()

    def test_reddit_weakest_communities(self):
        # Reddit's background fraction dominates the other profiles.
        bg = {n: DATASETS[n].profile.background_fraction for n in dataset_names()}
        assert bg["reddit"] == max(bg.values())

    def test_nell_strongest_communities(self):
        bg = {n: DATASETS[n].profile.background_fraction for n in dataset_names()}
        assert bg["nell"] == min(bg.values())


class TestPaperGraphs:
    def test_figure2(self):
        g = figure2_graph()
        assert g.num_nodes == 6
        assert g.num_edges == 16

    def test_figure7_shared_neighbours(self):
        g, members, hubs = figure7_island_graph()
        b, c = members[1], members[2]
        shared = set(g.neighbors(b)) & set(g.neighbors(c))
        # d, e, f, g are the shared neighbours driving Figure 7.
        assert set(members[3:]) <= shared

    def test_figure7_hub_degree(self):
        g, members, hubs = figure7_island_graph()
        assert g.degree(hubs[0]) == 3
