"""Unit tests for the event-driven PE schedule model."""

import pytest

from repro.core import (
    ConsumerConfig,
    IGCNAccelerator,
    prepare_tasks,
    schedule_islands,
)
from repro.core.schedule import island_task_cycles
from repro.errors import SimulationError
from repro.graph import load_dataset
from repro.hw import HardwareConfig, IGCN_DEFAULT


@pytest.fixture(scope="module")
def tasks():
    ds = load_dataset("cora", scale=0.2, seed=3)
    isl = IGCNAccelerator().islandize(ds.graph)
    return prepare_tasks(isl, add_self_loops=True)


class TestTaskCost:
    def test_positive_cost(self, tasks):
        cost = island_task_cycles(
            tasks[0], in_dim=64, out_dim=16, feature_density=1.0,
            preagg_k=4, macs_per_pe=100.0,
        )
        assert cost > 0

    def test_scales_inverse_with_pe_width(self, tasks):
        narrow = island_task_cycles(
            tasks[0], in_dim=64, out_dim=16, feature_density=1.0,
            preagg_k=4, macs_per_pe=50.0,
        )
        wide = island_task_cycles(
            tasks[0], in_dim=64, out_dim=16, feature_density=1.0,
            preagg_k=4, macs_per_pe=200.0,
        )
        assert narrow == pytest.approx(4 * wide)

    def test_rejects_zero_width(self, tasks):
        with pytest.raises(SimulationError):
            island_task_cycles(
                tasks[0], in_dim=4, out_dim=4, feature_density=1.0,
                preagg_k=4, macs_per_pe=0.0,
            )


class TestSchedule:
    def test_all_tasks_scheduled(self, tasks):
        report = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(), in_dim=64, out_dim=16
        )
        assert len(report.tasks) == len(tasks)

    def test_no_pe_overlap(self, tasks):
        report = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(num_pes=4), in_dim=64, out_dim=16
        )
        by_pe: dict[int, list] = {}
        for t in report.tasks:
            by_pe.setdefault(t.pe, []).append(t)
        for pe_tasks in by_pe.values():
            pe_tasks.sort(key=lambda t: t.start_cycle)
            for a, b in zip(pe_tasks, pe_tasks[1:]):
                assert b.start_cycle >= a.end_cycle - 1e-9

    def test_makespan_bounds(self, tasks):
        config = ConsumerConfig(num_pes=4)
        report = schedule_islands(
            tasks, IGCN_DEFAULT, config, in_dim=64, out_dim=16
        )
        total = report.busy_cycles.sum()
        longest = max(t.duration for t in report.tasks)
        assert report.makespan >= total / config.num_pes - 1e-9
        assert report.makespan >= longest - 1e-9
        assert report.makespan <= total + 1e-9

    def test_utilization_in_unit_interval(self, tasks):
        report = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(), in_dim=64, out_dim=16
        )
        assert 0.0 < report.utilization <= 1.0

    def test_makespan_invariant_at_fixed_mac_budget(self, tasks):
        """The MAC array is fixed; splitting it across more PEs trades
        per-task speed for task parallelism, so makespan stays within a
        small factor (it only degrades via end-of-schedule imbalance)."""
        few = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(num_pes=2), in_dim=64, out_dim=16
        )
        many = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(num_pes=16), in_dim=64, out_dim=16
        )
        assert many.makespan == pytest.approx(few.makespan, rel=1.0)

    def test_wider_array_shorter_makespan(self, tasks):
        config = ConsumerConfig(num_pes=8)
        small = schedule_islands(
            tasks, HardwareConfig(num_macs=1024), config, in_dim=64, out_dim=16
        )
        big = schedule_islands(
            tasks, HardwareConfig(num_macs=8192), config, in_dim=64, out_dim=16
        )
        assert big.makespan < small.makespan

    def test_imbalance_at_least_one(self, tasks):
        report = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(num_pes=8), in_dim=64, out_dim=16
        )
        assert report.load_imbalance >= 1.0

    def test_per_pe_task_counts_sum(self, tasks):
        report = schedule_islands(
            tasks, IGCN_DEFAULT, ConsumerConfig(num_pes=8), in_dim=64, out_dim=16
        )
        assert sum(report.per_pe_tasks()) == len(tasks)

    def test_empty_task_list(self):
        report = schedule_islands(
            [], IGCN_DEFAULT, ConsumerConfig(), in_dim=4, out_dim=4
        )
        assert report.makespan == 0.0
        assert report.utilization == 1.0
